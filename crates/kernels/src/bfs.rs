//! Wave-frontier Breadth-First Search: hop counts from a source vertex.
//!
//! BFS is the wave-frontier pattern stripped to its core — the candidate is
//! `depth + 1` and the reduction is integer `min`, so every implementation
//! strategy agrees exactly (no float reassociation to tolerate). Provided
//! as a library application beyond the paper's evaluated set; the registry
//! lists it alongside SSSP/SSWP/WCC.

use invector_graph::EdgeList;

use crate::common::{RunResult, Variant};
use crate::relax::BfsRule;
use crate::wavefront;

/// Runs wave-frontier BFS from `source`. Unreached vertices end at
/// `i32::MAX`.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Example
///
/// ```
/// use invector_kernels::{bfs, Variant};
/// use invector_graph::EdgeList;
///
/// let g = EdgeList::from_edges(4, &[(0, 1), (1, 2), (0, 2)]);
/// let r = bfs(&g, 0, Variant::Invec, 100);
/// assert_eq!(r.values, vec![0, 1, 1, i32::MAX]);
/// ```
pub fn bfs(graph: &EdgeList, source: i32, variant: Variant, max_iters: u32) -> RunResult<i32> {
    wavefront::run::<BfsRule>(graph, variant, max_iters, |vals, frontier| {
        vals[source as usize] = 0;
        frontier.insert(source);
    })
}

/// Runs BFS with each wave's relaxations distributed over the execution
/// engine (see [`wavefront::run_with_policy`]); hop counts are identical to
/// [`bfs`] at any thread count.
pub fn bfs_with_policy(
    graph: &EdgeList,
    source: i32,
    variant: Variant,
    max_iters: u32,
    policy: &crate::common::ExecPolicy,
) -> RunResult<i32> {
    wavefront::run_with_policy::<BfsRule>(graph, variant, max_iters, policy, |vals, frontier| {
        vals[source as usize] = 0;
        frontier.insert(source);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use invector_graph::gen;

    /// Queue-based reference BFS.
    fn reference(graph: &EdgeList, source: i32) -> Vec<i32> {
        let csr = invector_graph::Csr::from_edge_list(graph);
        let mut depth = vec![i32::MAX; graph.num_vertices()];
        depth[source as usize] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(v) = queue.pop_front() {
            for &e in csr.out_edges(v as usize) {
                let u = graph.dst()[e as usize];
                if depth[u as usize] == i32::MAX {
                    depth[u as usize] = depth[v as usize] + 1;
                    queue.push_back(u);
                }
            }
        }
        depth
    }

    #[test]
    fn matches_queue_bfs_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::rmat(200, 1200, gen::RmatParams::SOCIAL, seed + 70);
            let expect = reference(&g, 0);
            for variant in Variant::ALL {
                let r = bfs(&g, 0, variant, 10_000);
                assert_eq!(r.values, expect, "{variant} seed {seed}");
            }
        }
    }

    #[test]
    fn hop_count_beats_edge_count() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2: depth of 2 is 1, not 2.
        let g = EdgeList::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let r = bfs(&g, 0, Variant::Masked, 100);
        assert_eq!(r.values, vec![0, 1, 1]);
    }

    #[test]
    fn parallel_bfs_is_exact() {
        let g = gen::rmat(256, 2000, gen::RmatParams::SOCIAL, 71);
        let expect = reference(&g, 0);
        let policy = crate::common::ExecPolicy::with_threads(4);
        let r = bfs_with_policy(&g, 0, Variant::Invec, 10_000, &policy);
        assert_eq!(r.values, expect);
    }
}
