//! Weakly Connected Components by label propagation (Figure 11).
//!
//! Every vertex starts with its own id as label; active edges send the
//! source label to the destination, which keeps the minimum (§2.2: "sends
//! the index of the incoming vertex to the outgoing vertex ... if the
//! incoming index is smaller"). Weak connectivity ignores direction, so the
//! graph is symmetrized once up front (shared input preparation, not charged
//! to any variant).

use invector_graph::EdgeList;

use crate::common::{RunResult, Variant};
use crate::relax::WccRule;
use crate::wavefront;

/// Runs WCC: the result labels each vertex with the smallest vertex id in
/// its weakly-connected component.
///
/// # Example
///
/// ```
/// use invector_kernels::{wcc, Variant};
/// use invector_graph::EdgeList;
///
/// let g = EdgeList::from_edges(4, &[(1, 0), (2, 3)]);
/// let r = wcc(&g, Variant::Invec, 100);
/// assert_eq!(r.values, vec![0, 0, 2, 2]);
/// ```
pub fn wcc(graph: &EdgeList, variant: Variant, max_iters: u32) -> RunResult<i32> {
    let sym = graph.symmetrized();
    wavefront::run::<WccRule>(&sym, variant, max_iters, |vals, frontier| {
        for (v, val) in vals.iter_mut().enumerate() {
            *val = v as i32;
            frontier.insert(v as i32);
        }
    })
}

/// Runs WCC with the grouping-**reuse** technique (see
/// [`wavefront::run_reuse`](crate::wavefront::run_reuse)).
pub fn wcc_reuse(graph: &EdgeList, max_iters: u32) -> RunResult<i32> {
    let sym = graph.symmetrized();
    wavefront::run_reuse::<WccRule>(&sym, max_iters, |vals, frontier| {
        for (v, val) in vals.iter_mut().enumerate() {
            *val = v as i32;
            frontier.insert(v as i32);
        }
    })
}

/// Runs WCC with each wave's label propagations distributed over the
/// execution engine (see [`wavefront::run_with_policy`]); labels are
/// identical to [`wcc`] at any thread count.
pub fn wcc_with_policy(
    graph: &EdgeList,
    variant: Variant,
    max_iters: u32,
    policy: &crate::common::ExecPolicy,
) -> RunResult<i32> {
    let sym = graph.symmetrized();
    wavefront::run_with_policy::<WccRule>(&sym, variant, max_iters, policy, |vals, frontier| {
        for (v, val) in vals.iter_mut().enumerate() {
            *val = v as i32;
            frontier.insert(v as i32);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use invector_graph::gen;

    /// Union-find reference.
    fn reference(graph: &EdgeList) -> Vec<i32> {
        let nv = graph.num_vertices();
        let mut parent: Vec<usize> = (0..nv).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for j in 0..graph.num_edges() {
            let a = find(&mut parent, graph.src()[j] as usize);
            let b = find(&mut parent, graph.dst()[j] as usize);
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
        // Label = minimum vertex id in the component.
        let mut min_label = vec![i32::MAX; nv];
        for v in 0..nv {
            let root = find(&mut parent, v);
            min_label[root] = min_label[root].min(v as i32);
        }
        (0..nv).map(|v| min_label[find(&mut parent, v)]).collect()
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::uniform(120, 150, seed + 30); // sparse -> many components
            let expect = reference(&g);
            for variant in Variant::ALL {
                let r = wcc(&g, variant, 10_000);
                assert_eq!(r.values, expect, "{variant} seed {seed}");
            }
        }
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = EdgeList::from_edges(3, &[]);
        let r = wcc(&g, Variant::Serial, 10);
        assert_eq!(r.values, vec![0, 1, 2]);
    }

    #[test]
    fn direction_is_ignored() {
        // 2 -> 0 only: weak connectivity still merges {0, 2}.
        let g = EdgeList::from_edges(3, &[(2, 0)]);
        let r = wcc(&g, Variant::Invec, 10);
        assert_eq!(r.values, vec![0, 1, 0]);
    }

    #[test]
    fn long_chain_converges() {
        let edges: Vec<(i32, i32)> = (0..63).map(|v| (v + 1, v)).collect();
        let g = EdgeList::from_edges(64, &edges);
        for variant in [Variant::Serial, Variant::Invec, Variant::Masked] {
            let r = wcc(&g, variant, 10_000);
            assert!(r.values.iter().all(|&l| l == 0), "{variant}");
        }
    }
}
