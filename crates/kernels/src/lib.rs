//! `invector-kernels` — the paper's graph applications in every
//! implementation strategy.
//!
//! The paper's graph applications ([`pagerank`], [`sssp`], [`sswp`],
//! [`wcc`]) plus library extensions ([`bfs`], [`spmv`]), each
//! runnable as any [`Variant`]: scalar baselines, inspector/executor
//! (`tiling_and_grouping`), conflict-masking, and the paper's in-vector
//! reduction. Every vectorized variant is differential-tested against the
//! serial baseline (and against textbook references: Dijkstra, union-find).
//!
//! # Example
//!
//! ```
//! use invector_graph::gen::{rmat, RmatParams};
//! use invector_kernels::{pagerank, PageRankConfig, Variant};
//!
//! let g = rmat(1 << 8, 2_000, RmatParams::SOCIAL, 1);
//! let result = pagerank(&g, Variant::Invec, &PageRankConfig::default());
//! assert_eq!(result.values.len(), g.num_vertices());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bfs;
mod common;
pub mod euler;
mod pagerank;
pub mod relax;
mod spmv;
mod sssp;
mod sswp;
pub mod wavefront;
mod wcc;

pub use bfs::{bfs, bfs_with_policy};
pub use common::{ExecPolicy, ExecVariant, Partition, RunResult, TilingMode, Timings, Variant};
pub use pagerank::{pagerank, PageRankConfig};
pub use spmv::{spmv, spmv_with_policy};
pub use sssp::{sssp, sssp_reuse, sssp_with_policy};
pub use sswp::{sswp, sswp_reuse, sswp_with_policy};
pub use wcc::{wcc, wcc_reuse, wcc_with_policy};
