//! Sparse matrix–vector multiplication (SpMV) over the edge-list sparse
//! matrix view: `y[dst] += weight · x[src]` for every non-zero.
//!
//! SpMV is the canonical irregular reduction the paper's related work
//! optimizes (Liu et al., Tang et al.); it is PageRank's edge phase with a
//! per-edge coefficient, and exercises the same five implementation
//! strategies. Provided as a library feature beyond the paper's evaluated
//! applications.

use std::time::Instant;

use invector_core::backend::Backend;
use invector_core::masking::PositionFeeder;
use invector_core::reduce_alg1_with;
use invector_core::stats::{DepthHistogram, Utilization};
use invector_graph::group::{group_by_key, Grouping};
use invector_graph::tile::{tile_edges, DEFAULT_BLOCK_VERTICES};
use invector_graph::EdgeList;
use invector_simd::{conflict_free_subset, F32x16, I32x16, Mask16};

use crate::common::{RunResult, Timings, Variant};

/// Computes `y = A·x` where `A` is the weighted adjacency matrix of
/// `graph` (entry `A[dst][src] = weight`), using the chosen strategy.
///
/// Duplicate edges accumulate, matching the COO semantics of the paper's
/// Sparse Matrix View.
///
/// # Panics
///
/// Panics if `x.len() != graph.num_vertices()`.
pub fn spmv(graph: &EdgeList, x: &[f32], variant: Variant) -> RunResult<f32> {
    spmv_single(graph, x, variant, invector_core::backend::current())
}

/// [`spmv`] under an explicit [`ExecPolicy`](crate::common::ExecPolicy):
/// resolves `policy.backend` for the in-vector sweep. SpMV is a single
/// edge sweep, so `policy.threads` does not apply (the result records
/// `threads: 1`).
///
/// # Panics
///
/// Panics if `x.len() != graph.num_vertices()`.
pub fn spmv_with_policy(
    graph: &EdgeList,
    x: &[f32],
    variant: Variant,
    policy: &crate::common::ExecPolicy,
) -> RunResult<f32> {
    spmv_single(graph, x, variant, policy.backend.resolve())
}

fn spmv_single(graph: &EdgeList, x: &[f32], variant: Variant, backend: Backend) -> RunResult<f32> {
    assert_eq!(x.len(), graph.num_vertices(), "input vector length mismatch");
    let mut timings = Timings::default();

    let working = match variant {
        Variant::Serial => graph.clone(),
        _ => {
            let t0 = Instant::now();
            let tiling = tile_edges(graph, DEFAULT_BLOCK_VERTICES);
            let tiled = graph.permuted(&tiling.perm);
            timings.tiling = t0.elapsed();
            tiled
        }
    };
    let grouping: Option<Grouping> = match variant {
        Variant::Grouped => {
            let t0 = Instant::now();
            let positions: Vec<u32> = (0..working.num_edges() as u32).collect();
            let g = group_by_key(&positions, working.dst());
            timings.grouping = t0.elapsed();
            Some(g)
        }
        _ => None,
    };

    let mut y = vec![0.0f32; graph.num_vertices()];
    let mut utilization = Utilization::default();
    let mut depth = DepthHistogram::new();
    let instr_before = invector_simd::count::read();
    let t = Instant::now();
    match variant {
        Variant::Serial | Variant::SerialTiled => spmv_serial(&working, x, &mut y),
        Variant::Invec => spmv_invec(&working, backend, x, &mut y, &mut depth),
        Variant::Masked => spmv_masked(&working, x, &mut y, &mut utilization),
        Variant::Grouped => {
            spmv_grouped(&working, grouping.as_ref().expect("grouping built above"), x, &mut y)
        }
    }
    timings.compute = t.elapsed();

    RunResult {
        values: y,
        iterations: 1,
        timings,
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        utilization: variant.records_utilization().then_some(utilization),
        depth: variant.records_depth().then_some(depth),
        threads: 1,
    }
}

/// Modeled scalar cost of one non-zero: index loads, `x` load, weight load,
/// multiply, and the load-add-store on `y`.
pub const SERIAL_NNZ_COST: u64 = 8;

fn spmv_serial(g: &EdgeList, x: &[f32], y: &mut [f32]) {
    let (src, dst, w) = (g.src(), g.dst(), g.weight());
    for j in 0..g.num_edges() {
        y[dst[j] as usize] += w[j] * x[src[j] as usize];
    }
    invector_simd::count::bump(SERIAL_NNZ_COST * g.num_edges() as u64);
}

fn spmv_invec(
    g: &EdgeList,
    backend: Backend,
    x: &[f32],
    y: &mut [f32],
    depth: &mut DepthHistogram,
) {
    let (src, dst, w) = (g.src(), g.dst(), g.weight());
    let mut j = 0;
    while j < g.num_edges() {
        let (vsrc, active) = I32x16::load_partial(&src[j..], 0);
        let (vdst, _) = I32x16::load_partial(&dst[j..], 0);
        let (vw, _) = F32x16::load_partial(&w[j..], 0.0);
        let vx = F32x16::zero().mask_gather(active, x, vsrc);
        let mut prod = vw * vx;
        let (safe, d) =
            reduce_alg1_with::<f32, invector_core::ops::Sum, 16>(backend, active, vdst, &mut prod);
        depth.record(d);
        let old = F32x16::zero().mask_gather(safe, y, vdst);
        (old + prod).mask_scatter(safe, y, vdst);
        j += 16;
    }
}

fn spmv_masked(g: &EdgeList, x: &[f32], y: &mut [f32], util: &mut Utilization) {
    let (src, dst, w) = (g.src(), g.dst(), g.weight());
    let mut feeder = PositionFeeder::new(0, g.num_edges());
    let mut vpos = I32x16::zero();
    let mut active = Mask16::none();
    loop {
        active |= feeder.refill(!active, &mut vpos);
        if active.is_empty() {
            break;
        }
        let vsrc = I32x16::zero().mask_gather(active, src, vpos);
        let vdst = I32x16::zero().mask_gather(active, dst, vpos);
        let vw = F32x16::zero().mask_gather(active, w, vpos);
        let vx = F32x16::zero().mask_gather(active, x, vsrc);
        let prod = vw * vx;
        let safe = conflict_free_subset(active, vdst);
        let old = F32x16::zero().mask_gather(safe, y, vdst);
        (old + prod).mask_scatter(safe, y, vdst);
        util.record(u64::from(safe.count_ones()), 16);
        active = active.and_not(safe);
    }
}

fn spmv_grouped(g: &EdgeList, grouping: &Grouping, x: &[f32], y: &mut [f32]) {
    let (src, dst, w) = (g.src(), g.dst(), g.weight());
    for win in 0..grouping.num_windows() {
        let (slots, maskbits) = grouping.window(win);
        let active = Mask16::from_bits(u32::from(maskbits));
        let vpos = I32x16::from_array(std::array::from_fn(|i| slots[i] as i32));
        let vsrc = I32x16::zero().mask_gather(active, src, vpos);
        let vdst = I32x16::zero().mask_gather(active, dst, vpos);
        let vw = F32x16::zero().mask_gather(active, w, vpos);
        let vx = F32x16::zero().mask_gather(active, x, vsrc);
        let prod = vw * vx;
        let old = F32x16::zero().mask_gather(active, y, vdst);
        (old + prod).mask_scatter(active, y, vdst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invector_graph::gen;

    fn dense_reference(g: &EdgeList, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f64; g.num_vertices()];
        for j in 0..g.num_edges() {
            y[g.dst()[j] as usize] += f64::from(g.weight()[j]) * f64::from(x[g.src()[j] as usize]);
        }
        y.into_iter().map(|v| v as f32).collect()
    }

    #[test]
    fn identity_like_matrix() {
        // Each vertex forwards its own value: y = x (weights 1, self loops).
        let edges: Vec<(i32, i32, f32)> = (0..8).map(|v| (v, v, 1.0)).collect();
        let g = EdgeList::from_weighted_edges(8, &edges);
        let x: Vec<f32> = (0..8).map(|i| i as f32).collect();
        for variant in Variant::ALL {
            let r = spmv(&g, &x, variant);
            assert_eq!(r.values, x, "{variant}");
        }
    }

    #[test]
    fn all_variants_match_dense_reference() {
        let g = gen::rmat(256, 3000, gen::RmatParams::SOCIAL, 61);
        let x: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin()).collect();
        let expect = dense_reference(&g, &x);
        for variant in Variant::ALL {
            let r = spmv(&g, &x, variant);
            for (v, (a, b)) in r.values.iter().zip(&expect).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-3 * (a.abs() + b.abs() + 1e-3),
                    "{variant} row {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn duplicate_nonzeros_accumulate() {
        let g = EdgeList::from_weighted_edges(2, &[(0, 1, 2.0), (0, 1, 3.0)]);
        let r = spmv(&g, &[10.0, 0.0], Variant::Invec);
        assert_eq!(r.values, vec![0.0, 50.0]);
    }

    #[test]
    fn empty_matrix_gives_zero_vector() {
        let g = EdgeList::from_weighted_edges(3, &[]);
        let r = spmv(&g, &[1.0, 2.0, 3.0], Variant::Masked);
        assert_eq!(r.values, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_rejected() {
        let g = EdgeList::from_weighted_edges(2, &[(0, 1, 1.0)]);
        let _ = spmv(&g, &[1.0], Variant::Serial);
    }

    #[cfg(feature = "count")]
    #[test]
    fn invec_cheaper_than_masked_in_model() {
        let g = gen::rmat(512, 8000, gen::RmatParams::SOCIAL, 62);
        let x = vec![1.0f32; 512];
        let m = spmv(&g, &x, Variant::Masked);
        let i = spmv(&g, &x, Variant::Invec);
        assert!(i.instructions < m.instructions, "{} !< {}", i.instructions, m.instructions);
    }
}
