//! Edge-based unstructured-grid solver ("Euler", §2.2).
//!
//! The paper lists unstructured-grid solvers like Euler (Huo et al.) among
//! the associative irregular applications: the solver sweeps over mesh
//! *edges*, computes a flux from the two endpoint states, and accumulates
//! it into **both** endpoints with opposite signs — the same two-target
//! reduction pattern as Moldyn, but with a 4-component state vector
//! (density, x/y momentum, energy).
//!
//! The flux function here is a Rusanov-style diffusive exchange rather than
//! a full compressible-flow flux — the published performance question is
//! about the reduction/memory pattern, which is preserved exactly.

use invector_core::backend::Backend;
use invector_core::exec::parallel_chunks;
use invector_core::invec::reduce_alg1_arr_with;
use invector_core::ops::Sum;
use invector_core::stats::{DepthHistogram, Utilization};
use invector_graph::group::{group_by_two_keys, Grouping};
use invector_graph::EdgeList;
use invector_simd::{F32x16, I32x16, Mask16};

use crate::common::{ExecPolicy, ExecVariant, Variant};

/// Number of conserved components per mesh node.
pub const COMPONENTS: usize = 4;

/// Per-node state: `COMPONENTS` structure-of-arrays fields.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeState {
    /// One array per conserved component.
    pub fields: [Vec<f32>; COMPONENTS],
}

impl NodeState {
    /// A zeroed state over `n` nodes.
    pub fn zeroed(n: usize) -> Self {
        NodeState { fields: std::array::from_fn(|_| vec![0.0; n]) }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.fields[0].len()
    }

    /// `true` when the mesh has no nodes.
    pub fn is_empty(&self) -> bool {
        self.fields[0].is_empty()
    }
}

/// Generates a structured-triangulated `n × n` mesh: nodes on a grid,
/// edges to the right / below / diagonal neighbors (the classic way to get
/// an *unstructured-looking* edge list with irregular reuse).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn triangle_mesh(n: usize) -> EdgeList {
    assert!(n >= 2, "mesh needs at least 2x2 nodes");
    let id = |r: usize, c: usize| (r * n + c) as i32;
    let mut edges = Vec::new();
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < n {
                edges.push((id(r, c), id(r + 1, c)));
            }
            if r + 1 < n && c + 1 < n {
                edges.push((id(r, c), id(r + 1, c + 1)));
            }
        }
    }
    EdgeList::from_edges(n * n, &edges)
}

/// A smooth initial field: component `c` of node `v` is
/// `sin(v · (c+1) / 7)` — deterministic and non-trivial.
pub fn initial_state(num_nodes: usize) -> NodeState {
    NodeState {
        fields: std::array::from_fn(|c| {
            (0..num_nodes).map(|v| ((v * (c + 1)) as f32 / 7.0).sin()).collect()
        }),
    }
}

/// Diffusive exchange coefficient.
const KAPPA: f32 = 0.25;

/// One edge-sweep: accumulates the per-edge flux into `update` (both
/// endpoints, opposite signs) with the chosen strategy, returning recorded
/// statistics for the vectorized variants.
///
/// # Panics
///
/// Panics if state/update sizes disagree with the mesh.
pub fn flux_sweep(
    mesh: &EdgeList,
    state: &NodeState,
    update: &mut NodeState,
    variant: Variant,
) -> (Option<Utilization>, Option<DepthHistogram>) {
    flux_sweep_with(mesh, state, update, variant, invector_core::backend::current())
}

/// [`flux_sweep`] against an explicitly resolved backend (the in-vector
/// variant is the only one that dispatches per backend).
///
/// # Panics
///
/// Panics if state/update sizes disagree with the mesh.
pub fn flux_sweep_with(
    mesh: &EdgeList,
    state: &NodeState,
    update: &mut NodeState,
    variant: Variant,
    backend: Backend,
) -> (Option<Utilization>, Option<DepthHistogram>) {
    assert_eq!(state.len(), mesh.num_vertices(), "state size mismatch");
    assert_eq!(update.len(), mesh.num_vertices(), "update size mismatch");
    match variant {
        Variant::Serial | Variant::SerialTiled => {
            sweep_serial(mesh, state, update);
            (None, None)
        }
        Variant::Invec => {
            let mut depth = DepthHistogram::new();
            sweep_invec(mesh, backend, state, update, &mut depth);
            (None, Some(depth))
        }
        Variant::Masked => {
            let mut util = Utilization::default();
            sweep_masked(mesh, state, update, &mut util);
            (Some(util), None)
        }
        Variant::Grouped => {
            let positions: Vec<u32> = (0..mesh.num_edges() as u32).collect();
            let grouping = group_by_two_keys(&positions, mesh.src(), mesh.dst());
            sweep_grouped(mesh, &grouping, state, update);
            (None, None)
        }
    }
}

/// Modeled scalar cost of one edge: endpoint loads, 4 state loads per side,
/// 4 flux ops, 8 update load-add-stores.
pub const SERIAL_EDGE_COST: u64 = 26;

fn sweep_serial(mesh: &EdgeList, state: &NodeState, update: &mut NodeState) {
    for j in 0..mesh.num_edges() {
        let a = mesh.src()[j] as usize;
        let b = mesh.dst()[j] as usize;
        for c in 0..COMPONENTS {
            let flux = KAPPA * (state.fields[c][a] - state.fields[c][b]);
            update.fields[c][a] -= flux;
            update.fields[c][b] += flux;
        }
    }
    invector_simd::count::bump(SERIAL_EDGE_COST * mesh.num_edges() as u64);
}

/// Computes the per-component flux vectors for the active lanes.
#[inline]
fn flux_vectors(state: &NodeState, active: Mask16, va: I32x16, vb: I32x16) -> [F32x16; COMPONENTS] {
    let kappa = F32x16::splat(KAPPA);
    std::array::from_fn(|c| {
        let ua = F32x16::zero().mask_gather(active, &state.fields[c], va);
        let ub = F32x16::zero().mask_gather(active, &state.fields[c], vb);
        kappa * (ua - ub)
    })
}

/// Gather-add-scatter of the flux components into one endpoint axis.
#[inline]
fn scatter_axis(
    update: &mut NodeState,
    safe: Mask16,
    idx: I32x16,
    flux: &[F32x16; COMPONENTS],
    negate: bool,
) {
    for (c, &f) in flux.iter().enumerate() {
        let old = F32x16::zero().mask_gather(safe, &update.fields[c], idx);
        let new = if negate { old - f } else { old + f };
        new.mask_scatter(safe, &mut update.fields[c], idx);
    }
}

fn sweep_invec(
    mesh: &EdgeList,
    backend: Backend,
    state: &NodeState,
    update: &mut NodeState,
    depth: &mut DepthHistogram,
) {
    let (src, dst) = (mesh.src(), mesh.dst());
    let mut j = 0;
    while j < mesh.num_edges() {
        let (va, active) = I32x16::load_partial(&src[j..], 0);
        let (vb, _) = I32x16::load_partial(&dst[j..], 0);
        let flux = flux_vectors(state, active, va, vb);

        let mut comps = flux;
        let (safe_a, d1) =
            reduce_alg1_arr_with::<f32, Sum, COMPONENTS, 16>(backend, active, va, &mut comps);
        depth.record(d1);
        scatter_axis(update, safe_a, va, &comps, true);

        let mut comps = flux;
        let (safe_b, d2) =
            reduce_alg1_arr_with::<f32, Sum, COMPONENTS, 16>(backend, active, vb, &mut comps);
        depth.record(d2);
        scatter_axis(update, safe_b, vb, &comps, false);

        j += 16;
    }
}

fn sweep_masked(
    mesh: &EdgeList,
    state: &NodeState,
    update: &mut NodeState,
    util: &mut Utilization,
) {
    let (src, dst) = (mesh.src(), mesh.dst());
    let lane_ids = I32x16::iota();
    let mut scratch = vec![0i32; mesh.num_vertices()];
    let mut j = 0;
    while j < mesh.num_edges() {
        let (va, loaded) = I32x16::load_partial(&src[j..], 0);
        let (vb, _) = I32x16::load_partial(&dst[j..], 0);
        let mut active = loaded;
        let mut stuck_guard = 0u32;
        while !active.is_empty() {
            let flux = flux_vectors(state, active, va, vb);
            // Gather-after-scatter conflict detection across both axes.
            lane_ids.mask_scatter(active, &mut scratch, va);
            lane_ids.mask_scatter(active, &mut scratch, vb);
            let got_a = I32x16::zero().mask_gather(active, &scratch, va);
            let got_b = I32x16::zero().mask_gather(active, &scratch, vb);
            let safe = got_a.simd_eq(lane_ids) & got_b.simd_eq(lane_ids) & active;
            scatter_axis(update, safe, va, &flux, true);
            scatter_axis(update, safe, vb, &flux, false);
            util.record(u64::from(safe.count_ones()), 16);
            active = active.and_not(safe);
            // Progress guarantee against gather-after-scatter starvation.
            if safe.is_empty() {
                stuck_guard += 1;
                if stuck_guard > 1 {
                    let lane = active.first_set().expect("nonempty");
                    let pos = j + lane;
                    let a = mesh.src()[pos] as usize;
                    let b = mesh.dst()[pos] as usize;
                    for c in 0..COMPONENTS {
                        let f = KAPPA * (state.fields[c][a] - state.fields[c][b]);
                        update.fields[c][a] -= f;
                        update.fields[c][b] += f;
                    }
                    util.record(1, 16);
                    active = active.with(lane, false);
                }
            } else {
                stuck_guard = 0;
            }
        }
        j += 16;
    }
}

/// One edge-sweep distributed over the execution engine's thread pool.
///
/// Every edge writes **two** endpoints, so the single-target owner-computes
/// partition does not apply; instead edges are chunked in stream order via
/// [`parallel_chunks`] and each worker accumulates into a private
/// [`NodeState`] bounded to the node range its chunk touches (not the whole
/// mesh). Private states are folded into `update` in task order, so results
/// are deterministic across runs at a fixed thread count (and within the
/// usual float-reassociation tolerance of the serial sweep).
///
/// The per-worker strategy follows [`Variant::exec_variant`]; one thread
/// delegates to [`flux_sweep`]. Returns the depth histogram (in-vector
/// workers) and the number of workers used.
pub fn flux_sweep_parallel(
    mesh: &EdgeList,
    state: &NodeState,
    update: &mut NodeState,
    variant: Variant,
    policy: &ExecPolicy,
) -> (Option<DepthHistogram>, usize) {
    assert_eq!(state.len(), mesh.num_vertices(), "state size mismatch");
    assert_eq!(update.len(), mesh.num_vertices(), "update size mismatch");
    // Resolved once per sweep; worker closures capture the resolved value.
    let backend = policy.backend.resolve();
    if policy.threads <= 1 {
        let (_, depth) = flux_sweep_with(mesh, state, update, variant, backend);
        return (depth, 1);
    }
    let worker = variant.exec_variant();
    let (src, dst) = (mesh.src(), mesh.dst());
    let results = parallel_chunks(mesh.num_edges(), policy.threads, |_, range| {
        // Bound the private state to the chunk's touched node range.
        let (mut lo, mut hi) = (0usize, 0usize);
        if !range.is_empty() {
            let (mut min_n, mut max_n) = (i32::MAX, i32::MIN);
            for p in range.clone() {
                min_n = min_n.min(src[p]).min(dst[p]);
                max_n = max_n.max(src[p]).max(dst[p]);
            }
            lo = min_n as usize;
            hi = max_n as usize + 1;
        }
        let mut private = NodeState::zeroed(hi - lo);
        let mut depth = DepthHistogram::new();
        match worker {
            ExecVariant::Serial => sweep_serial_ranged(mesh, state, &mut private, lo, &range),
            _ => sweep_invec_ranged(mesh, backend, state, &mut private, lo, &range, &mut depth),
        }
        (lo, private, depth)
    });
    let threads = results.len();
    let mut depth = DepthHistogram::new();
    for (lo, private, d) in results {
        for c in 0..COMPONENTS {
            for (slot, p) in
                update.fields[c][lo..lo + private.len()].iter_mut().zip(&private.fields[c])
            {
                *slot += p;
            }
        }
        depth.merge(&d);
    }
    ((worker == ExecVariant::Invec).then_some(depth), threads)
}

/// Scalar sweep of one edge range into a private window whose index space
/// starts at node `base`.
fn sweep_serial_ranged(
    mesh: &EdgeList,
    state: &NodeState,
    update: &mut NodeState,
    base: usize,
    range: &std::ops::Range<usize>,
) {
    for j in range.clone() {
        let a = mesh.src()[j] as usize;
        let b = mesh.dst()[j] as usize;
        for c in 0..COMPONENTS {
            let flux = KAPPA * (state.fields[c][a] - state.fields[c][b]);
            update.fields[c][a - base] -= flux;
            update.fields[c][b - base] += flux;
        }
    }
    invector_simd::count::bump(SERIAL_EDGE_COST * range.len() as u64);
}

/// In-vector sweep of one edge range: state is gathered with the global
/// node ids, the update scatters through ids rebased by `base`.
fn sweep_invec_ranged(
    mesh: &EdgeList,
    backend: Backend,
    state: &NodeState,
    update: &mut NodeState,
    base: usize,
    range: &std::ops::Range<usize>,
    depth: &mut DepthHistogram,
) {
    let (src, dst) = (mesh.src(), mesh.dst());
    let vbase = I32x16::splat(base as i32);
    let mut j = range.start;
    while j < range.end {
        let (va, active) = I32x16::load_partial(&src[j..range.end], 0);
        let (vb, _) = I32x16::load_partial(&dst[j..range.end], 0);
        let flux = flux_vectors(state, active, va, vb);
        let (ra, rb) = (va - vbase, vb - vbase);

        let mut comps = flux;
        let (safe_a, d1) =
            reduce_alg1_arr_with::<f32, Sum, COMPONENTS, 16>(backend, active, ra, &mut comps);
        depth.record(d1);
        scatter_axis(update, safe_a, ra, &comps, true);

        let mut comps = flux;
        let (safe_b, d2) =
            reduce_alg1_arr_with::<f32, Sum, COMPONENTS, 16>(backend, active, rb, &mut comps);
        depth.record(d2);
        scatter_axis(update, safe_b, rb, &comps, false);

        j += 16;
    }
}

fn sweep_grouped(mesh: &EdgeList, grouping: &Grouping, state: &NodeState, update: &mut NodeState) {
    let (src, dst) = (mesh.src(), mesh.dst());
    for w in 0..grouping.num_windows() {
        let (slots, maskbits) = grouping.window(w);
        let active = Mask16::from_bits(u32::from(maskbits));
        let vpos = I32x16::from_array(std::array::from_fn(|i| slots[i] as i32));
        let va = I32x16::zero().mask_gather(active, src, vpos);
        let vb = I32x16::zero().mask_gather(active, dst, vpos);
        let flux = flux_vectors(state, active, va, vb);
        scatter_axis(update, active, va, &flux, true);
        scatter_axis(update, active, vb, &flux, false);
    }
}

/// Runs `iterations` explicit edge-sweep steps (`state += dt · update`)
/// and returns the final state.
///
/// # Panics
///
/// Panics if `state.len() != mesh.num_vertices()`.
pub fn euler_run(
    mesh: &EdgeList,
    state: &NodeState,
    variant: Variant,
    iterations: u32,
    dt: f32,
) -> NodeState {
    let mut state = state.clone();
    let mut update = NodeState::zeroed(state.len());
    for _ in 0..iterations {
        for field in &mut update.fields {
            field.fill(0.0);
        }
        let _ = flux_sweep(mesh, &state, &mut update, variant);
        for c in 0..COMPONENTS {
            for (s, u) in state.fields[c].iter_mut().zip(&update.fields[c]) {
                *s += dt * u;
            }
        }
    }
    state
}

/// Runs `iterations` explicit edge-sweep steps with every sweep distributed
/// over the execution engine; one thread delegates to the serial driver.
/// Returns the final state and the number of workers used.
///
/// # Panics
///
/// Panics if `state.len() != mesh.num_vertices()`.
pub fn euler_run_with_policy(
    mesh: &EdgeList,
    state: &NodeState,
    variant: Variant,
    iterations: u32,
    dt: f32,
    policy: &ExecPolicy,
) -> (NodeState, usize) {
    let mut state = state.clone();
    let mut update = NodeState::zeroed(state.len());
    let mut threads = 1;
    for _ in 0..iterations {
        for field in &mut update.fields {
            field.fill(0.0);
        }
        let (_, used) = flux_sweep_parallel(mesh, &state, &mut update, variant, policy);
        threads = threads.max(used);
        for c in 0..COMPONENTS {
            for (s, u) in state.fields[c].iter_mut().zip(&update.fields[c]) {
                *s += dt * u;
            }
        }
    }
    (state, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_state_close(a: &NodeState, b: &NodeState, tol: f32) {
        for c in 0..COMPONENTS {
            for (v, (x, y)) in a.fields[c].iter().zip(&b.fields[c]).enumerate() {
                assert!(
                    (x - y).abs() <= tol * (x.abs() + y.abs() + 1e-3),
                    "component {c} node {v}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn mesh_has_expected_shape() {
        let mesh = triangle_mesh(4);
        assert_eq!(mesh.num_vertices(), 16);
        // 12 horizontal + 12 vertical + 9 diagonal edges.
        assert_eq!(mesh.num_edges(), 33);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_mesh_rejected() {
        let _ = triangle_mesh(1);
    }

    #[test]
    fn flux_conserves_every_component() {
        // Diffusive exchange moves mass between nodes, never creates it.
        let mesh = triangle_mesh(6);
        let state = initial_state(36);
        let mut update = NodeState::zeroed(36);
        flux_sweep(&mesh, &state, &mut update, Variant::Serial);
        for c in 0..COMPONENTS {
            let net: f32 = update.fields[c].iter().sum();
            assert!(net.abs() < 1e-4, "component {c} net {net}");
        }
    }

    #[test]
    fn all_variants_agree_on_one_sweep() {
        let mesh = triangle_mesh(8);
        let state = initial_state(64);
        let mut reference = NodeState::zeroed(64);
        flux_sweep(&mesh, &state, &mut reference, Variant::Serial);
        for variant in Variant::ALL {
            let mut update = NodeState::zeroed(64);
            let (util, depth) = flux_sweep(&mesh, &state, &mut update, variant);
            assert_state_close(&update, &reference, 1e-3);
            match variant {
                Variant::Masked => assert!(util.expect("util").slots > 0),
                Variant::Invec => assert!(depth.expect("depth").invocations() > 0),
                _ => {}
            }
        }
    }

    #[test]
    fn multi_step_runs_agree_and_diffuse() {
        let mesh = triangle_mesh(6);
        let state = initial_state(36);
        let serial = euler_run(&mesh, &state, Variant::Serial, 10, 0.05);
        for variant in [Variant::Invec, Variant::Masked, Variant::Grouped] {
            let got = euler_run(&mesh, &state, variant, 10, 0.05);
            assert_state_close(&got, &serial, 2e-3);
        }
        // Diffusion shrinks the field's variance.
        let var = |f: &[f32]| {
            let mean: f32 = f.iter().sum::<f32>() / f.len() as f32;
            f.iter().map(|x| (x - mean).powi(2)).sum::<f32>()
        };
        assert!(var(&serial.fields[0]) < var(&state.fields[0]));
    }

    #[cfg(feature = "count")]
    #[test]
    fn invec_cheaper_than_masked_in_model() {
        let mesh = triangle_mesh(24);
        let state = initial_state(mesh.num_vertices());
        let mut u1 = NodeState::zeroed(state.len());
        invector_simd::count::reset();
        flux_sweep(&mesh, &state, &mut u1, Variant::Invec);
        let invec_cost = invector_simd::count::take();
        let mut u2 = NodeState::zeroed(state.len());
        flux_sweep(&mesh, &state, &mut u2, Variant::Masked);
        let masked_cost = invector_simd::count::take();
        assert!(invec_cost < masked_cost, "{invec_cost} !< {masked_cost}");
    }

    #[test]
    fn parallel_sweeps_agree_with_serial_across_thread_counts() {
        let mesh = triangle_mesh(10);
        let state = initial_state(100);
        let mut reference = NodeState::zeroed(100);
        flux_sweep(&mesh, &state, &mut reference, Variant::Serial);
        for threads in [2, 3, 8] {
            for variant in [Variant::Serial, Variant::Invec] {
                let mut update = NodeState::zeroed(100);
                let policy = ExecPolicy::with_threads(threads);
                let (depth, used) =
                    flux_sweep_parallel(&mesh, &state, &mut update, variant, &policy);
                assert_state_close(&update, &reference, 1e-3);
                assert!(used > 1, "{variant} {threads} threads");
                assert_eq!(depth.is_some(), variant == Variant::Invec);
            }
        }
    }

    #[test]
    fn parallel_multi_step_run_is_deterministic_and_tracks_serial() {
        let mesh = triangle_mesh(8);
        let state = initial_state(64);
        let serial = euler_run(&mesh, &state, Variant::Serial, 10, 0.05);
        let policy = ExecPolicy::with_threads(4);
        let (par, threads) =
            euler_run_with_policy(&mesh, &state, Variant::Invec, 10, 0.05, &policy);
        assert!(threads > 1);
        assert_state_close(&par, &serial, 2e-3);
        // Fixed thread count, fold in task order: reruns are bit-identical.
        let (again, _) = euler_run_with_policy(&mesh, &state, Variant::Invec, 10, 0.05, &policy);
        assert_eq!(par, again);
    }

    #[test]
    fn grid_edges_conflict_heavily_in_vectors() {
        // Consecutive mesh edges share endpoints: the invec depth must be
        // substantial (this is why the app class needs conflict handling).
        let mesh = triangle_mesh(16);
        let state = initial_state(mesh.num_vertices());
        let mut update = NodeState::zeroed(state.len());
        let (_, depth) = flux_sweep(&mesh, &state, &mut update, Variant::Invec);
        assert!(depth.expect("depth").mean() > 1.0);
    }
}
