//! Generic edge-relaxation kernels for wave-frontier algorithms.
//!
//! SSSP, SSWP and WCC share one shape (§2.3): for each active edge
//! `(nx, ny, w)`, compute a candidate from the source value and relax the
//! destination with an associative min/max. This module factors that shape
//! into a [`RelaxRule`] and provides one relaxation kernel per
//! implementation strategy; the drivers in [`crate::wavefront`] iterate them
//! to convergence.

use invector_core::backend::Backend;
use invector_core::masking::PositionFeeder;
use invector_core::ops::ReduceOp;
use invector_core::reduce_alg1_with;
use invector_core::stats::{DepthHistogram, Utilization};
use invector_graph::group::Grouping;
use invector_graph::Frontier;
use invector_simd::{conflict_free_subset, count, F32x16, I32x16, Mask16, SimdElement, SimdVec};

/// One wave-frontier relaxation rule (the per-application plug-in).
pub trait RelaxRule: Copy + Send + Sync + 'static {
    /// Per-vertex value type (distances, widths, labels).
    type Value: SimdElement;
    /// The associative operator that makes in-vector reduction legal.
    type Op: ReduceOp<Self::Value>;

    /// Rule name for harness output.
    const NAME: &'static str;
    /// Whether the rule reads edge weights (WCC does not).
    const USES_WEIGHT: bool;

    /// The value of a vertex no wave has reached yet.
    fn unreached() -> Self::Value;

    /// Candidate value propagated along an edge.
    fn candidate(src_val: Self::Value, weight: f32) -> Self::Value;

    /// `true` if `cand` is strictly better than `current`.
    fn improves(cand: Self::Value, current: Self::Value) -> bool;

    /// Vector candidate computation (one SIMD instruction by default).
    #[inline]
    fn candidate_vec(src: SimdVec<Self::Value, 16>, weight: F32x16) -> SimdVec<Self::Value, 16> {
        count::bump(1);
        let (s, w) = (src.as_array(), weight.as_array());
        SimdVec::from_array(std::array::from_fn(|i| Self::candidate(s[i], w[i])))
    }

    /// Vector improvement test (one SIMD compare by default).
    #[inline]
    fn improves_vec(cand: SimdVec<Self::Value, 16>, current: SimdVec<Self::Value, 16>) -> Mask16 {
        count::bump(1);
        let (c, u) = (cand.as_array(), current.as_array());
        Mask16::from_array(std::array::from_fn(|i| Self::improves(c[i], u[i])))
    }
}

/// Views a `u32` position list as `i32` for SIMD index vectors.
///
/// Edge positions are bounded by the edge count, far below `i32::MAX`.
#[inline]
pub(crate) fn positions_as_i32(positions: &[u32]) -> &[i32] {
    debug_assert!(positions.iter().all(|&p| p <= i32::MAX as u32));
    // SAFETY: u32 and i32 have identical layout; values checked above.
    unsafe { std::slice::from_raw_parts(positions.as_ptr().cast::<i32>(), positions.len()) }
}

/// Modeled scalar cost per relaxed edge (Figure 2's loop body): position
/// and endpoint loads, source value and weight loads, the candidate
/// arithmetic, the compare against the current value.
pub const SERIAL_EDGE_COST: u64 = 8;

/// Extra modeled cost when the relaxation improves: the store plus the
/// frontier insertion.
pub const SERIAL_IMPROVE_COST: u64 = 3;

/// Scalar relaxation over `positions` (the serial baseline).
pub fn relax_serial<R: RelaxRule>(
    positions: &[u32],
    src: &[i32],
    dst: &[i32],
    weight: &[f32],
    vals: &[R::Value],
    new_vals: &mut [R::Value],
    next: &mut Frontier,
) {
    let mut improved = 0u64;
    for &p in positions {
        let p = p as usize;
        let nx = src[p] as usize;
        let ny = dst[p] as usize;
        let cand = R::candidate(vals[nx], weight[p]);
        if R::improves(cand, new_vals[ny]) {
            new_vals[ny] = cand;
            next.insert(dst[p]);
            improved += 1;
        }
    }
    count::bump(SERIAL_EDGE_COST * positions.len() as u64 + SERIAL_IMPROVE_COST * improved);
}

/// Gathers the per-edge operands for the active lanes of a position vector.
#[inline]
fn gather_edge<R: RelaxRule>(
    active: Mask16,
    vpos: I32x16,
    src: &[i32],
    dst: &[i32],
    weight: &[f32],
    vals: &[R::Value],
) -> (I32x16, SimdVec<R::Value, 16>, F32x16) {
    let vnx = I32x16::zero().mask_gather(active, src, vpos);
    let vny = I32x16::zero().mask_gather(active, dst, vpos);
    let vw = if R::USES_WEIGHT {
        F32x16::zero().mask_gather(active, weight, vpos)
    } else {
        F32x16::zero()
    };
    let vsrc = SimdVec::<R::Value, 16>::zero().mask_gather(active, vals, vnx);
    (vny, vsrc, vw)
}

/// In-vector-reduction relaxation: 16 edges per vector, conflicts folded
/// with `invec_min`/`invec_max` before one conflict-free masked scatter.
#[allow(clippy::too_many_arguments)]
pub fn relax_invec<R: RelaxRule>(
    backend: Backend,
    positions: &[u32],
    src: &[i32],
    dst: &[i32],
    weight: &[f32],
    vals: &[R::Value],
    new_vals: &mut [R::Value],
    next: &mut Frontier,
    depth: &mut DepthHistogram,
) {
    let pos = positions_as_i32(positions);
    let mut j = 0;
    while j < pos.len() {
        let (vpos, active) = I32x16::load_partial(&pos[j..], 0);
        let (vny, vsrc, vw) = gather_edge::<R>(active, vpos, src, dst, weight, vals);
        let mut cand = R::candidate_vec(vsrc, vw);
        let (safe, d) = reduce_alg1_with::<R::Value, R::Op, 16>(backend, active, vny, &mut cand);
        depth.record(d);
        let cur = SimdVec::<R::Value, 16>::zero().mask_gather(safe, new_vals, vny);
        let improved = R::improves_vec(cand, cur) & safe;
        cand.mask_scatter(improved, new_vals, vny);
        for lane in improved.iter_set() {
            next.insert(vny.extract(lane));
        }
        j += 16;
    }
}

/// Conflict-masking relaxation (Figure 3): only the conflict-free subset of
/// lanes that need an update commits each round; the rest retry.
#[allow(clippy::too_many_arguments)]
pub fn relax_masked<R: RelaxRule>(
    positions: &[u32],
    src: &[i32],
    dst: &[i32],
    weight: &[f32],
    vals: &[R::Value],
    new_vals: &mut [R::Value],
    next: &mut Frontier,
    util: &mut Utilization,
) {
    let pos = positions_as_i32(positions);
    let mut feeder = PositionFeeder::new(0, pos.len());
    let mut vpos = I32x16::zero();
    let mut active = Mask16::none();
    loop {
        active |= feeder.refill(!active, &mut vpos);
        if active.is_empty() {
            break;
        }
        // vpos indexes the active-position list; dereference to edge ids.
        let vedge = I32x16::zero().mask_gather(active, pos, vpos);
        let (vny, vsrc, vw) = gather_edge::<R>(active, vedge, src, dst, weight, vals);
        let cand = R::candidate_vec(vsrc, vw);
        let cur = SimdVec::<R::Value, 16>::zero().mask_gather(active, new_vals, vny);
        let mtodo = R::improves_vec(cand, cur) & active;
        // Lanes with nothing to write complete immediately.
        let done_quietly = active.and_not(mtodo);
        let safe = conflict_free_subset(mtodo, vny);
        cand.mask_scatter(safe, new_vals, vny);
        for lane in safe.iter_set() {
            next.insert(vny.extract(lane));
        }
        // Utilization counts committing writers only (the paper's measure):
        // lanes whose relaxation was superseded did not do useful work.
        util.record(u64::from(safe.count_ones()), 16);
        active = active.and_not(safe).and_not(done_quietly);
    }
}

/// Relaxes one conflict-free window: `slots` are edge positions (padding
/// slots are masked out of `active`), and within the window all
/// destinations are distinct, so improved lanes scatter unchecked.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn relax_window<R: RelaxRule>(
    slots: &[u32],
    active: Mask16,
    src: &[i32],
    dst: &[i32],
    weight: &[f32],
    vals: &[R::Value],
    new_vals: &mut [R::Value],
    next: &mut Frontier,
) {
    let vpos = I32x16::from_array(std::array::from_fn(|i| slots[i] as i32));
    let (vny, vsrc, vw) = gather_edge::<R>(active, vpos, src, dst, weight, vals);
    let cand = R::candidate_vec(vsrc, vw);
    let cur = SimdVec::<R::Value, 16>::zero().mask_gather(active, new_vals, vny);
    let improved = R::improves_vec(cand, cur) & active;
    cand.mask_scatter(improved, new_vals, vny);
    for lane in improved.iter_set() {
        next.insert(vny.extract(lane));
    }
}

/// Grouped (inspector/executor) relaxation: windows are conflict-free by
/// construction, so improved lanes scatter without any runtime checking.
pub fn relax_grouped<R: RelaxRule>(
    grouping: &Grouping,
    src: &[i32],
    dst: &[i32],
    weight: &[f32],
    vals: &[R::Value],
    new_vals: &mut [R::Value],
    next: &mut Frontier,
) {
    for w in 0..grouping.num_windows() {
        let (slots, maskbits) = grouping.window(w);
        let active = Mask16::from_bits(u32::from(maskbits));
        relax_window::<R>(slots, active, src, dst, weight, vals, new_vals, next);
    }
}

/// SSSP rule: `dis_new[ny] = min(dis_new[ny], dis[nx] + w)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsspRule;

impl RelaxRule for SsspRule {
    type Value = f32;
    type Op = invector_core::ops::Min;
    const NAME: &'static str = "sssp";
    const USES_WEIGHT: bool = true;

    fn unreached() -> f32 {
        f32::INFINITY
    }
    #[inline]
    fn candidate(src_val: f32, weight: f32) -> f32 {
        src_val + weight
    }
    #[inline]
    fn improves(cand: f32, current: f32) -> bool {
        cand < current
    }
}

/// SSWP rule: `width[ny] = max(width[ny], min(width[nx], w))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SswpRule;

impl RelaxRule for SswpRule {
    type Value = f32;
    type Op = invector_core::ops::Max;
    const NAME: &'static str = "sswp";
    const USES_WEIGHT: bool = true;

    fn unreached() -> f32 {
        0.0
    }
    #[inline]
    fn candidate(src_val: f32, weight: f32) -> f32 {
        src_val.min(weight)
    }
    #[inline]
    fn improves(cand: f32, current: f32) -> bool {
        cand > current
    }
}

/// BFS rule: hop counts, `depth[ny] = min(depth[ny], depth[nx] + 1)` —
/// the wave-frontier traversal itself, i.e. SSSP on unit weights carried in
/// integer arithmetic (so agreement across variants is exact by
/// construction, not by float luck).
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsRule;

impl RelaxRule for BfsRule {
    type Value = i32;
    type Op = invector_core::ops::Min;
    const NAME: &'static str = "bfs";
    const USES_WEIGHT: bool = false;

    fn unreached() -> i32 {
        i32::MAX
    }
    #[inline]
    fn candidate(src_val: i32, _weight: f32) -> i32 {
        src_val.saturating_add(1)
    }
    #[inline]
    fn improves(cand: i32, current: i32) -> bool {
        cand < current
    }
}

/// WCC rule: propagate the minimum component label along (symmetrized)
/// edges: `label[ny] = min(label[ny], label[nx])`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WccRule;

impl RelaxRule for WccRule {
    type Value = i32;
    type Op = invector_core::ops::Min;
    const NAME: &'static str = "wcc";
    const USES_WEIGHT: bool = false;

    fn unreached() -> i32 {
        i32::MAX
    }
    #[inline]
    fn candidate(src_val: i32, _weight: f32) -> i32 {
        src_val
    }
    #[inline]
    fn improves(cand: i32, current: i32) -> bool {
        cand < current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invector_graph::group::group_by_key;

    /// Tiny weighted graph: 0 -> 1 (1.0), 0 -> 2 (4.0), 1 -> 2 (1.5), with a
    /// duplicate edge 0 -> 2 (3.0) to force a lane conflict when vectorized.
    fn edges() -> (Vec<i32>, Vec<i32>, Vec<f32>) {
        (vec![0, 0, 1, 0], vec![1, 2, 2, 2], vec![1.0, 4.0, 1.5, 3.0])
    }

    fn run_all_kernels<R: RelaxRule>(
        src: &[i32],
        dst: &[i32],
        weight: &[f32],
        vals: &[R::Value],
        init_new: &[R::Value],
    ) -> Vec<(Vec<R::Value>, Vec<i32>)> {
        let positions: Vec<u32> = (0..src.len() as u32).collect();
        let nv = vals.len();
        let mut outs = Vec::new();

        let mut nv1 = init_new.to_vec();
        let mut f1 = Frontier::new(nv);
        relax_serial::<R>(&positions, src, dst, weight, vals, &mut nv1, &mut f1);
        outs.push((nv1, sorted(f1)));

        let mut nv2 = init_new.to_vec();
        let mut f2 = Frontier::new(nv);
        let mut depth = DepthHistogram::new();
        relax_invec::<R>(
            Backend::Portable,
            &positions,
            src,
            dst,
            weight,
            vals,
            &mut nv2,
            &mut f2,
            &mut depth,
        );
        outs.push((nv2, sorted(f2)));

        let mut nv3 = init_new.to_vec();
        let mut f3 = Frontier::new(nv);
        let mut util = Utilization::default();
        relax_masked::<R>(&positions, src, dst, weight, vals, &mut nv3, &mut f3, &mut util);
        outs.push((nv3, sorted(f3)));

        let mut nv4 = init_new.to_vec();
        let mut f4 = Frontier::new(nv);
        let grouping = group_by_key(&positions, dst);
        relax_grouped::<R>(&grouping, src, dst, weight, vals, &mut nv4, &mut f4);
        outs.push((nv4, sorted(f4)));

        outs
    }

    fn sorted(f: Frontier) -> Vec<i32> {
        let mut v = f.vertices().to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn sssp_kernels_agree_on_conflicting_edges() {
        let (src, dst, w) = edges();
        let vals = vec![0.0f32, 1.0, f32::INFINITY];
        let init = vals.clone();
        let outs = run_all_kernels::<SsspRule>(&src, &dst, &w, &vals, &init);
        for (new_vals, frontier) in &outs {
            assert_eq!(new_vals[1], 1.0); // 0+1.0 does not improve existing 1.0? (equal, not strict)
            assert_eq!(new_vals[2], 2.5); // min(4.0, 1.0+1.5, 3.0)
            assert_eq!(frontier, &vec![2]);
        }
    }

    #[test]
    fn sswp_kernels_agree() {
        let (src, dst, w) = edges();
        let vals = vec![f32::INFINITY, 1.0, 0.0];
        let init = vals.clone();
        let outs = run_all_kernels::<SswpRule>(&src, &dst, &w, &vals, &init);
        for (new_vals, frontier) in &outs {
            // Widths into 2: min(inf,4)=4, min(1,1.5)=1, min(inf,3)=3 -> max 4.
            assert_eq!(new_vals[2], 4.0);
            assert_eq!(frontier, &vec![2]);
        }
    }

    #[test]
    fn wcc_kernels_agree() {
        let (src, dst, _w) = edges();
        let w = vec![0.0; 4];
        let vals = vec![0, 1, 2];
        let init = vals.clone();
        let outs = run_all_kernels::<WccRule>(&src, &dst, &w, &vals, &init);
        for (new_vals, frontier) in &outs {
            assert_eq!(new_vals, &vec![0, 0, 0]);
            let mut f = frontier.clone();
            f.dedup();
            assert_eq!(f, vec![1, 2]);
        }
    }

    #[test]
    fn all_kernels_agree_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        for _ in 0..30 {
            let nv = rng.gen_range(2..40);
            let ne = rng.gen_range(0..200);
            let src: Vec<i32> = (0..ne).map(|_| rng.gen_range(0..nv)).collect();
            let dst: Vec<i32> = (0..ne).map(|_| rng.gen_range(0..nv)).collect();
            let w: Vec<f32> = (0..ne).map(|_| rng.gen_range(0.5..5.0)).collect();
            let vals: Vec<f32> = (0..nv)
                .map(|_| if rng.gen_bool(0.3) { f32::INFINITY } else { rng.gen_range(0.0..10.0) })
                .collect();
            let outs = run_all_kernels::<SsspRule>(&src, &dst, &w, &vals, &vals.clone());
            let (reference, ref_frontier) = &outs[0];
            for (i, (out, frontier)) in outs.iter().enumerate().skip(1) {
                assert_eq!(out, reference, "kernel {i} values diverged");
                assert_eq!(frontier, ref_frontier, "kernel {i} frontier diverged");
            }
        }
    }

    #[test]
    fn masked_utilization_degrades_with_conflicts() {
        let n = 256;
        let src: Vec<i32> = vec![0; n];
        let dst_conflict: Vec<i32> = vec![1; n];
        let dst_spread: Vec<i32> = (0..n as i32).map(|i| 1 + (i % 255)).collect();
        let w: Vec<f32> = (0..n).map(|i| 1.0 + i as f32).collect();
        let vals = vec![0.0f32; 256];
        let positions: Vec<u32> = (0..n as u32).collect();

        let mut util_c = Utilization::default();
        let mut nv = vec![f32::INFINITY; 256];
        let mut f = Frontier::new(256);
        relax_masked::<SsspRule>(
            &positions,
            &src,
            &dst_conflict,
            &w,
            &vals,
            &mut nv,
            &mut f,
            &mut util_c,
        );

        let mut util_s = Utilization::default();
        let mut nv = vec![f32::INFINITY; 256];
        let mut f = Frontier::new(256);
        relax_masked::<SsspRule>(
            &positions,
            &src,
            &dst_spread,
            &w,
            &vals,
            &mut nv,
            &mut f,
            &mut util_s,
        );

        assert!(util_c.ratio() < util_s.ratio(), "{} !< {}", util_c.ratio(), util_s.ratio());
    }

    #[test]
    fn invec_depth_histogram_reflects_conflicts() {
        let src = vec![0i32; 16];
        let dst = vec![3i32; 16];
        let w = vec![1.0f32; 16];
        let vals = vec![0.0f32; 4];
        let mut nv = vec![f32::INFINITY; 4];
        let mut f = Frontier::new(4);
        let mut depth = DepthHistogram::new();
        let positions: Vec<u32> = (0..16).collect();
        relax_invec::<SsspRule>(
            Backend::Portable,
            &positions,
            &src,
            &dst,
            &w,
            &vals,
            &mut nv,
            &mut f,
            &mut depth,
        );
        assert_eq!(depth.invocations(), 1);
        assert_eq!(depth.mean(), 1.0);
        assert_eq!(nv[3], 1.0);
    }

    #[test]
    fn kernels_honor_non_identity_position_lists() {
        // Regression test: positions select a strict, reordered subset of
        // edges; the masked kernel must dereference positions before
        // gathering edge operands.
        let src = vec![0, 0, 0, 0];
        let dst = vec![1, 2, 3, 1];
        let w = vec![1.0f32, 2.0, 3.0, 4.0];
        let vals = vec![0.0f32, 9.0, 9.0, 9.0];
        let positions = vec![3u32, 2]; // only edges 3 and 2, reversed
        let expect = {
            let mut nv = vals.clone();
            let mut f = Frontier::new(4);
            relax_serial::<SsspRule>(&positions, &src, &dst, &w, &vals, &mut nv, &mut f);
            nv
        };
        assert_eq!(expect, vec![0.0, 4.0, 9.0, 3.0]);

        let mut nv = vals.clone();
        let mut f = Frontier::new(4);
        let mut util = Utilization::default();
        relax_masked::<SsspRule>(&positions, &src, &dst, &w, &vals, &mut nv, &mut f, &mut util);
        assert_eq!(nv, expect);

        let mut nv = vals.clone();
        let mut f = Frontier::new(4);
        let mut depth = DepthHistogram::new();
        relax_invec::<SsspRule>(
            Backend::Portable,
            &positions,
            &src,
            &dst,
            &w,
            &vals,
            &mut nv,
            &mut f,
            &mut depth,
        );
        assert_eq!(nv, expect);

        let mut nv = vals.clone();
        let mut f = Frontier::new(4);
        let grouping = group_by_key(&positions, &dst);
        relax_grouped::<SsspRule>(&grouping, &src, &dst, &w, &vals, &mut nv, &mut f);
        assert_eq!(nv, expect);
    }

    #[test]
    fn empty_position_list_is_noop() {
        let mut nv = vec![f32::INFINITY; 2];
        let mut f = Frontier::new(2);
        let mut util = Utilization::default();
        relax_masked::<SsspRule>(&[], &[], &[], &[], &[0.0, 0.0], &mut nv, &mut f, &mut util);
        assert!(f.is_empty());
        assert_eq!(util.slots, 0);
    }
}
