//! PageRank — the paper's motivating application (Figure 1, Figure 8).
//!
//! The inner loop is an associative irregular reduction: for every edge,
//! `sum[ny] += rank[nx] / nneighbor[nx]`. Because the edge set is static,
//! the inspector phases run once: tiling for all vectorized variants, plus
//! conflict-free grouping for the `tiling_and_grouping` variant.

use std::time::Instant;

use invector_core::accumulate::{adaptive_accumulate_with, invec_accumulate_with, InvecStats};
use invector_core::backend::Backend;
use invector_core::exec::{run_plan, ExecPlan, ExecVariant, TaskItems};
use invector_core::masking::PositionFeeder;
use invector_core::ops::Sum;
use invector_core::stats::{DepthHistogram, Utilization};
use invector_core::{reduce_alg1_with, serial_accumulate};
use invector_graph::group::{group_by_key, Grouping};
use invector_graph::tile::{tile_edges, DEFAULT_BLOCK_VERTICES};
use invector_graph::EdgeList;
use invector_simd::{conflict_free_subset, F32x16, I32x16, Mask16};

use crate::common::{ExecPolicy, RunResult, Timings, Variant};

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (0.85 in the classic formulation).
    pub damping: f32,
    /// Convergence threshold on the relative total rank change — the paper
    /// terminates when the change drops below 0.1% (`1e-3`).
    pub tolerance: f32,
    /// Iteration cap.
    pub max_iters: u32,
    /// Cache-tile block side for the tiled variants.
    pub block_vertices: usize,
    /// Execution-engine policy. `threads == 1` (the default) reproduces the
    /// paper's single-core runs; `threads > 1` partitions the edge phase
    /// across the persistent pool (the plan is built once, the edge set
    /// being static). In parallel runs the per-worker strategy follows
    /// [`Variant::exec_variant`]; `policy.variant` is overridden.
    pub exec: ExecPolicy,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-3,
            max_iters: 500,
            block_vertices: DEFAULT_BLOCK_VERTICES,
            exec: ExecPolicy::default(),
        }
    }
}

/// Runs PageRank with the chosen implementation strategy.
///
/// Returns per-vertex ranks plus the phase timing breakdown of Figure 8
/// (`tiling` / `grouping` / `computing`). The masked variant reports SIMD
/// utilization; the in-vector variant reports the conflict-depth histogram.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn pagerank(graph: &EdgeList, variant: Variant, config: &PageRankConfig) -> RunResult<f32> {
    use crate::common::Variant::{Grouped, Invec, Masked, Serial, SerialTiled};
    let nv = graph.num_vertices();
    assert!(nv > 0, "PageRank needs at least one vertex");
    let mut timings = Timings::default();

    // Inspector: tiling (all vectorized variants + tiling_serial).
    let working = match variant {
        Serial => graph.clone(),
        _ => {
            let t0 = Instant::now();
            let tiling = tile_edges(graph, config.block_vertices);
            let tiled = graph.permuted(&tiling.perm);
            timings.tiling = t0.elapsed();
            tiled
        }
    };

    // Inspector: grouping (tiling_and_grouping only; reused every iteration
    // because PageRank's edge set is static).
    let grouping: Option<Grouping> = if variant.needs_grouping() {
        let t0 = Instant::now();
        let positions: Vec<u32> = (0..working.num_edges() as u32).collect();
        let g = group_by_key(&positions, working.dst());
        timings.grouping = t0.elapsed();
        Some(g)
    } else {
        None
    };

    // Engine plan (parallel runs only): the edge set is static, so the
    // stream partition is built once and reused by every iteration.
    let plan: Option<ExecPlan> = if config.exec.threads > 1 {
        let t0 = Instant::now();
        let p = ExecPlan::new(working.dst(), nv, &config.exec);
        timings.partition = t0.elapsed();
        Some(p)
    } else {
        None
    };

    let deg: Vec<f32> = graph.out_degrees().iter().map(|&d| d as f32).collect();
    let mut rank = vec![1.0 / nv as f32; nv];
    let mut sum = vec![0.0f32; nv];
    let mut utilization = Utilization::default();
    let mut depth = DepthHistogram::new();
    let mut iterations = 0;
    // Resolve the reduction backend once per run (Auto → native when the
    // CPU supports AVX-512); the hot loops below never re-probe.
    let backend = config.exec.backend.resolve();

    let instr_before = invector_simd::count::read();
    let t_compute = Instant::now();
    while iterations < config.max_iters {
        iterations += 1;
        sum.fill(0.0);
        match (&plan, variant) {
            (Some(plan), _) => {
                edge_phase_parallel(
                    plan,
                    &config.exec,
                    variant,
                    backend,
                    &working,
                    &rank,
                    &deg,
                    &mut sum,
                    &mut depth,
                );
            }
            (None, Serial | SerialTiled) => {
                edge_phase_serial(&working, &rank, &deg, &mut sum);
            }
            (None, Invec) => {
                edge_phase_invec(&working, backend, &rank, &deg, &mut sum, &mut depth);
            }
            (None, Masked) => {
                edge_phase_masked(&working, &rank, &deg, &mut sum, &mut utilization);
            }
            (None, Grouped) => {
                edge_phase_grouped(
                    &working,
                    grouping.as_ref().expect("grouping built above"),
                    &rank,
                    &deg,
                    &mut sum,
                );
            }
        }
        // Vertex phase + convergence test (identical across variants).
        let base = (1.0 - config.damping) / nv as f32;
        let mut delta = 0.0f64;
        let mut mass = 0.0f64;
        for v in 0..nv {
            let new = base + config.damping * sum[v];
            delta += f64::from((new - rank[v]).abs());
            mass += f64::from(rank[v]);
            rank[v] = new;
        }
        if delta < f64::from(config.tolerance) * mass {
            break;
        }
    }
    timings.compute = t_compute.elapsed();

    let threads = plan.as_ref().map_or(1, ExecPlan::num_tasks);
    RunResult {
        values: rank,
        iterations,
        timings,
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        utilization: (plan.is_none() && variant.records_utilization()).then_some(utilization),
        depth: (variant.exec_variant() == ExecVariant::Invec
            && (plan.is_some() || variant.records_depth()))
        .then_some(depth),
        threads,
    }
}

/// Parallel edge phase: each engine worker reduces its share of the edge
/// stream into its partition of `sum` (owner-computes: a disjoint slice of
/// `sum` itself; privatized: a touched-range-bounded scratch array).
#[allow(clippy::too_many_arguments)]
fn edge_phase_parallel(
    plan: &ExecPlan,
    exec: &ExecPolicy,
    variant: Variant,
    backend: Backend,
    g: &EdgeList,
    rank: &[f32],
    deg: &[f32],
    sum: &mut [f32],
    depth: &mut DepthHistogram,
) {
    let (src, dst) = (g.src(), g.dst());
    let worker = variant.exec_variant();
    let stats = run_plan::<f32, Sum, InvecStats, _>(plan, sum, exec.deterministic, |ctx, view| {
        let lo = ctx.lo as i32;
        // Gather this task's share of the stream: rebased destination keys
        // plus the per-edge contributions of Figure 1's loop body.
        let contribution = |p: usize| {
            let nx = src[p] as usize;
            (dst[p] - lo, rank[nx] / deg[nx])
        };
        let (keys, vals): (Vec<i32>, Vec<f32>) = match &ctx.items {
            TaskItems::Span(range) => range.clone().map(contribution).unzip(),
            TaskItems::Picked(picked) => picked.iter().map(|&p| contribution(p as usize)).unzip(),
        };
        match worker {
            ExecVariant::Serial => {
                serial_accumulate::<f32, Sum>(view, &keys, &vals);
                invector_simd::count::bump(SERIAL_EDGE_COST * keys.len() as u64);
                InvecStats::default()
            }
            ExecVariant::Invec => invec_accumulate_with::<f32, Sum>(backend, view, &keys, &vals),
            ExecVariant::Adaptive => {
                adaptive_accumulate_with::<f32, Sum>(backend, view, &keys, &vals)
            }
        }
    });
    for s in &stats {
        depth.merge(&s.depth);
    }
}

/// Modeled scalar cost of one edge of the Figure 1 loop: two index loads,
/// rank and degree loads, a divide, and the load-add-store on `sum`.
pub const SERIAL_EDGE_COST: u64 = 8;

/// Scalar edge phase: the paper's Figure 1 loop.
fn edge_phase_serial(g: &EdgeList, rank: &[f32], deg: &[f32], sum: &mut [f32]) {
    let (src, dst) = (g.src(), g.dst());
    for j in 0..g.num_edges() {
        let nx = src[j] as usize;
        let ny = dst[j] as usize;
        sum[ny] += rank[nx] / deg[nx];
    }
    invector_simd::count::bump(SERIAL_EDGE_COST * g.num_edges() as u64);
}

/// In-vector reduction edge phase: the vectorized loop of Figure 7.
fn edge_phase_invec(
    g: &EdgeList,
    backend: Backend,
    rank: &[f32],
    deg: &[f32],
    sum: &mut [f32],
    depth: &mut DepthHistogram,
) {
    let (src, dst) = (g.src(), g.dst());
    let mut j = 0;
    while j < g.num_edges() {
        let (vnx, active) = I32x16::load_partial(&src[j..], 0);
        let (vny, _) = I32x16::load_partial(&dst[j..], 0);
        let vrank = F32x16::zero().mask_gather(active, rank, vnx);
        let vdeg = F32x16::splat(1.0).mask_gather(active, deg, vnx);
        let mut vadd = vrank / vdeg;
        let (safe, d) =
            reduce_alg1_with::<f32, invector_core::ops::Sum, 16>(backend, active, vny, &mut vadd);
        depth.record(d);
        let vsum = F32x16::zero().mask_gather(safe, sum, vny);
        (vsum + vadd).mask_scatter(safe, sum, vny);
        j += 16;
    }
}

/// Conflict-masking edge phase (Figure 3 applied to PageRank).
fn edge_phase_masked(
    g: &EdgeList,
    rank: &[f32],
    deg: &[f32],
    sum: &mut [f32],
    util: &mut Utilization,
) {
    let (src, dst) = (g.src(), g.dst());
    let mut feeder = PositionFeeder::new(0, g.num_edges());
    let mut vpos = I32x16::zero();
    let mut active = Mask16::none();
    loop {
        active |= feeder.refill(!active, &mut vpos);
        if active.is_empty() {
            break;
        }
        let vnx = I32x16::zero().mask_gather(active, src, vpos);
        let vny = I32x16::zero().mask_gather(active, dst, vpos);
        let vrank = F32x16::zero().mask_gather(active, rank, vnx);
        let vdeg = F32x16::splat(1.0).mask_gather(active, deg, vnx);
        let vadd = vrank / vdeg;
        let safe = conflict_free_subset(active, vny);
        let vsum = F32x16::zero().mask_gather(safe, sum, vny);
        (vsum + vadd).mask_scatter(safe, sum, vny);
        util.record(u64::from(safe.count_ones()), 16);
        active = active.and_not(safe);
    }
}

/// Grouped (inspector/executor) edge phase: unmasked SIMD over
/// conflict-free windows.
fn edge_phase_grouped(
    g: &EdgeList,
    grouping: &Grouping,
    rank: &[f32],
    deg: &[f32],
    sum: &mut [f32],
) {
    let (src, dst) = (g.src(), g.dst());
    for w in 0..grouping.num_windows() {
        let (slots, maskbits) = grouping.window(w);
        let active = Mask16::from_bits(u32::from(maskbits));
        let vpos = I32x16::from_array(std::array::from_fn(|i| slots[i] as i32));
        let vnx = I32x16::zero().mask_gather(active, src, vpos);
        let vny = I32x16::zero().mask_gather(active, dst, vpos);
        let vrank = F32x16::zero().mask_gather(active, rank, vnx);
        let vdeg = F32x16::splat(1.0).mask_gather(active, deg, vnx);
        let vadd = vrank / vdeg;
        let vsum = F32x16::zero().mask_gather(active, sum, vny);
        (vsum + vadd).mask_scatter(active, sum, vny);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invector_graph::gen;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * (x.abs() + y.abs() + 1e-6), "vertex {i}: {x} vs {y}");
        }
    }

    // Cross-variant / cross-backend agreement on realistic power-law graphs
    // is covered centrally by `tests/registry_golden.rs`; these tests pin
    // hand-checkable graphs and the per-variant bookkeeping.

    #[test]
    fn small_known_graphs_for_every_variant() {
        // Cycle: uniform rank. Star: 8 leaves pointing at vertex 0. Oddball:
        // self-loop plus duplicate edges. The latter two compare against the
        // serial baseline on the same graph.
        let cycle = EdgeList::from_edges(2, &[(0, 1), (1, 0)]);
        let star_edges: Vec<(i32, i32)> = (1..9).map(|v| (v, 0)).collect();
        let star = EdgeList::from_edges(9, &star_edges);
        let oddball = EdgeList::from_edges(3, &[(0, 0), (1, 2), (1, 2), (2, 1)]);
        let serial = |g: &EdgeList| pagerank(g, Variant::Serial, &PageRankConfig::default());
        let star_serial = serial(&star);
        assert!(star_serial.values[0] > 5.0 * star_serial.values[1]);
        let oddball_serial = serial(&oddball);
        let cap2 = PageRankConfig { max_iters: 2, ..PageRankConfig::default() };
        for variant in Variant::ALL {
            let r = pagerank(&cycle, variant, &PageRankConfig::default());
            assert_close(&r.values, &[0.5, 0.5], 1e-3);
            let r = pagerank(&star, variant, &PageRankConfig::default());
            assert_close(&r.values, &star_serial.values, 1e-3);
            let r = pagerank(&oddball, variant, &PageRankConfig::default());
            assert_close(&r.values, &oddball_serial.values, 1e-3);
            // The iteration cap is honored on every path.
            assert_eq!(pagerank(&star, variant, &cap2).iterations, 2, "{variant}");
        }
    }

    #[test]
    fn ranks_are_positive_and_bounded() {
        let g = gen::uniform(256, 2000, 5);
        let r = pagerank(&g, Variant::Invec, &PageRankConfig::default());
        let total: f32 = r.values.iter().sum();
        assert!(r.values.iter().all(|&x| x > 0.0));
        assert!(total <= 1.0 + 1e-3, "rank mass {total}");
    }

    #[test]
    fn phase_and_stat_ownership_follow_variant_predicates() {
        let g = gen::rmat(256, 2000, gen::RmatParams::SOCIAL, 8);
        let config = PageRankConfig { block_vertices: 64, ..PageRankConfig::default() };
        for variant in Variant::ALL {
            let r = pagerank(&g, variant, &config);
            assert_eq!(r.utilization.is_some(), variant.records_utilization(), "{variant}");
            assert_eq!(r.depth.is_some(), variant.records_depth(), "{variant}");
            assert_eq!(
                r.timings.grouping > std::time::Duration::ZERO,
                variant.needs_grouping(),
                "{variant}"
            );
            // Only the untiled serial baseline skips the tiling inspector.
            assert_eq!(
                r.timings.tiling == std::time::Duration::ZERO,
                variant == Variant::ALL[0],
                "{variant}"
            );
            if let Some(util) = r.utilization {
                assert!(util.ratio() > 0.0 && util.ratio() <= 1.0);
            }
        }
    }

    #[test]
    fn parallel_runs_agree_with_serial_under_both_partitions() {
        use crate::common::Partition;
        let g = gen::rmat(512, 4000, gen::RmatParams::SOCIAL, 23);
        let serial = pagerank(&g, Variant::Serial, &PageRankConfig::default());
        for threads in [2, 4] {
            for partition in [Partition::OwnerComputes, Partition::Privatized] {
                let config = PageRankConfig {
                    exec: ExecPolicy::with_threads(threads)
                        .partition(partition)
                        .deterministic(true),
                    ..PageRankConfig::default()
                };
                for variant in [Variant::Serial, Variant::Invec] {
                    let r = pagerank(&g, variant, &config);
                    assert_close(&r.values, &serial.values, 5e-3);
                    assert_eq!(r.threads, threads, "{variant} {partition:?}");
                    assert!(r.timings.partition > std::time::Duration::ZERO);
                    // Parallel vectorized workers report conflict depth.
                    assert_eq!(r.depth.is_some(), variant.exec_variant() != ExecVariant::Serial);
                    // Owner-computes preserves per-vertex update order, so
                    // scalar workers reproduce the serial ranks bit for bit.
                    if partition == Partition::OwnerComputes && r.depth.is_none() {
                        assert_eq!(r.iterations, serial.iterations);
                        assert!(r
                            .values
                            .iter()
                            .zip(&serial.values)
                            .all(|(a, b)| a.to_bits() == b.to_bits()));
                    }
                }
            }
        }
    }
}
