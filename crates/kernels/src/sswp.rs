//! Wave-frontier Single-Source Widest Path (Figure 10).
//!
//! SSWP maximizes, over all paths from the source, the weight of the
//! path's minimum-weight edge: `width[ny] = max(width[ny],
//! min(width[nx], w))`. The reduction operator is `max` — `invec_max` in
//! the paper's API.

use invector_graph::EdgeList;

use crate::common::{RunResult, Variant};
use crate::relax::SswpRule;
use crate::wavefront;

/// Runs wave-frontier SSWP from `source`. The source has infinite width;
/// unreachable vertices end at `0.0`.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Example
///
/// ```
/// use invector_kernels::{sswp, Variant};
/// use invector_graph::EdgeList;
///
/// // Two routes 0->2: direct (width 1) and via 1 (width min(5, 3) = 3).
/// let g = EdgeList::from_weighted_edges(3, &[(0, 2, 1.0), (0, 1, 5.0), (1, 2, 3.0)]);
/// let r = sswp(&g, 0, Variant::Invec, 100);
/// assert_eq!(r.values[2], 3.0);
/// ```
pub fn sswp(graph: &EdgeList, source: i32, variant: Variant, max_iters: u32) -> RunResult<f32> {
    wavefront::run::<SswpRule>(graph, variant, max_iters, |vals, frontier| {
        vals[source as usize] = f32::INFINITY;
        frontier.insert(source);
    })
}

/// Runs SSWP with the grouping-**reuse** technique (see
/// [`wavefront::run_reuse`](crate::wavefront::run_reuse)).
pub fn sswp_reuse(graph: &EdgeList, source: i32, max_iters: u32) -> RunResult<f32> {
    wavefront::run_reuse::<SswpRule>(graph, max_iters, |vals, frontier| {
        vals[source as usize] = f32::INFINITY;
        frontier.insert(source);
    })
}

/// Runs SSWP with each wave's relaxations distributed over the execution
/// engine (see [`wavefront::run_with_policy`]); widths are identical to
/// [`sswp`] at any thread count.
pub fn sswp_with_policy(
    graph: &EdgeList,
    source: i32,
    variant: Variant,
    max_iters: u32,
    policy: &crate::common::ExecPolicy,
) -> RunResult<f32> {
    wavefront::run_with_policy::<SswpRule>(graph, variant, max_iters, policy, |vals, frontier| {
        vals[source as usize] = f32::INFINITY;
        frontier.insert(source);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use invector_graph::gen;

    /// Widest-path reference via iterated Bellman-Ford relaxation.
    fn reference(graph: &EdgeList, source: i32) -> Vec<f32> {
        let nv = graph.num_vertices();
        let mut width = vec![0.0f32; nv];
        width[source as usize] = f32::INFINITY;
        loop {
            let mut changed = false;
            for j in 0..graph.num_edges() {
                let nx = graph.src()[j] as usize;
                let ny = graph.dst()[j] as usize;
                let cand = width[nx].min(graph.weight()[j]);
                if cand > width[ny] {
                    width[ny] = cand;
                    changed = true;
                }
            }
            if !changed {
                return width;
            }
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::rmat(150, 900, gen::RmatParams::SOCIAL, seed + 10);
            let expect = reference(&g, 0);
            for variant in Variant::ALL {
                let r = sswp(&g, 0, variant, 10_000);
                assert_eq!(r.values, expect, "{variant} seed {seed}");
            }
        }
    }

    #[test]
    fn bottleneck_edge_limits_width() {
        // 0 -9-> 1 -0.5-> 2: widest path to 2 is bottlenecked at 0.5.
        let g = EdgeList::from_weighted_edges(3, &[(0, 1, 9.0), (1, 2, 0.5)]);
        let r = sswp(&g, 0, Variant::Masked, 100);
        assert_eq!(r.values, vec![f32::INFINITY, 9.0, 0.5]);
    }
}
