//! Shared kernel infrastructure: variants, timing breakdown, run results.

use std::time::Duration;

use invector_core::stats::{DepthHistogram, Utilization};

pub use invector_core::exec::{ExecPolicy, ExecVariant, Partition};

/// The implementation strategies evaluated in the paper (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Scalar loop over the original edge order (`nontiling_serial`).
    Serial,
    /// Scalar loop over cache-tiled edges (`tiling_serial`).
    SerialTiled,
    /// Inspector/executor: tiling + conflict-free grouping, then unmasked
    /// SIMD (`tiling_and_grouping` / `nontiling_and_grouping`).
    Grouped,
    /// Conflict-masking SIMD (`tiling_and_mask` / `nontiling_and_mask`).
    Masked,
    /// In-vector reduction SIMD (`tiling_and_invec` / `nontiling_and_invec`)
    /// — the paper's contribution.
    Invec,
}

/// Whether an application's experiments charge a cache-tiling inspector
/// (static edge set: PageRank, SpMV, Moldyn, Euler) or run untiled
/// wave-frontier style (§4.2: SSSP, SSWP, BFS, WCC). Selects the label
/// column of [`Variant::label`] and tells the harness which phase bars a
/// kernel reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TilingMode {
    /// Edge set is static; vectorized variants pay a one-time tiling pass.
    Tiled,
    /// Active set changes per wave; variants run on the original edge order.
    Frontier,
}

/// The single label table keyed by `(variant, tiling mode)` — the paper's
/// series names. Rows are in [`Variant::ALL`] order; columns are
/// `[Tiled, Frontier]`.
const LABELS: [[&str; 2]; 5] = [
    ["nontiling_serial", "nontiling_serial"],
    ["tiling_serial", "tiling_serial"],
    ["tiling_and_grouping", "nontiling_and_grouping"],
    ["tiling_and_mask", "nontiling_and_mask"],
    ["tiling_and_invec", "nontiling_and_invec"],
];

/// Short names accepted by [`Variant::parse`], in [`Variant::ALL`] order.
const SHORT_NAMES: [&str; 5] = ["serial", "tiled", "grouped", "masked", "invec"];

impl Variant {
    /// All variants in the paper's presentation order.
    pub const ALL: [Variant; 5] =
        [Variant::Serial, Variant::SerialTiled, Variant::Grouped, Variant::Masked, Variant::Invec];

    /// Position in [`Variant::ALL`] (the label-table row).
    const fn index(self) -> usize {
        match self {
            Variant::Serial => 0,
            Variant::SerialTiled => 1,
            Variant::Grouped => 2,
            Variant::Masked => 3,
            Variant::Invec => 4,
        }
    }

    /// The paper's series label for this variant under the given tiling
    /// mode — one table, shared by every consumer.
    pub fn label(self, mode: TilingMode) -> &'static str {
        LABELS[self.index()][mode as usize]
    }

    /// Label used for tiled experiments (PageRank, Moldyn).
    pub fn tiled_label(self) -> &'static str {
        self.label(TilingMode::Tiled)
    }

    /// Label used for wave-frontier experiments, which run untiled (§4.2).
    pub fn frontier_label(self) -> &'static str {
        self.label(TilingMode::Frontier)
    }

    /// The short name [`Variant::parse`] accepts (`serial`, `tiled`, ...).
    pub fn short_name(self) -> &'static str {
        SHORT_NAMES[self.index()]
    }

    /// Parses one short variant name — the single parser shared by the CLI
    /// and the harness registry.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<Variant, String> {
        Variant::ALL.into_iter().find(|v| v.short_name() == s).ok_or_else(|| {
            format!("unknown variant '{s}' (one of: {} | all)", SHORT_NAMES.join(" | "))
        })
    }

    /// Parses a variant selection: a short name, or `all` for the full
    /// paper matrix.
    ///
    /// # Errors
    ///
    /// Returns the [`Variant::parse`] message on unknown names.
    pub fn parse_selection(s: &str) -> Result<Vec<Variant>, String> {
        if s == "all" {
            Ok(Variant::ALL.to_vec())
        } else {
            Variant::parse(s).map(|v| vec![v])
        }
    }

    /// `true` for the variants that record SIMD lane utilization (the
    /// conflict-masking strategy).
    pub fn records_utilization(self) -> bool {
        self == Variant::Masked
    }

    /// `true` for the variants that record the conflict-depth histogram
    /// (the in-vector strategy).
    pub fn records_depth(self) -> bool {
        self == Variant::Invec
    }

    /// `true` for the variants that need a conflict-free grouping inspector.
    pub fn needs_grouping(self) -> bool {
        self == Variant::Grouped
    }

    /// `true` for the variants whose conflict handling is stream-local and
    /// therefore composes with the execution engine's partitioning (the
    /// grouped and masked strategies keep whole-array inspector state).
    pub fn runs_on_engine(self) -> bool {
        !matches!(self, Variant::Grouped | Variant::Masked)
    }

    /// The in-worker reduction strategy the execution engine runs when this
    /// variant is parallelised. The scalar baselines stay scalar; the
    /// vectorized variants all map to in-vector reduction, because the
    /// masked and grouped strategies handle conflicts *within one target
    /// array* and the engine's partitioning already removes cross-worker
    /// conflicts — in-vector reduction is the per-worker strategy the paper
    /// shows dominating once conflicts are local.
    pub fn exec_variant(self) -> ExecVariant {
        match self {
            Variant::Serial | Variant::SerialTiled => ExecVariant::Serial,
            Variant::Grouped | Variant::Masked | Variant::Invec => ExecVariant::Invec,
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tiled_label())
    }
}

/// Wall-time breakdown matching the stacked bars of Figures 8–12:
/// data-reorganization phases are reported separately from computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// Cache-tiling (inspector) time.
    pub tiling: Duration,
    /// Conflict-free grouping (inspector) time.
    pub grouping: Duration,
    /// Execution-engine partitioning time (building / rebuilding the
    /// [`ExecPlan`](invector_core::exec::ExecPlan) for parallel runs; zero
    /// for single-threaded runs).
    pub partition: Duration,
    /// Computation (executor) time.
    pub compute: Duration,
}

impl Timings {
    /// End-to-end time: all phases.
    pub fn total(&self) -> Duration {
        self.tiling + self.grouping + self.partition + self.compute
    }
}

/// The outcome of running one application variant to convergence.
#[derive(Debug, Clone)]
pub struct RunResult<T> {
    /// Final per-vertex values (ranks, distances, widths, labels).
    pub values: Vec<T>,
    /// Iterations executed before the termination condition held.
    pub iterations: u32,
    /// Phase timing breakdown.
    pub timings: Timings,
    /// Modeled instruction count of the compute phase (SIMD instructions
    /// for vectorized variants, the documented scalar cost model for the
    /// serial baselines). Wall time of the emulated SIMD engine is not
    /// comparable against native scalar code; this counter is.
    pub instructions: u64,
    /// SIMD lane utilization (recorded by the masked variant; `None` for
    /// variants whose utilization is 100% by construction or meaningless).
    pub utilization: Option<Utilization>,
    /// Conflict-depth histogram (recorded by the in-vector variant).
    pub depth: Option<DepthHistogram>,
    /// Worker threads the execution engine used (1 for the paper's
    /// single-core configuration).
    pub threads: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(Variant::Invec.tiled_label(), "tiling_and_invec");
        assert_eq!(Variant::Invec.frontier_label(), "nontiling_and_invec");
        assert_eq!(Variant::Serial.frontier_label(), "nontiling_serial");
        assert_eq!(Variant::Grouped.to_string(), "tiling_and_grouping");
        assert_eq!(Variant::Masked.label(TilingMode::Frontier), "nontiling_and_mask");
    }

    #[test]
    fn parse_round_trips_short_names() {
        for v in Variant::ALL {
            assert_eq!(Variant::parse(v.short_name()), Ok(v));
        }
        assert_eq!(Variant::parse_selection("all").unwrap(), Variant::ALL.to_vec());
        assert_eq!(Variant::parse_selection("invec").unwrap(), vec![Variant::Invec]);
        let err = Variant::parse("warp").unwrap_err();
        assert!(err.contains("serial") && err.contains("invec"), "{err}");
    }

    #[test]
    fn predicates_match_stat_ownership() {
        assert!(Variant::Masked.records_utilization());
        assert!(Variant::Invec.records_depth());
        assert!(Variant::Grouped.needs_grouping());
        assert!(!Variant::Grouped.runs_on_engine() && !Variant::Masked.runs_on_engine());
        assert!(Variant::Serial.runs_on_engine() && Variant::Invec.runs_on_engine());
    }

    #[test]
    fn timings_total_sums_phases() {
        let t = Timings {
            tiling: Duration::from_millis(1),
            grouping: Duration::from_millis(2),
            partition: Duration::from_millis(4),
            compute: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }

    #[test]
    fn exec_variant_mapping_keeps_scalar_baselines_scalar() {
        assert_eq!(Variant::Serial.exec_variant(), ExecVariant::Serial);
        assert_eq!(Variant::SerialTiled.exec_variant(), ExecVariant::Serial);
        assert_eq!(Variant::Invec.exec_variant(), ExecVariant::Invec);
        assert_eq!(Variant::Masked.exec_variant(), ExecVariant::Invec);
        assert_eq!(Variant::Grouped.exec_variant(), ExecVariant::Invec);
    }

    #[test]
    fn all_variants_listed_once() {
        let set: std::collections::HashSet<_> = Variant::ALL.iter().collect();
        assert_eq!(set.len(), 5);
    }
}
