//! Wave-frontier Single-Source Shortest Path (Figure 2, Figure 9).

use invector_graph::EdgeList;

use crate::common::{RunResult, Variant};
use crate::relax::SsspRule;
use crate::wavefront;

/// Runs wave-frontier SSSP from `source`, relaxing with `invec_min` for the
/// in-vector variant. Unreached vertices end at `f32::INFINITY`.
///
/// All variants return bit-identical distances (min is exact in `f32`).
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Example
///
/// ```
/// use invector_kernels::{sssp, Variant};
/// use invector_graph::EdgeList;
///
/// let g = EdgeList::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 2.5)]);
/// let r = sssp(&g, 0, Variant::Invec, 100);
/// assert_eq!(r.values, vec![0.0, 2.0, 4.5]);
/// ```
pub fn sssp(graph: &EdgeList, source: i32, variant: Variant, max_iters: u32) -> RunResult<f32> {
    wavefront::run::<SsspRule>(graph, variant, max_iters, |vals, frontier| {
        vals[source as usize] = 0.0;
        frontier.insert(source);
    })
}

/// Runs SSSP with the grouping-**reuse** technique (one-time grouping +
/// per-iteration window activation; see
/// [`wavefront::run_reuse`](crate::wavefront::run_reuse)).
pub fn sssp_reuse(graph: &EdgeList, source: i32, max_iters: u32) -> RunResult<f32> {
    wavefront::run_reuse::<SsspRule>(graph, max_iters, |vals, frontier| {
        vals[source as usize] = 0.0;
        frontier.insert(source);
    })
}

/// Runs SSSP with each wave's relaxations distributed over the execution
/// engine (see [`wavefront::run_with_policy`]); distances are identical to
/// [`sssp`] at any thread count.
pub fn sssp_with_policy(
    graph: &EdgeList,
    source: i32,
    variant: Variant,
    max_iters: u32,
    policy: &crate::common::ExecPolicy,
) -> RunResult<f32> {
    wavefront::run_with_policy::<SsspRule>(graph, variant, max_iters, policy, |vals, frontier| {
        vals[source as usize] = 0.0;
        frontier.insert(source);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use invector_graph::gen;

    /// Dijkstra reference for verification.
    fn dijkstra(graph: &EdgeList, source: i32) -> Vec<f32> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let nv = graph.num_vertices();
        let csr = invector_graph::Csr::from_edge_list(graph);
        let mut dist = vec![f32::INFINITY; nv];
        dist[source as usize] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((ordered_float(0.0), source)));
        while let Some(Reverse((d, v))) = heap.pop() {
            let d = f32::from_bits(d);
            if d > dist[v as usize] {
                continue;
            }
            for &e in csr.out_edges(v as usize) {
                let u = graph.dst()[e as usize];
                let nd = d + graph.weight()[e as usize];
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    heap.push(Reverse((ordered_float(nd), u)));
                }
            }
        }
        dist
    }

    /// Monotone f32 -> u32 mapping for non-negative floats.
    fn ordered_float(x: f32) -> u32 {
        x.to_bits()
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::rmat(200, 1200, gen::RmatParams::MILD, seed);
            let expect = dijkstra(&g, 0);
            for variant in Variant::ALL {
                let r = sssp(&g, 0, variant, 10_000);
                assert_eq!(r.values, expect, "{variant} seed {seed}");
            }
        }
    }

    #[test]
    fn disconnected_source_terminates_immediately() {
        let g = EdgeList::from_weighted_edges(3, &[(1, 2, 1.0)]);
        let r = sssp(&g, 0, Variant::Invec, 100);
        assert_eq!(r.values, vec![0.0, f32::INFINITY, f32::INFINITY]);
        assert!(r.iterations <= 1);
    }
}
