//! The wave-frontier driver: iterates a [`RelaxRule`] to convergence.
//!
//! Matches the paper's §4.2 experimental setup: the frontier algorithms run
//! on the original (untiled) edge order because the active edge set changes
//! every iteration; the grouped variant re-groups the active edges each
//! iteration (the data-reorganization overhead Figure 9–11 make visible).

use std::time::Instant;

use invector_core::exec::{run_plan, ExecPlan, ExecVariant, TaskItems};
use invector_core::stats::{DepthHistogram, Utilization};
use invector_graph::group::group_by_key;
use invector_graph::{active_edge_positions, Csr, EdgeList, Frontier};

use crate::common::{ExecPolicy, Partition, RunResult, Timings, Variant};
use crate::relax::{relax_grouped, relax_invec, relax_masked, relax_serial, RelaxRule};

/// Iteration cap guarding against non-terminating configurations.
pub const DEFAULT_MAX_ITERS: u32 = 10_000;

/// Runs rule `R` on `graph` until the frontier empties (or `max_iters`).
///
/// `init` receives the value array (pre-filled with `R::unreached()`) and
/// the initial frontier; it seeds sources. All variants produce bit-identical
/// value arrays because min/max relaxations are exact in floating point.
///
/// # Panics
///
/// Panics if `init` inserts an out-of-range vertex.
pub fn run<R: RelaxRule>(
    graph: &EdgeList,
    variant: Variant,
    max_iters: u32,
    init: impl FnOnce(&mut [R::Value], &mut Frontier),
) -> RunResult<R::Value> {
    // Resolved once per run: native AVX-512 when available, else portable.
    run_single::<R>(graph, variant, max_iters, invector_core::backend::current(), init)
}

/// [`run`] against an explicitly resolved backend — the single-threaded
/// driver both [`run`] and [`run_with_policy`] (at `threads == 1`) share.
fn run_single<R: RelaxRule>(
    graph: &EdgeList,
    variant: Variant,
    max_iters: u32,
    backend: invector_core::backend::Backend,
    init: impl FnOnce(&mut [R::Value], &mut Frontier),
) -> RunResult<R::Value> {
    let nv = graph.num_vertices();
    // CSR construction is input loading, shared by every variant; it is not
    // part of any phase the paper charges to an approach.
    let csr = Csr::from_edge_list(graph);

    let mut vals = vec![R::unreached(); nv];
    let mut frontier = Frontier::new(nv);
    init(&mut vals, &mut frontier);
    let mut new_vals = vals.clone();
    let mut next = Frontier::new(nv);
    let mut positions: Vec<u32> = Vec::new();

    let mut timings = Timings::default();
    let mut utilization = Utilization::default();
    let mut depth = DepthHistogram::new();
    let mut iterations = 0;
    let instr_before = invector_simd::count::read();

    while !frontier.is_empty() && iterations < max_iters {
        iterations += 1;
        let t0 = Instant::now();
        active_edge_positions(&csr, &frontier, &mut positions);
        let expand_time = t0.elapsed();

        let (src, dst, weight) = (graph.src(), graph.dst(), graph.weight());
        match variant {
            Variant::Serial | Variant::SerialTiled => {
                let t = Instant::now();
                relax_serial::<R>(&positions, src, dst, weight, &vals, &mut new_vals, &mut next);
                timings.compute += t.elapsed() + expand_time;
            }
            Variant::Invec => {
                let t = Instant::now();
                relax_invec::<R>(
                    backend,
                    &positions,
                    src,
                    dst,
                    weight,
                    &vals,
                    &mut new_vals,
                    &mut next,
                    &mut depth,
                );
                timings.compute += t.elapsed() + expand_time;
            }
            Variant::Masked => {
                let t = Instant::now();
                relax_masked::<R>(
                    &positions,
                    src,
                    dst,
                    weight,
                    &vals,
                    &mut new_vals,
                    &mut next,
                    &mut utilization,
                );
                timings.compute += t.elapsed() + expand_time;
            }
            Variant::Grouped => {
                // Re-grouping the changing active set every iteration is the
                // cost of reusing inspector/executor here (§4.2).
                let tg = Instant::now();
                let grouping = group_by_key(&positions, dst);
                timings.grouping += tg.elapsed();
                let t = Instant::now();
                relax_grouped::<R>(&grouping, src, dst, weight, &vals, &mut new_vals, &mut next);
                timings.compute += t.elapsed() + expand_time;
            }
        }

        vals.copy_from_slice(&new_vals);
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }

    RunResult {
        values: vals,
        iterations,
        timings,
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        utilization: variant.records_utilization().then_some(utilization),
        depth: variant.records_depth().then_some(depth),
        threads: 1,
    }
}

/// Runs rule `R` with the edge relaxations of every wave distributed over
/// the execution engine's thread pool.
///
/// The active edge set changes each wave, so the engine partition is
/// rebuilt per iteration from the destinations of the active edges
/// (charged to `timings.partition`). The wave drivers always run
/// **owner-computes** partitioning regardless of `policy.partition`: a
/// relaxation must compare its candidate against the *live* destination
/// value, so workers need the target itself, not an identity-filled private
/// array. Because each destination is owned by exactly one worker and
/// min/max are exact in floating point, results (values, frontiers, and
/// iteration counts) are identical to [`run`] at any thread count.
///
/// The per-worker strategy follows [`Variant::exec_variant`];
/// `policy.threads == 1` delegates to [`run`] unchanged.
pub fn run_with_policy<R: RelaxRule>(
    graph: &EdgeList,
    variant: Variant,
    max_iters: u32,
    policy: &ExecPolicy,
    init: impl FnOnce(&mut [R::Value], &mut Frontier),
) -> RunResult<R::Value> {
    if policy.threads <= 1 {
        return run_single::<R>(graph, variant, max_iters, policy.backend.resolve(), init);
    }
    let nv = graph.num_vertices();
    let csr = Csr::from_edge_list(graph);

    let mut vals = vec![R::unreached(); nv];
    let mut frontier = Frontier::new(nv);
    init(&mut vals, &mut frontier);
    let mut new_vals = vals.clone();
    let mut next = Frontier::new(nv);
    let mut positions: Vec<u32> = Vec::new();
    let mut keys: Vec<i32> = Vec::new();

    let mut timings = Timings::default();
    let mut depth = DepthHistogram::new();
    let mut iterations = 0;
    let mut threads_used = 1;
    let instr_before = invector_simd::count::read();
    let plan_policy = ExecPolicy { partition: Partition::OwnerComputes, ..*policy };
    // Scalar baselines keep scalar workers; every vectorized variant maps to
    // the in-vector worker (see the `exec_variant` mapping).
    let vector_worker = variant.exec_variant() == ExecVariant::Invec;
    // Resolved once per run; worker closures capture the resolved value.
    let backend = policy.backend.resolve();

    while !frontier.is_empty() && iterations < max_iters {
        iterations += 1;
        let t0 = Instant::now();
        active_edge_positions(&csr, &frontier, &mut positions);
        let expand_time = t0.elapsed();

        let (src, dst, weight) = (graph.src(), graph.dst(), graph.weight());

        let tp = Instant::now();
        keys.clear();
        keys.extend(positions.iter().map(|&p| dst[p as usize]));
        let plan = ExecPlan::new(&keys, nv, &plan_policy);
        timings.partition += tp.elapsed();
        threads_used = threads_used.max(plan.num_tasks());

        let t = Instant::now();
        let results = run_plan::<R::Value, R::Op, (Vec<i32>, DepthHistogram), _>(
            &plan,
            &mut new_vals,
            policy.deterministic,
            |ctx, view| {
                // Gather this task's active edges, destinations rebased
                // into its owned view. Stream item `k` is the active edge
                // `positions[k]`.
                let lo = ctx.lo as i32;
                let edge_ids: Vec<usize> = match &ctx.items {
                    TaskItems::Span(range) => {
                        range.clone().map(|k| positions[k] as usize).collect()
                    }
                    TaskItems::Picked(picked) => {
                        picked.iter().map(|&k| positions[k as usize] as usize).collect()
                    }
                };
                let t_pos: Vec<u32> = (0..edge_ids.len() as u32).collect();
                let t_src: Vec<i32> = edge_ids.iter().map(|&p| src[p]).collect();
                let t_dst: Vec<i32> = edge_ids.iter().map(|&p| dst[p] - lo).collect();
                let t_w: Vec<f32> = if R::USES_WEIGHT {
                    edge_ids.iter().map(|&p| weight[p]).collect()
                } else {
                    vec![0.0; edge_ids.len()]
                };
                let mut local_next = Frontier::new(view.len());
                let mut local_depth = DepthHistogram::new();
                if vector_worker {
                    relax_invec::<R>(
                        backend,
                        &t_pos,
                        &t_src,
                        &t_dst,
                        &t_w,
                        &vals,
                        view,
                        &mut local_next,
                        &mut local_depth,
                    );
                } else {
                    relax_serial::<R>(&t_pos, &t_src, &t_dst, &t_w, &vals, view, &mut local_next);
                }
                let improved: Vec<i32> = local_next.vertices().iter().map(|&v| v + lo).collect();
                (improved, local_depth)
            },
        );
        for (improved, local_depth) in results {
            for v in improved {
                next.insert(v);
            }
            depth.merge(&local_depth);
        }
        timings.compute += t.elapsed() + expand_time;

        vals.copy_from_slice(&new_vals);
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }

    RunResult {
        values: vals,
        iterations,
        timings,
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        utilization: None,
        depth: vector_worker.then_some(depth),
        threads: threads_used,
    }
}

/// Runs rule `R` with the **grouping-reuse** technique of Jiang et al.
/// (ICS'16, the paper's reference \[11\]) — the realization the paper's
/// `nontiling_and_grouping` bars actually measure:
///
/// * the **whole** edge list is grouped once up front, together with an
///   edge→(window, lane) index (this one-time inspector cost is charged to
///   `timings.grouping`);
/// * each iteration activates the window lanes of the active edges through
///   the index and processes only the touched windows — conflict-free by
///   construction, no per-iteration regrouping.
///
/// Produces bit-identical results to [`run`].
pub fn run_reuse<R: RelaxRule>(
    graph: &EdgeList,
    max_iters: u32,
    init: impl FnOnce(&mut [R::Value], &mut Frontier),
) -> crate::common::RunResult<R::Value> {
    use crate::relax::relax_window;

    let nv = graph.num_vertices();
    let csr = Csr::from_edge_list(graph);
    let mut timings = Timings::default();

    // One-time inspector: group all edges by destination and build the
    // reuse index.
    let t0 = Instant::now();
    let all_positions: Vec<u32> = (0..graph.num_edges() as u32).collect();
    let grouping = group_by_key(&all_positions, graph.dst());
    let mut slot_of_edge = vec![(0u32, 0u8); graph.num_edges()];
    for (slot_idx, &p) in grouping.slots.iter().enumerate() {
        if p != u32::MAX {
            slot_of_edge[p as usize] = ((slot_idx / 16) as u32, (slot_idx % 16) as u8);
        }
    }
    timings.grouping = t0.elapsed();

    let mut vals = vec![R::unreached(); nv];
    let mut frontier = Frontier::new(nv);
    init(&mut vals, &mut frontier);
    let mut new_vals = vals.clone();
    let mut next = Frontier::new(nv);
    let mut positions: Vec<u32> = Vec::new();
    let mut window_bits = vec![0u16; grouping.num_windows()];
    let mut touched: Vec<u32> = Vec::new();
    let mut iterations = 0;
    let instr_before = invector_simd::count::read();

    while !frontier.is_empty() && iterations < max_iters {
        iterations += 1;
        let t = Instant::now();
        active_edge_positions(&csr, &frontier, &mut positions);
        // Activate the window lanes of the active edges.
        for &p in &positions {
            let (w, lane) = slot_of_edge[p as usize];
            if window_bits[w as usize] == 0 {
                touched.push(w);
            }
            window_bits[w as usize] |= 1 << lane;
        }
        // Process only the touched windows.
        let (src, dst, weight) = (graph.src(), graph.dst(), graph.weight());
        for &w in &touched {
            let (slots, _) = grouping.window(w as usize);
            let active = invector_simd::Mask16::from_bits(u32::from(window_bits[w as usize]));
            relax_window::<R>(slots, active, src, dst, weight, &vals, &mut new_vals, &mut next);
            window_bits[w as usize] = 0;
        }
        touched.clear();
        timings.compute += t.elapsed();

        vals.copy_from_slice(&new_vals);
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }

    crate::common::RunResult {
        values: vals,
        iterations,
        timings,
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        utilization: None,
        depth: None,
        threads: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax::{SsspRule, SswpRule, WccRule};
    use invector_graph::gen;

    // Cross-variant / cross-backend / parallel agreement on realistic graphs
    // is covered centrally by `tests/registry_golden.rs`; these tests pin the
    // driver's behaviour against hand-computed values and check the
    // per-variant bookkeeping the golden suite does not inspect.

    fn line_graph() -> EdgeList {
        // 0 -1.0-> 1 -2.0-> 2 -3.0-> 3, plus shortcut 0 -10.0-> 3.
        EdgeList::from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 10.0)])
    }

    #[test]
    fn line_graph_known_values_for_every_variant() {
        for variant in Variant::ALL {
            let sssp = run::<SsspRule>(&line_graph(), variant, DEFAULT_MAX_ITERS, |vals, f| {
                vals[0] = 0.0;
                f.insert(0);
            });
            assert_eq!(sssp.values, vec![0.0, 1.0, 3.0, 6.0], "{variant}");
            assert!(sssp.iterations >= 3, "{variant}");

            let sswp = run::<SswpRule>(&line_graph(), variant, DEFAULT_MAX_ITERS, |vals, f| {
                vals[0] = f32::INFINITY;
                f.insert(0);
            });
            // Widest path 0->3: direct edge width 10 beats 1-2-3 (width 1).
            assert_eq!(sswp.values, vec![f32::INFINITY, 1.0, 1.0, 10.0], "{variant}");

            // Two components: {0,1,2} and {3,4}.
            let g = EdgeList::from_edges(5, &[(1, 0), (1, 2), (4, 3)]).symmetrized();
            let wcc = run::<WccRule>(&g, variant, DEFAULT_MAX_ITERS, |vals, f| {
                for (v, val) in vals.iter_mut().enumerate() {
                    *val = v as i32;
                    f.insert(v as i32);
                }
            });
            assert_eq!(wcc.values, vec![0, 0, 0, 3, 3], "{variant}");

            // Vertex 2 has no in-path from the source: stays unreached.
            let g = EdgeList::from_weighted_edges(3, &[(0, 1, 1.0)]);
            let r = run::<SsspRule>(&g, variant, DEFAULT_MAX_ITERS, |vals, f| {
                vals[0] = 0.0;
                f.insert(0);
            });
            assert_eq!(r.values[2], f32::INFINITY, "{variant}");

            // The iteration cap cuts convergence short.
            let capped = run::<SsspRule>(&line_graph(), variant, 1, |vals, f| {
                vals[0] = 0.0;
                f.insert(0);
            });
            assert_eq!(capped.iterations, 1, "{variant}");
        }
    }

    #[test]
    fn stat_ownership_follows_variant_predicates() {
        let g = gen::rmat(256, 2000, gen::RmatParams::SOCIAL, 3);
        for variant in Variant::ALL {
            let r = run::<SsspRule>(&g, variant, DEFAULT_MAX_ITERS, |vals, f| {
                vals[0] = 0.0;
                f.insert(0);
            });
            assert_eq!(r.utilization.is_some(), variant.records_utilization(), "{variant}");
            assert_eq!(r.depth.is_some(), variant.records_depth(), "{variant}");
            assert_eq!(
                r.timings.grouping > std::time::Duration::ZERO,
                variant.needs_grouping(),
                "{variant}"
            );
        }
    }

    #[test]
    fn reuse_variant_matches_run_exactly() {
        for seed in 0..5 {
            let g = gen::rmat(200, 1500, gen::RmatParams::SOCIAL, seed + 40);
            let reference = run::<SsspRule>(&g, Variant::Serial, DEFAULT_MAX_ITERS, |vals, f| {
                vals[0] = 0.0;
                f.insert(0);
            });
            let reuse = run_reuse::<SsspRule>(&g, DEFAULT_MAX_ITERS, |vals, f| {
                vals[0] = 0.0;
                f.insert(0);
            });
            assert_eq!(reuse.values, reference.values, "seed {seed}");
            assert_eq!(reuse.iterations, reference.iterations, "seed {seed}");
            assert!(reuse.timings.grouping > std::time::Duration::ZERO);
        }
    }

    #[test]
    fn reuse_variant_groups_once_not_per_iteration() {
        // WCC with every vertex active stresses the dense-frontier path of
        // the reuse index while comparing against per-iteration regrouping.
        let g = gen::uniform(400, 4000, 50).symmetrized();
        let init = |vals: &mut [i32], f: &mut Frontier| {
            for (v, val) in vals.iter_mut().enumerate() {
                *val = v as i32;
                f.insert(v as i32);
            }
        };
        let per_iter = run::<WccRule>(&g, Variant::Grouped, DEFAULT_MAX_ITERS, init);
        let reuse = run_reuse::<WccRule>(&g, DEFAULT_MAX_ITERS, init);
        assert_eq!(reuse.values, per_iter.values);
        // Reuse pays grouping once; the per-iteration variant pays it every
        // round (typically several times more).
        assert!(
            reuse.timings.grouping < per_iter.timings.grouping,
            "reuse {:?} !< per-iter {:?}",
            reuse.timings.grouping,
            per_iter.timings.grouping
        );
    }

    #[test]
    fn parallel_wcc_with_dense_frontier_uses_multiple_workers() {
        let g = gen::uniform(400, 3000, 61).symmetrized();
        let init = |vals: &mut [i32], f: &mut Frontier| {
            for (v, val) in vals.iter_mut().enumerate() {
                *val = v as i32;
                f.insert(v as i32);
            }
        };
        let reference = run::<WccRule>(&g, Variant::Serial, DEFAULT_MAX_ITERS, init);
        let policy = ExecPolicy::with_threads(4);
        let r = run_with_policy::<WccRule>(&g, Variant::Invec, DEFAULT_MAX_ITERS, &policy, init);
        assert_eq!(r.values, reference.values);
        assert!(r.threads > 1, "dense frontier should fan out, used {}", r.threads);
        assert!(r.timings.partition > std::time::Duration::ZERO);
        assert!(r.depth.is_some());
    }
}
