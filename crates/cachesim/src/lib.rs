//! `invector-cachesim` — a set-associative cache-hierarchy simulator.
//!
//! The instruction-count model of `invector-simd` captures *work*; this
//! crate captures *locality*. A two-level LRU hierarchy is fed the byte
//! addresses touched by gathers/scatters (via `invector_simd::trace`) and
//! reports hit rates and an average-memory-access-time style cost, so the
//! paper's locality claims — tiling improves reuse, hash-table footprints
//! cross the L1/L2/RAM boundaries of Figure 13 — can be measured instead
//! of asserted.
//!
//! # Example
//!
//! ```
//! use invector_cachesim::{CacheConfig, Hierarchy};
//!
//! let mut h = Hierarchy::knl_like();
//! for i in 0..1000u64 {
//!     h.access(i * 4, 4); // sequential: almost all L1 hits
//! }
//! assert!(h.stats().l1_hit_rate() > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64-byte-line L1 (KNL/Skylake-class).
    pub const L1: CacheConfig = CacheConfig { size_bytes: 32 << 10, ways: 8, line_bytes: 64 };
    /// A 1 MiB, 16-way, 64-byte-line L2 (KNL-class, per-core share).
    pub const L2: CacheConfig = CacheConfig { size_bytes: 1 << 20, ways: 16, line_bytes: 64 };

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[s]` holds up to `ways` line tags in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/size, non-power-of-
    /// two line size, or fewer than one set).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways > 0, "cache needs at least one way");
        assert!(
            config.line_bytes.is_power_of_two() && config.line_bytes >= 4,
            "line size must be a power of two >= 4"
        );
        let sets = config.num_sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways); sets],
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Looks up (and on miss, fills) the line containing `addr`.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&tag| tag == line) {
            // Move to MRU position.
            let tag = set.remove(pos);
            set.insert(0, tag);
            true
        } else {
            if set.len() == self.config.ways {
                set.pop(); // evict LRU
            }
            set.insert(0, line);
            false
        }
    }

    /// Lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Hit in the first-level cache.
    L1,
    /// Missed L1, hit the second-level cache.
    L2,
    /// Missed both: served from memory.
    Memory,
}

/// Hit/miss accounting for a [`Hierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Line-granular accesses issued.
    pub accesses: u64,
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses served by memory.
    pub memory: u64,
}

impl HierarchyStats {
    /// Fraction of accesses served by L1 (1.0 when nothing was accessed).
    pub fn l1_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.l1_hits as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that went to memory.
    pub fn memory_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.memory as f64 / self.accesses as f64
        }
    }

    /// Average access cost in cycles under a simple latency model
    /// (L1 = 4, L2 = 14, memory = 120 — KNL-flavoured).
    pub fn average_cost(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        (4.0 * self.l1_hits as f64 + 14.0 * self.l2_hits as f64 + 120.0 * self.memory as f64)
            / self.accesses as f64
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.accesses += other.accesses;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.memory += other.memory;
    }
}

/// A two-level inclusive cache hierarchy with hit/miss accounting.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds a hierarchy from explicit geometries.
    ///
    /// # Panics
    ///
    /// Panics if the levels have different line sizes (the fill path
    /// assumes one line granularity).
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert_eq!(l1.line_bytes, l2.line_bytes, "levels must share a line size");
        Hierarchy { l1: Cache::new(l1), l2: Cache::new(l2), stats: HierarchyStats::default() }
    }

    /// The KNL-flavoured default: 32 KiB L1, 1 MiB L2.
    pub fn knl_like() -> Self {
        Hierarchy::new(CacheConfig::L1, CacheConfig::L2)
    }

    /// Simulates an access of `bytes` bytes at `addr`, touching every line
    /// the span covers. Returns the level that served the *first* line.
    pub fn access(&mut self, addr: u64, bytes: u32) -> Level {
        let line_bytes = self.l1.config.line_bytes as u64;
        let first_line = addr / line_bytes;
        let last_line = (addr + u64::from(bytes.max(1)) - 1) / line_bytes;
        let mut first_level = Level::Memory;
        for line in first_line..=last_line {
            let a = line * line_bytes;
            self.stats.accesses += 1;
            let level = if self.l1.access(a) {
                self.stats.l1_hits += 1;
                Level::L1
            } else if self.l2.access(a) {
                self.stats.l2_hits += 1;
                Level::L2
            } else {
                self.stats.memory += 1;
                Level::Memory
            };
            if line == first_line {
                first_level = level;
            }
        }
        first_level
    }

    /// The accounting so far.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.stats = HierarchyStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, sets: usize) -> Cache {
        Cache::new(CacheConfig { size_bytes: 64 * ways * sets, ways, line_bytes: 64 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny(2, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63), "same line");
        assert!(!c.access(64), "next line");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1 set, 2 ways: lines map to the same set when set count is 1.
        let mut c = tiny(2, 1);
        let line = |n: u64| n * 64;
        assert!(!c.access(line(0)));
        assert!(!c.access(line(1)));
        // Touch line 0 so line 1 becomes LRU.
        assert!(c.access(line(0)));
        // Insert line 2: evicts line 1.
        assert!(!c.access(line(2)));
        assert!(c.access(line(0)));
        assert!(!c.access(line(1)), "line 1 was evicted");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny(1, 2);
        assert!(!c.access(0)); // set 0
        assert!(!c.access(64)); // set 1
        assert!(c.access(0));
        assert!(c.access(64));
    }

    #[test]
    fn resident_lines_and_flush() {
        let mut c = tiny(4, 4);
        for i in 0..8u64 {
            c.access(i * 64);
        }
        assert_eq!(c.resident_lines(), 8);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 48 });
    }

    #[test]
    fn hierarchy_serves_from_l2_after_l1_eviction() {
        // L1: 1 set x 2 ways; L2: 1 set x 8 ways.
        let l1 = CacheConfig { size_bytes: 128, ways: 2, line_bytes: 64 };
        let l2 = CacheConfig { size_bytes: 512, ways: 8, line_bytes: 64 };
        let mut h = Hierarchy::new(l1, l2);
        assert_eq!(h.access(0, 4), Level::Memory);
        assert_eq!(h.access(64, 4), Level::Memory);
        assert_eq!(h.access(128, 4), Level::Memory); // evicts line 0 from L1
        assert_eq!(h.access(0, 4), Level::L2);
        assert_eq!(h.access(0, 4), Level::L1);
        let s = h.stats();
        assert_eq!(s.accesses, 5);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.l2_hits, 1);
        assert_eq!(s.memory, 3);
    }

    #[test]
    fn spanning_access_touches_both_lines() {
        let mut h = Hierarchy::knl_like();
        h.access(60, 8); // spans lines 0 and 1
        assert_eq!(h.stats().accesses, 2);
    }

    #[test]
    fn sequential_stream_is_l1_friendly_random_is_not() {
        use rand::{Rng, SeedableRng};
        let mut h = Hierarchy::knl_like();
        for i in 0..100_000u64 {
            h.access(i * 4, 4);
        }
        let seq = h.stats().l1_hit_rate();
        h.reset();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        for _ in 0..100_000 {
            h.access(rng.gen_range(0..64_000_000u64) & !3, 4);
        }
        let rand_rate = h.stats().l1_hit_rate();
        assert!(seq > 0.9, "sequential {seq}");
        assert!(rand_rate < 0.1, "random {rand_rate}");
        assert!(h.stats().average_cost() > 50.0);
    }

    #[test]
    fn working_set_inside_l2_eventually_hits() {
        let mut h = Hierarchy::knl_like();
        // 256 KiB working set: fits L2, not L1.
        for _pass in 0..4 {
            for i in 0..(256 << 10) / 64u64 {
                h.access(i * 64, 4);
            }
        }
        let s = h.stats();
        assert!(s.memory_rate() < 0.3, "memory rate {}", s.memory_rate());
        assert!(s.l2_hits > s.l1_hits, "L2-resident set: l2 {} l1 {}", s.l2_hits, s.l1_hits);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = HierarchyStats { accesses: 10, l1_hits: 5, l2_hits: 3, memory: 2 };
        a.merge(&HierarchyStats { accesses: 10, l1_hits: 10, l2_hits: 0, memory: 0 });
        assert_eq!(a.accesses, 20);
        assert_eq!(a.l1_hit_rate(), 0.75);
    }

    #[test]
    fn empty_stats_defaults() {
        let s = HierarchyStats::default();
        assert_eq!(s.l1_hit_rate(), 1.0);
        assert_eq!(s.memory_rate(), 0.0);
        assert_eq!(s.average_cost(), 0.0);
    }
}
