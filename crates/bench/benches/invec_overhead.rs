//! Ablation: the overhead of in-vector reduction versus conflict density
//! (§3.3/§3.4). Sweeps the number of distinct conflicting groups `D1` from
//! 0 to 8 and measures Algorithm 1, Algorithm 2 and the conflict-masking
//! round loop on the same vectors, including the paper's extreme case
//! ("two identical groups of eight" — zero Algorithm 2 iterations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use invector_core::invec::{reduce_alg1, reduce_alg2, AuxArray};
use invector_core::masking::masked_accumulate;
use invector_core::ops::Sum;
use invector_simd::{F32x16, I32x16, Mask16};

/// Builds an index vector with exactly `d` distinct conflicting groups
/// (each of two lanes); remaining lanes are unique.
fn index_with_conflicts(d: usize) -> [i32; 16] {
    assert!(d <= 8);
    let mut idx = [0i32; 16];
    for g in 0..d {
        idx[2 * g] = g as i32;
        idx[2 * g + 1] = g as i32;
    }
    for (offset, slot) in (2 * d..16).enumerate() {
        idx[slot] = 100 + offset as i32;
    }
    idx
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("invec_overhead");
    for d in [0usize, 1, 2, 4, 8] {
        let idx = I32x16::from_array(index_with_conflicts(d));
        group.bench_with_input(BenchmarkId::new("alg1", d), &idx, |b, &idx| {
            b.iter(|| {
                let mut data = F32x16::splat(1.0);
                let (safe, d1) =
                    reduce_alg1::<f32, Sum, 16>(Mask16::all(), black_box(idx), &mut data);
                black_box((safe, d1, data))
            })
        });
        group.bench_with_input(BenchmarkId::new("alg2", d), &idx, |b, &idx| {
            let mut aux = AuxArray::<f32, Sum>::new(256);
            b.iter(|| {
                let mut data = F32x16::splat(1.0);
                let (safe, d2) =
                    reduce_alg2::<f32, Sum, 16>(Mask16::all(), black_box(idx), &mut data, &mut aux);
                black_box((safe, d2, data))
            })
        });
    }
    // Portable model vs the fully-native AVX-512 Algorithm 1 (intrinsics
    // end to end) when the hardware supports it.
    if invector_simd::native::available() {
        for d in [0usize, 4, 8] {
            let idx = index_with_conflicts(d);
            group.bench_with_input(BenchmarkId::new("alg1_native_avx512", d), &idx, |b, &idx| {
                b.iter(|| {
                    let mut data = [1.0f32; 16];
                    // SAFETY: guarded by `native::available()`.
                    let mask = unsafe {
                        invector_simd::native::invec_add_f32(0xFFFF, black_box(idx), &mut data)
                    };
                    black_box((mask, data))
                })
            });
        }
    }

    // The paper's extreme: two identical groups of eight distinct lanes.
    let extreme = I32x16::from_array(std::array::from_fn(|i| (i % 8) as i32));
    group.bench_function("alg1/two-groups-of-eight", |b| {
        b.iter(|| {
            let mut data = F32x16::splat(1.0);
            black_box(reduce_alg1::<f32, Sum, 16>(Mask16::all(), black_box(extreme), &mut data))
        })
    });
    group.bench_function("alg2/two-groups-of-eight", |b| {
        let mut aux = AuxArray::<f32, Sum>::new(8);
        b.iter(|| {
            let mut data = F32x16::splat(1.0);
            black_box(reduce_alg2::<f32, Sum, 16>(
                Mask16::all(),
                black_box(extreme),
                &mut data,
                &mut aux,
            ))
        })
    });
    group.finish();
}

fn bench_stream_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_accumulate_4k");
    group.sample_size(20);
    for (name, modulo) in [("uniform", 4096usize), ("moderate", 64), ("hot", 1)] {
        let idx: Vec<i32> = (0..4096).map(|i| ((i * 131) % modulo) as i32).collect();
        let vals = vec![1.0f32; idx.len()];
        group.bench_function(BenchmarkId::new("invec", name), |b| {
            b.iter(|| {
                let mut target = vec![0.0f32; 4096];
                invector_core::invec_accumulate::<f32, Sum>(&mut target, &idx, &vals);
                black_box(target)
            })
        });
        group.bench_function(BenchmarkId::new("masked", name), |b| {
            b.iter(|| {
                let mut target = vec![0.0f32; 4096];
                masked_accumulate::<f32, Sum>(&mut target, &idx, &vals);
                black_box(target)
            })
        });
        group.bench_function(BenchmarkId::new("adaptive", name), |b| {
            b.iter(|| {
                let mut target = vec![0.0f32; 4096];
                invector_core::adaptive_accumulate::<f32, Sum>(&mut target, &idx, &vals);
                black_box(target)
            })
        });
    }
    group.finish();
}

/// The honest wall-clock comparison: scalar Rust vs the fully-native
/// AVX-512 pipeline (real `vpconflictd` + in-register reduction + hardware
/// gather-add-scatter), no emulation in the loop.
fn bench_native_pipeline(c: &mut Criterion) {
    if !invector_simd::native::available() {
        eprintln!("skipping native_pipeline: AVX-512 not available");
        return;
    }
    let mut group = c.benchmark_group("native_pipeline_64k");
    group.sample_size(30);
    for (name, domain) in [("spread", 1 << 16), ("moderate", 1 << 8), ("hot", 4usize)] {
        let idx: Vec<i32> =
            (0..65_536).map(|i| ((i as u64 * 2654435761) % domain as u64) as i32).collect();
        let vals: Vec<f32> = (0..65_536).map(|i| (i % 17) as f32).collect();
        group.bench_function(BenchmarkId::new("scalar", name), |b| {
            b.iter(|| {
                let mut target = vec![0.0f32; domain];
                invector_core::serial_accumulate::<f32, Sum>(
                    &mut target,
                    black_box(&idx),
                    black_box(&vals),
                );
                black_box(target)
            })
        });
        group.bench_function(BenchmarkId::new("native_invec", name), |b| {
            b.iter(|| {
                let mut target = vec![0.0f32; domain];
                assert!(invector_core::native_invec_accumulate_f32(
                    &mut target,
                    black_box(&idx),
                    black_box(&vals),
                ));
                black_box(target)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_stream_strategies, bench_native_pipeline);
criterion_main!(benches);
