//! Substrate micro-benchmark: gather/scatter and compress/expand costs of
//! the SIMD model over footprints spanning L1 / L2 / RAM — the memory
//! behaviour that shapes every macro result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use invector_simd::{F32x16, I32x16, Mask16};

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather");
    for log2n in [10u32, 16, 22] {
        let n = 1usize << log2n;
        let base: Vec<f32> = (0..n).map(|i| i as f32).collect();
        // A fixed pseudo-random index stream.
        let idx: Vec<I32x16> = (0..256)
            .map(|v| {
                I32x16::from_array(std::array::from_fn(|l| {
                    (((v * 16 + l) as u64).wrapping_mul(0x9E3779B97F4A7C15) % n as u64) as i32
                }))
            })
            .collect();
        group.throughput(Throughput::Elements(256 * 16));
        group.bench_with_input(BenchmarkId::new("footprint", 1 << (log2n + 2)), &idx, |b, idx| {
            b.iter(|| {
                let mut acc = F32x16::zero();
                for &v in idx {
                    acc += F32x16::gather(&base, black_box(v));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_scatter_and_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("scatter_compress");
    let mut base = vec![0.0f32; 1 << 16];
    let idx = I32x16::from_array(std::array::from_fn(|l| (l * 64) as i32));
    let vals = F32x16::splat(2.0);
    group.bench_function("scatter", |b| {
        b.iter(|| vals.scatter(black_box(&mut base), black_box(idx)))
    });
    group.bench_function("mask_scatter_half", |b| {
        let m = Mask16::from_bits(0x5555);
        b.iter(|| vals.mask_scatter(m, black_box(&mut base), black_box(idx)))
    });
    group.bench_function("compress", |b| {
        let m = Mask16::from_bits(0x0F3C);
        b.iter(|| black_box(black_box(vals).compress(m)))
    });
    group.bench_function("expand", |b| {
        let m = Mask16::from_bits(0x0F3C);
        b.iter(|| black_box(black_box(vals).expand(m, F32x16::zero())))
    });
    group.finish();
}

criterion_group!(benches, bench_gather, bench_scatter_and_compress);
criterion_main!(benches);
