//! Substrate micro-benchmark: `vpconflictd` emulation versus the real
//! AVX-512 instruction (when the host supports it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use invector_simd::{conflict_detect, conflict_free_subset, native, I32x16, Mask16};

fn portable_reference(idx: [i32; 16]) -> [i32; 16] {
    std::array::from_fn(|i| {
        let mut bits = 0i32;
        for j in 0..i {
            if idx[j] == idx[i] {
                bits |= 1 << j;
            }
        }
        bits
    })
}

fn bench_conflict(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_detect");
    let inputs: [(&str, [i32; 16]); 3] = [
        ("distinct", std::array::from_fn(|i| i as i32)),
        ("half-conflicted", std::array::from_fn(|i| (i % 8) as i32)),
        ("all-equal", [7; 16]),
    ];
    for (name, idx) in inputs {
        group.bench_with_input(BenchmarkId::new("portable_reference", name), &idx, |b, &idx| {
            b.iter(|| black_box(portable_reference(black_box(idx))))
        });
        group.bench_with_input(BenchmarkId::new("dispatched", name), &idx, |b, &idx| {
            let v = I32x16::from_array(idx);
            b.iter(|| black_box(conflict_detect(black_box(v))))
        });
        if native::available() {
            group.bench_with_input(BenchmarkId::new("native_avx512", name), &idx, |b, &idx| {
                // SAFETY: guarded by `native::available()`.
                b.iter(|| black_box(unsafe { native::conflict_i32(black_box(idx)) }))
            });
        }
        group.bench_with_input(BenchmarkId::new("conflict_free_subset", name), &idx, |b, &idx| {
            let v = I32x16::from_array(idx);
            b.iter(|| black_box(conflict_free_subset(Mask16::all(), black_box(v))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conflict);
criterion_main!(benches);
