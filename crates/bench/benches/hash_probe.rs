//! Ablation: linear-probing versus bucketized table probe cost as the
//! group cardinality approaches the table size — the mechanism behind the
//! Figure 13 crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use invector_agg::dist::{generate, Distribution};
use invector_agg::run::{aggregate, Method};

fn bench_probe(c: &mut Criterion) {
    let rows = 1 << 14;
    let mut group = c.benchmark_group("hash_probe");
    group.sample_size(15);
    group.throughput(Throughput::Elements(rows as u64));
    for log2card in [6u32, 10, 12] {
        let cardinality = 1usize << log2card;
        for dist in [Distribution::HeavyHitter, Distribution::Zipf] {
            let input = generate(dist, rows, cardinality, 7);
            for method in Method::ALL {
                let id = format!("{}/{}/2^{}", method.label(), dist.label(), log2card);
                group.bench_with_input(BenchmarkId::from_parameter(id), &input, |b, input| {
                    b.iter(|| {
                        black_box(aggregate(
                            method,
                            black_box(&input.keys),
                            black_box(&input.vals),
                            cardinality,
                        ))
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
