//! Shared harness for the autotune-convergence experiment: synthetic
//! update streams (zipf, uniform, shifting hot key), a static
//! `(quantum)`-cell runner over the controller's lattice, and a tuned
//! runner that starts at the worst rung and reports where the online
//! controller converges.
//!
//! Every runner drives the same ingest pattern — fixed-size submission
//! chunks with an epoch tick after each — so static and tuned cells are
//! comparable, and the tuned run's policy trace can be replayed for the
//! bitwise-snapshot check.

use std::sync::Arc;
use std::time::Instant;

use invector_agg::dist::{self, Distribution};
use invector_serve::{
    LocalClient, OpKind, PolicyTrace, ServeClient, ServeConfig, ServerCore, TableSpec, TuneConfig,
    TuneMode, Update,
};
use rand::{Rng, SeedableRng, SmallRng};

/// Updates per submission chunk (one epoch tick fires after each chunk).
pub const CHUNK: usize = 256;

/// One synthetic workload: a key sequence materialized as an i32 count
/// stream and an f32 sum stream over the same keys. The float table makes
/// the replay check bitwise-meaningful — any reassociation of its fold
/// (a slice boundary in the wrong place) changes the bits.
pub struct Workload {
    /// Display name.
    pub name: &'static str,
    /// Table slot count.
    pub cardinality: usize,
    /// i32 add stream (table 0).
    pub counts: Vec<Update>,
    /// f32 add stream (table 1), same keys.
    pub sums: Vec<Update>,
}

impl Workload {
    fn from_keys(name: &'static str, cardinality: usize, keys: &[u32], seed: u64) -> Workload {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1e);
        let counts =
            keys.iter().enumerate().map(|(seq, &k)| Update::i32(seq as u64, k, 1)).collect();
        let sums = keys
            .iter()
            .enumerate()
            .map(|(seq, &k)| Update::f32(seq as u64, k, rng.gen_range(-1.0f32..1.0)))
            .collect();
        Workload { name, cardinality, counts, sums }
    }

    /// Total updates the workload submits (both streams).
    pub fn updates(&self) -> usize {
        self.counts.len() + self.sums.len()
    }
}

/// Zipf-skewed keys (the serving benchmark's distribution).
pub fn zipf(rows: usize, cardinality: usize, seed: u64) -> Workload {
    let input = dist::generate(Distribution::Zipf, rows, cardinality, seed);
    let keys: Vec<u32> = input.keys.iter().map(|&k| k as u32).collect();
    Workload::from_keys("zipf", cardinality, &keys, seed)
}

/// Uniform keys: minimal conflicts, the in-vector kernel's easy case.
pub fn uniform(rows: usize, cardinality: usize, seed: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let keys: Vec<u32> = (0..rows).map(|_| rng.gen_range(0u32..cardinality as u32)).collect();
    Workload::from_keys("uniform", cardinality, &keys, seed)
}

/// A hot window of keys that jumps to a new position four times over the
/// stream: 90% of updates land in the window, so the conflict profile —
/// and the best policy — shifts mid-run.
pub fn shifting_hot_key(rows: usize, cardinality: usize, seed: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let window = (cardinality / 8).max(1) as u32;
    let phase_len = rows.div_ceil(4).max(1);
    let keys: Vec<u32> = (0..rows)
        .map(|i| {
            let base = ((i / phase_len) as u32 * window * 2) % cardinality as u32;
            if rng.gen_bool(0.9) {
                (base + rng.gen_range(0..window)) % cardinality as u32
            } else {
                rng.gen_range(0u32..cardinality as u32)
            }
        })
        .collect();
    Workload::from_keys("shifting-hot-key", cardinality, &keys, seed)
}

fn config(w: &Workload, quantum: usize, ladder_top: usize, tune: TuneMode) -> ServeConfig {
    let mut c = ServeConfig::new(vec![
        TableSpec::i32("counts", OpKind::Add, w.cardinality),
        TableSpec::f32("sums", OpKind::Add, w.cardinality),
    ]);
    c.quantum = quantum;
    c.shards = 4;
    // Headroom above the largest rung the controller can climb to, so
    // backpressure never throttles a probe.
    c.queue_capacity = ladder_top.max(4_096) * 4;
    c.tune = tune;
    c
}

/// Drives the workload: chunked submission with a tick per chunk, final
/// flush. Returns (total seconds, seconds at the halfway mark, core).
fn drive(config: ServeConfig, w: &Workload) -> (f64, f64, Arc<ServerCore>) {
    let core = ServerCore::new(config).expect("autotune config is valid");
    let mut client = LocalClient::new(core.clone());
    let chunks = w.counts.len().div_ceil(CHUNK);
    let half = chunks / 2;
    let start = Instant::now();
    let mut at_half = 0.0;
    for (i, (cc, cs)) in w.counts.chunks(CHUNK).zip(w.sums.chunks(CHUNK)).enumerate() {
        client.submit_all(0, cc).expect("submit counts");
        client.submit_all(1, cs).expect("submit sums");
        core.tick(false);
        if i + 1 == half {
            at_half = start.elapsed().as_secs_f64();
        }
    }
    client.flush().expect("flush");
    (start.elapsed().as_secs_f64(), at_half, core)
}

fn snapshots(core: &ServerCore) -> Vec<Vec<u32>> {
    (0..2u16).map(|t| core.snapshot(t).expect("snapshot").bits()).collect()
}

/// One static `(quantum)` cell.
pub struct StaticRun {
    /// The fixed epoch quantum.
    pub quantum: usize,
    /// Whole-run throughput, million updates per second.
    pub mups: f64,
}

/// Runs the workload at a fixed quantum (no tuning).
pub fn run_static(w: &Workload, quantum: usize, ladder_top: usize) -> StaticRun {
    let (seconds, _, _) = drive(config(w, quantum, ladder_top, TuneMode::Off), w);
    StaticRun { quantum, mups: w.updates() as f64 / seconds.max(1e-12) / 1e6 }
}

/// Every rung of the ladder as a static cell, in ladder order.
pub fn sweep(w: &Workload, ladder: &[usize]) -> Vec<StaticRun> {
    let top = ladder.last().copied().unwrap_or(4_096);
    ladder.iter().map(|&q| run_static(w, q, top)).collect()
}

/// One tuned run, started at the ladder's worst (smallest) rung.
pub struct TunedRun {
    /// Throughput over the stream's second half — the converged regime.
    pub steady_mups: f64,
    /// Whole-run throughput (climb included).
    pub overall_mups: f64,
    /// Quantum of the policy active when the stream ended.
    pub final_quantum: usize,
    /// Policy installs the controller made.
    pub changes: usize,
    /// The recorded trace (replayable via [`replay_trace`]).
    pub trace: PolicyTrace,
    /// Final snapshot bits per table.
    pub bits: Vec<Vec<u32>>,
}

/// Runs the workload under the online controller, starting from the
/// bottom rung so the result demonstrates the climb rather than the
/// starting guess.
pub fn run_tuned(w: &Workload, cfg: TuneConfig) -> TunedRun {
    let start_quantum = cfg.quantum_ladder[0];
    let top = cfg.quantum_ladder.last().copied().unwrap_or(4_096);
    let (seconds, at_half, core) = drive(config(w, start_quantum, top, TuneMode::Auto(cfg)), w);
    let total = w.updates();
    let first_half = 2 * ((w.counts.len().div_ceil(CHUNK) / 2) * CHUNK).min(w.counts.len());
    let steady_updates = (total - first_half).max(1);
    let steady_seconds = (seconds - at_half).max(1e-12);
    TunedRun {
        steady_mups: steady_updates as f64 / steady_seconds / 1e6,
        overall_mups: total as f64 / seconds.max(1e-12) / 1e6,
        final_quantum: core.current_policy().quantum,
        changes: core.policy_trace().len(),
        trace: core.policy_trace(),
        bits: snapshots(&core),
    }
}

/// Replays a tuned run's recorded trace statically (no controller) and
/// returns the snapshot bits — the bitwise-determinism witness.
pub fn replay_trace(
    w: &Workload,
    trace: PolicyTrace,
    start_quantum: usize,
    ladder_top: usize,
) -> Vec<Vec<u32>> {
    let (_, _, core) = drive(config(w, start_quantum, ladder_top, TuneMode::Replay(trace)), w);
    snapshots(&core)
}

/// Rungs between two quanta on the ladder (quanta off the ladder count
/// from rung 0).
pub fn ladder_steps(ladder: &[usize], a: usize, b: usize) -> usize {
    let pos = |q| ladder.iter().position(|&r| r == q).unwrap_or(0);
    pos(a).abs_diff(pos(b))
}

/// The convergence experiment's controller knobs, shared by the
/// `autotune_convergence` and `serve_throughput` binaries: a ladder whose
/// bottom rung is the degenerate per-update-epoch cell (the controller
/// starts there to demonstrate the climb), windows long enough that
/// sub-millisecond timing noise does not steer probes, and wide
/// hysteresis/drift bands so a converged run stops churning.
pub fn convergence_config() -> TuneConfig {
    TuneConfig {
        quantum_ladder: vec![1, 16, 128, 1024, 4096],
        thread_ladder: vec![1],
        variants: vec![invector_core::ExecVariant::Invec, invector_core::ExecVariant::Serial],
        warmup_epochs: 2,
        measure_epochs: 3,
        hysteresis: 0.1,
        hold_epochs: 128,
        drift: 1.5,
    }
}
