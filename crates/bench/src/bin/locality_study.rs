//! Supplementary study: the locality effects behind Figures 8 and 13,
//! measured with the cache-hierarchy simulator instead of asserted.
//!
//! * Part 1 — cache tiling: the same in-vector PageRank-style reduction
//!   over tiled vs. original edge order, with simulated L1/L2/memory
//!   rates (the reason `tiling_serial` beats `nontiling_serial` by
//!   1.5–2.5× in the paper).
//! * Part 2 — the Figure 13 regimes: the aggregation hash table's
//!   footprint crossing L1 → L2 → RAM as group cardinality grows.
//!
//! Run: `cargo run --release -p invector-bench --bin locality_study
//!       [--scale f | --full]`

use invector_agg::dist::{generate, Distribution};
use invector_agg::LinearTable;
use invector_bench::{arg_scale, header, human};
use invector_cachesim::Hierarchy;
use invector_core::ops::Sum;
use invector_graph::gen;
use invector_graph::tile::tile_edges;
use invector_simd::trace;

fn main() {
    let scale = arg_scale(0.25);
    header("Locality study", "simulated cache behaviour of tiling and table footprints", scale);

    // ---- Part 1: tiling ----
    let nv = ((1 << 19) as f64 * scale) as usize;
    let ne = nv * 8;
    let graph = gen::uniform(nv.max(1 << 14), ne, 7);
    let nv = graph.num_vertices();
    println!(
        "\nPart 1 — tiling: {} vertices ({} KiB of sums), {} edges, in-vector reduction",
        human(nv as u64),
        nv * 4 / 1024,
        human(graph.num_edges() as u64)
    );
    println!("{:<12} {:>8} {:>8} {:>8} {:>12}", "order", "L1%", "L2%", "mem%", "cost(cyc/acc)");

    let vals = vec![1.0f32; graph.num_edges()];
    for tiled in [false, true] {
        let order: Vec<i32> = if tiled {
            let t = tile_edges(&graph, 8192);
            t.perm.iter().map(|&p| graph.dst()[p as usize]).collect()
        } else {
            graph.dst().to_vec()
        };
        let mut sums = vec![0.0f32; nv];
        trace::install(Hierarchy::knl_like());
        invector_core::invec_accumulate::<f32, Sum>(&mut sums, &order, &vals);
        let stats = trace::take().expect("tracer installed").stats();
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}% {:>12.1}",
            if tiled { "tiled" } else { "original" },
            stats.l1_hit_rate() * 100.0,
            (stats.l2_hits as f64 / stats.accesses as f64) * 100.0,
            stats.memory_rate() * 100.0,
            stats.average_cost()
        );
    }

    // ---- Part 2: Figure 13 cache regimes ----
    let rows = ((4_000_000f64 * scale) as usize).max(1 << 16);
    println!(
        "\nPart 2 — aggregation footprint: {} Zipf rows, linear_invec, growing cardinality",
        human(rows as u64)
    );
    println!(
        "{:<12} {:>12} {:>8} {:>8} {:>8} {:>12}",
        "log2(card)", "table KiB", "L1%", "L2%", "mem%", "cost(cyc/acc)"
    );
    let mut log2card = 8;
    while log2card <= 19 && (1usize << log2card) * 4 <= rows {
        let cardinality = 1usize << log2card;
        let input = generate(Distribution::Zipf, rows, cardinality, 13);
        let mut table = LinearTable::for_cardinality(cardinality);
        trace::install(Hierarchy::knl_like());
        let _ = table.aggregate_invec(&input.keys, &input.vals);
        let stats = trace::take().expect("tracer installed").stats();
        println!(
            "{:<12} {:>12} {:>7.1}% {:>7.1}% {:>7.1}% {:>12.1}",
            log2card,
            table.capacity() * 16 / 1024, // 4 arrays x 4 bytes per slot
            stats.l1_hit_rate() * 100.0,
            (stats.l2_hits as f64 / stats.accesses as f64) * 100.0,
            stats.memory_rate() * 100.0,
            stats.average_cost()
        );
        log2card += 1;
    }
    println!(
        "\npaper shape: tiling turns RAM-rate gathers into cache hits; the aggregation \
         working set leaves L1 then L2 exactly where Figure 13's throughput steps down"
    );
}
