//! Figure 12: execution time of different versions of Molecular Dynamics
//! running 20 iterations on the `16-3.0r` and `32-3.0r` inputs
//! (breakdown: computing / tiling (neighbor rebuild) / grouping).
//!
//! Run: `cargo run --release -p invector-bench --bin fig12_moldyn
//!       [--scale f | --full]`

use invector_bench::{arg_scale, header, human, ms, ratio};
use invector_kernels::Variant;
use invector_moldyn::input::{input_16_3_0r, input_32_3_0r, Molecules};
use invector_moldyn::sim::simulate;

fn main() {
    let scale = arg_scale(0.002);
    header(
        "Figure 12",
        "Moldyn, 20 iterations, 5 versions x 2 inputs (log2-scale in paper)",
        scale,
    );

    let inputs: [(&str, Molecules); 2] =
        [("16-3.0r", input_16_3_0r(scale)), ("32-3.0r", input_32_3_0r(scale))];
    for (name, molecules) in inputs {
        println!("\n--- {} ({} molecules) ---", name, human(molecules.len() as u64));
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>11} {:>15} {:>10}",
            "version",
            "pairs",
            "tiling(ms)",
            "group(ms)",
            "compute(ms)",
            "model(Minstr)",
            "simd_util"
        );
        let mut serial_instr = 0u64;
        let mut mask_instr = 0u64;
        let mut invec_instr = 0u64;
        for variant in Variant::ALL {
            let r = simulate(&molecules, variant, 20);
            match variant {
                Variant::Serial => serial_instr = r.instructions,
                Variant::Masked => mask_instr = r.instructions,
                Variant::Invec => invec_instr = r.instructions,
                _ => {}
            }
            let util = r
                .utilization
                .map(|u| format!("{:.2}%", u.ratio() * 100.0))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<22} {:>10} {:>10} {:>10} {:>11} {:>15.1} {:>10}",
                variant.tiled_label(),
                human(r.num_pairs as u64),
                ms(r.timings.tiling),
                ms(r.timings.grouping),
                ms(r.timings.compute),
                r.instructions as f64 / 1e6,
                util
            );
        }
        println!(
            "modeled speedups: invec vs serial {:.2}x, invec vs mask {:.2}x",
            ratio(serial_instr as f64, invec_instr as f64),
            ratio(mask_instr as f64, invec_instr as f64)
        );
    }
    println!(
        "\npaper shape: grouping compute fastest but needs ~1000 iterations to amortize \
         grouping; masking slower than serial (utilization ~9-19%); invec 2.6-4.4x over serial"
    );
}
