//! Table 1: applications and datasets used in the experiments — prints the
//! registry of synthetic stand-ins next to the paper's dimensions, plus the
//! skew statistics that justify each generator class.
//!
//! Run: `cargo run --release -p invector-bench --bin table1_datasets
//!       [--scale f | --full]`

use invector_agg::dist::Distribution;
use invector_bench::{arg_scale, header, human};
use invector_graph::gen::in_degree_gini;
use invector_graph::{datasets, Csr};
use invector_moldyn::input::{input_16_3_0r, input_32_3_0r, CUTOFF};
use invector_moldyn::neighbor::build_pairs;

fn main() {
    let scale = arg_scale(0.01);
    header("Table 1", "applications and datasets", scale);

    println!("\nGraph algorithms (PageRank, SSSP, SSWP, WCC):");
    println!(
        "{:<16} {:>22} {:>12} {:>22} {:>14} {:>10}",
        "dataset", "paper dims", "paper NNZ", "generated dims", "generated NNZ", "gini"
    );
    for d in datasets::all(scale) {
        let csr = Csr::from_edge_list(&d.graph);
        assert_eq!(csr.num_edges(), d.graph.num_edges());
        println!(
            "{:<16} {:>10}*{:<11} {:>12} {:>10}*{:<11} {:>14} {:>10.3}",
            d.name,
            human(d.paper_vertices as u64),
            human(d.paper_vertices as u64),
            human(d.paper_edges as u64),
            human(d.graph.num_vertices() as u64),
            human(d.graph.num_vertices() as u64),
            human(d.graph.num_edges() as u64),
            in_degree_gini(&d.graph)
        );
    }

    println!("\nParticle simulation (Moldyn, cutoff {CUTOFF}σ):");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14}",
        "input", "paper mols", "paper NNZ", "generated mols", "generated NNZ"
    );
    for (name, paper_mols, paper_nnz, m) in [
        ("16-3.0r", 131_072u64, 11_000_000u64, input_16_3_0r(scale)),
        ("32-3.0r", 364_500, 30_000_000, input_32_3_0r(scale)),
    ] {
        let pairs = build_pairs(&m, CUTOFF);
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>14}",
            name,
            human(paper_mols),
            human(paper_nnz),
            human(m.len() as u64),
            human(pairs.len() as u64)
        );
    }

    println!("\nData aggregation (hash-based, 32M rows at full scale):");
    for dist in Distribution::ALL {
        println!(
            "  {:<16} 1*32M keys/values, {}",
            dist.label(),
            match dist {
                Distribution::HeavyHitter => "one key holds 50% of rows",
                Distribution::Zipf => "Zipf exponent 0.5",
                Distribution::MovingCluster => "64-wide sliding locality window",
            }
        );
    }
}
