//! Figure 8: overall performance of different versions of PageRank on
//! different inputs (execution-time breakdown: computing / tiling /
//! grouping, plus the conflict-masking SIMD utilization annotation).
//!
//! Run: `cargo run --release -p invector-bench --bin fig08_pagerank
//!       [--scale f | --full]`

use invector_bench::{arg_scale, header, human, ms, ratio};
use invector_graph::datasets;
use invector_kernels::{pagerank, PageRankConfig, Variant};

fn main() {
    let scale = arg_scale(0.02);
    header("Figure 8", "PageRank execution-time breakdown, 5 versions x 3 graphs", scale);

    for dataset in datasets::all(scale) {
        let config = PageRankConfig::default();
        println!(
            "\n--- {} ({} vertices, {} edges) ---",
            dataset.name,
            human(dataset.graph.num_vertices() as u64),
            human(dataset.graph.num_edges() as u64)
        );
        println!(
            "{:<22} {:>10} {:>10} {:>11} {:>7} {:>15} {:>10}",
            "version",
            "tiling(ms)",
            "group(ms)",
            "compute(ms)",
            "iters",
            "model(Minstr)",
            "simd_util"
        );
        let mut serial_instr = 0u64;
        let mut mask_instr = 0u64;
        let mut invec_instr = 0u64;
        let mut conv = 0;
        for variant in Variant::ALL {
            let r = pagerank(&dataset.graph, variant, &config);
            conv = r.iterations;
            match variant {
                Variant::Serial => serial_instr = r.instructions,
                Variant::Masked => mask_instr = r.instructions,
                Variant::Invec => invec_instr = r.instructions,
                _ => {}
            }
            let util = r
                .utilization
                .map(|u| format!("{:.2}%", u.ratio() * 100.0))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<22} {:>10} {:>10} {:>11} {:>7} {:>15.1} {:>10}",
                variant.tiled_label(),
                ms(r.timings.tiling),
                ms(r.timings.grouping),
                ms(r.timings.compute),
                r.iterations,
                r.instructions as f64 / 1e6,
                util
            );
        }
        println!(
            "conv_iter={conv}; modeled speedups: invec vs serial {:.2}x, invec vs mask {:.2}x",
            ratio(serial_instr as f64, invec_instr as f64),
            ratio(mask_instr as f64, invec_instr as f64)
        );
    }
    println!(
        "\npaper shape: tiling cheap & effective; grouping compute fastest but grouping \
         overhead dominates; invec beats mask by 1.4-1.8x and serial by 1.5-2.3x (modeled)"
    );
}
