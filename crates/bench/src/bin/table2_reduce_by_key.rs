//! Table 2: execution time of 1000 iterations of reductions on all edges
//! of the graphs — in-vector reduction versus `reduce_by_key` (the
//! Thrust-style comparator of §4.5).
//!
//! The simulated workload matches the paper's: reduce per-edge values by
//! the destination column of each graph's sparse matrix, repeated
//! `iterations` times. `reduce_by_key` is measured in its best light
//! (keys pre-sorted once, outside the timed loop) and with the sort
//! included (what an unsorted stream actually costs).
//!
//! Run: `cargo run --release -p invector-bench --bin table2_reduce_by_key
//!       [--scale f | --full]`

use std::time::Instant;

use invector_bench::{arg_scale, header, human, ratio};
use invector_core::ops::Sum;
use invector_core::rbk::{
    invec_reduce_by_key, invec_sorted_reduce_by_key, reduce_runs_by_key, sort_reduce_by_key,
};
use invector_graph::datasets;

fn main() {
    let scale = arg_scale(0.005);
    // 1000 iterations at full scale; fewer at reduced scale to stay snappy.
    let iterations = if scale >= 0.5 { 1000 } else { 100 };
    header("Table 2", "edge-column reductions: in-vector vs reduce_by_key", scale);
    println!("iterations per measurement: {iterations} (paper: 1000)\n");
    println!(
        "{:<16} {:>10} {:>14} {:>16} {:>16} {:>16} {:>9}",
        "graph",
        "edges",
        "invec(s)",
        "invec seg(s)",
        "rbk presorted(s)",
        "rbk w/ sort(s)",
        "speedup"
    );

    for dataset in datasets::all(scale) {
        let g = &dataset.graph;
        let keys = g.dst();
        let vals: Vec<f32> = g.weight().to_vec();
        let domain = g.num_vertices();

        // In-vector reduction: dense per-key reduction, no data movement.
        let t0 = Instant::now();
        let mut dense = Vec::new();
        for _ in 0..iterations {
            dense = invec_reduce_by_key::<f32, Sum>(keys, &vals, domain);
        }
        let invec_time = t0.elapsed();

        // reduce_by_key with keys pre-sorted once (not timed), Thrust's
        // favourable setup.
        let mut pairs: Vec<(i32, f32)> = keys.iter().copied().zip(vals.iter().copied()).collect();
        pairs.sort_by_key(|&(k, _)| k);
        let sorted_keys: Vec<i32> = pairs.iter().map(|&(k, _)| k).collect();
        let sorted_vals: Vec<f32> = pairs.iter().map(|&(_, v)| v).collect();
        let t1 = Instant::now();
        let mut runs = (Vec::new(), Vec::new());
        for _ in 0..iterations {
            runs = reduce_runs_by_key::<f32, Sum>(&sorted_keys, &sorted_vals);
        }
        let rbk_time = t1.elapsed();

        // Our vectorized segmented reduction on the same presorted input.
        let t_seg = Instant::now();
        let mut seg = (Vec::new(), Vec::new());
        for _ in 0..iterations {
            seg = invec_sorted_reduce_by_key::<f32, Sum>(&sorted_keys, &sorted_vals);
        }
        let seg_time = t_seg.elapsed();
        assert_eq!(seg.0, runs.0, "segmented reduce keys diverged");

        // reduce_by_key including the sort every iteration (unsorted input).
        let t2 = Instant::now();
        for _ in 0..iterations {
            let _ = sort_reduce_by_key::<f32, Sum>(keys, &vals);
        }
        let rbk_sort_time = t2.elapsed();

        // Cross-check the two semantics against each other.
        for (k, v) in runs.0.iter().zip(&runs.1) {
            let d = dense[*k as usize];
            assert!((d - v).abs() <= 1e-2 * (d.abs() + v.abs() + 1.0), "key {k}: {d} vs {v}");
        }

        println!(
            "{:<16} {:>10} {:>14.3} {:>16.3} {:>16.3} {:>16.3} {:>8.1}x",
            dataset.name,
            human(g.num_edges() as u64),
            invec_time.as_secs_f64(),
            seg_time.as_secs_f64(),
            rbk_time.as_secs_f64(),
            rbk_sort_time.as_secs_f64(),
            ratio(rbk_sort_time.as_secs_f64(), invec_time.as_secs_f64())
        );
    }
    println!(
        "\npaper shape: in-vector reduction ~8.5x faster than Thrust reduce_by_key \
         (and supports active-lane masks, which reduce_by_key cannot express)"
    );
}
