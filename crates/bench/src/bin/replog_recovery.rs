//! Durability costs and recovery speed for the replog-backed serve core.
//!
//! Four questions, one Zipf stream (the serving workload's i32-count +
//! f32-min table pair):
//!
//! 1. What does the WAL cost at ingest time? Live ingest throughput is
//!    measured without a log and with `--wal-sync os | epoch | always`.
//! 2. How fast is raw log replay? The whole stream is logged with
//!    checkpoints disabled, the core is dropped, and a fresh
//!    `ServerCore::new` over the directory is timed.
//! 3. How much do checkpoints help? Same, but with a short checkpoint
//!    cadence so recovery loads a snapshot and replays only the tail.
//! 4. How fast does a follower catch up? A durable leader ingests the
//!    stream, then a cold follower bootstraps over loopback TCP and tails
//!    until its watermarks match the leader's.
//!
//! Every recovered or followed core must report bitwise-identical per-table
//! checksums to the live reference; a mismatch aborts the run. Emits one
//! JSON document on stdout whose `durability` rows are checked in as part
//! of `BENCH_serve.json`.
//!
//! Run: `cargo run --release -p invector-bench --bin replog_recovery
//!       [--scale f | --full]`

use std::time::{Duration, Instant};

use invector_agg::dist::{self, Distribution};
use invector_bench::arg_scale;
use invector_serve::{
    Follower, LocalClient, OpKind, ServeClient, ServeConfig, Server, ServerCore, SyncPolicy,
    TableSpec, Update, WalOptions,
};

/// Epoch quantum for every cell: the serving workload's fixed batch size.
const QUANTUM: usize = 4_096;
/// Client submission chunk.
const CHUNK: usize = 1_024;
/// Checkpoint cadence (non-empty epochs) for the checkpointed-recovery row.
const CHECKPOINT_EPOCHS: u64 = 16;
/// Same stream seed the harness serving workload uses.
const SEED: u64 = 0x1b_f2_9d;

/// One measured row of the durability table.
struct Row {
    mode: &'static str,
    /// `--wal-sync` label, or "none" for the undurable baseline.
    sync: &'static str,
    seconds: f64,
    /// Recovered/followed state matched the live reference bitwise
    /// (trivially true for ingest rows, which *are* the reference path).
    checksum_ok: bool,
}

fn main() {
    let scale = arg_scale(1.0);
    let rows = ((100_000.0 * scale) as usize).max(10_000);
    let cardinality = 4_096.min(rows);
    let input = dist::generate(Distribution::Zipf, rows, cardinality, SEED);
    let updates = 2 * rows as u64;
    let streams = Streams::from(&input);

    let mut table = Vec::new();

    // 1. Ingest cost: no log, then each sync policy.
    let reference = {
        let (row, checksums) = ingest_cell(&streams, cardinality, None, "none");
        table.push(row);
        checksums
    };
    for (label, sync) in
        [("os", SyncPolicy::Os), ("epoch", SyncPolicy::Epoch), ("always", SyncPolicy::Always)]
    {
        let dir = scratch("ingest", label);
        let wal = wal_options(&dir, sync, 0);
        let (row, checksums) = ingest_cell(&streams, cardinality, Some(wal), label);
        assert_eq!(checksums, reference, "durable ingest diverged ({label})");
        table.push(row);
        std::fs::remove_dir_all(&dir).ok();
    }

    // 2. Raw log replay: full log, no checkpoints.
    table.push(recovery_cell(&streams, cardinality, &reference, 0, "recover_replay"));
    // 3. Checkpoint + tail replay.
    table.push(recovery_cell(
        &streams,
        cardinality,
        &reference,
        CHECKPOINT_EPOCHS,
        "recover_checkpoint",
    ));
    // 4. Cold follower catchup over loopback.
    table.push(follower_cell(&streams, cardinality, &reference));

    for row in &table {
        eprintln!(
            "{:<20} sync={:<6} {:>9.2} ms  {:>8.2} Mup/s  checksum {}",
            row.mode,
            row.sync,
            row.seconds * 1e3,
            updates as f64 / row.seconds / 1e6,
            if row.checksum_ok { "ok" } else { "MISMATCH" },
        );
    }

    print_json(scale, rows, cardinality, updates, &table);
}

/// The workload's two update streams, pregenerated once.
struct Streams {
    counts: Vec<Update>,
    mins: Vec<Update>,
}

impl Streams {
    fn from(input: &dist::Input) -> Streams {
        let counts = input
            .keys
            .iter()
            .enumerate()
            .map(|(seq, &k)| Update::i32(seq as u64, k as u32, 1))
            .collect();
        let mins = input
            .keys
            .iter()
            .zip(&input.vals)
            .enumerate()
            .map(|(seq, (&k, &v))| Update::f32(seq as u64, k as u32, v))
            .collect();
        Streams { counts, mins }
    }
}

fn scratch(phase: &str, tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("invector-replog-bench-{phase}-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).ok();
    dir
}

fn wal_options(dir: &std::path::Path, sync: SyncPolicy, checkpoint_epochs: u64) -> WalOptions {
    let mut wal = WalOptions::new(dir);
    wal.sync = sync;
    wal.checkpoint_epochs = checkpoint_epochs;
    wal.checkpoint_bytes = 0;
    wal
}

fn config(cardinality: usize, wal: Option<WalOptions>) -> ServeConfig {
    let mut config = ServeConfig::new(vec![
        TableSpec::i32("counts", OpKind::Add, cardinality),
        TableSpec::f32("mins", OpKind::Min, cardinality),
    ]);
    config.quantum = QUANTUM;
    config.queue_capacity = QUANTUM * 4;
    config.wal = wal;
    config
}

/// Per-table `(watermark, checksum)` pairs — the bitwise witness every
/// recovered or followed core is held to.
type Checksums = Vec<(u64, u32)>;

fn checksums_of(core: &std::sync::Arc<ServerCore>) -> Checksums {
    let mut client = LocalClient::new(std::sync::Arc::clone(core));
    (0..2u16)
        .map(|t| {
            let snap = client.snapshot(t).expect("snapshot");
            (snap.watermark, snap.checksum)
        })
        .collect()
}

/// Stream both tables through a fresh core and time submit→flush.
fn ingest_cell(
    streams: &Streams,
    cardinality: usize,
    wal: Option<WalOptions>,
    sync: &'static str,
) -> (Row, Checksums) {
    let core = ServerCore::new(config(cardinality, wal)).expect("config is valid");
    let mut client = LocalClient::new(core.clone());
    let start = Instant::now();
    for (table, stream) in [(0u16, &streams.counts), (1u16, &streams.mins)] {
        for chunk in stream.chunks(CHUNK) {
            client.submit_all(table, chunk).expect("ingest submit");
        }
    }
    client.flush().expect("ingest flush");
    let seconds = start.elapsed().as_secs_f64();
    let checksums = checksums_of(&core);
    (Row { mode: "ingest", sync, seconds, checksum_ok: true }, checksums)
}

/// Log the whole stream durably, drop the core, and time a fresh
/// `ServerCore::new` over the directory — recovery is construction.
fn recovery_cell(
    streams: &Streams,
    cardinality: usize,
    reference: &Checksums,
    checkpoint_epochs: u64,
    mode: &'static str,
) -> Row {
    let dir = scratch("recover", mode);
    let build = || config(cardinality, Some(wal_options(&dir, SyncPolicy::Os, checkpoint_epochs)));
    {
        let core = ServerCore::new(build()).expect("config is valid");
        let mut client = LocalClient::new(core);
        for (table, stream) in [(0u16, &streams.counts), (1u16, &streams.mins)] {
            for chunk in stream.chunks(CHUNK) {
                client.submit_all(table, chunk).expect("logged submit");
            }
        }
        client.flush().expect("logged flush");
    }
    let start = Instant::now();
    let core = ServerCore::new(build()).expect("recovery succeeds");
    let seconds = start.elapsed().as_secs_f64();
    let checksum_ok = &checksums_of(&core) == reference;
    assert!(checksum_ok, "{mode} diverged from the live reference");
    drop(core);
    std::fs::remove_dir_all(&dir).ok();
    Row { mode, sync: "os", seconds, checksum_ok }
}

/// Ingest on a durable leader, then time a cold follower from `start` to
/// watermark parity: bootstrap snapshot transfer plus log tail.
fn follower_cell(streams: &Streams, cardinality: usize, reference: &Checksums) -> Row {
    let dir = scratch("follow", "leader");
    let wal = wal_options(&dir, SyncPolicy::Os, CHECKPOINT_EPOCHS);
    let server =
        Server::bind(config(cardinality, Some(wal)), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    {
        let mut client = LocalClient::new(server.core());
        for (table, stream) in [(0u16, &streams.counts), (1u16, &streams.mins)] {
            for chunk in stream.chunks(CHUNK) {
                client.submit_all(table, chunk).expect("leader submit");
            }
        }
        client.flush().expect("leader flush");
    }

    let start = Instant::now();
    let follower =
        Follower::start(&addr.to_string(), config(cardinality, None)).expect("follower starts");
    let deadline = start + Duration::from_secs(60);
    let seconds = loop {
        if &checksums_of(&follower.core()) == reference {
            break start.elapsed().as_secs_f64();
        }
        assert!(Instant::now() < deadline, "follower did not catch up within 60s");
        std::thread::sleep(Duration::from_micros(200));
    };
    follower.stop();
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
    Row { mode: "follower_catchup", sync: "os", seconds, checksum_ok: true }
}

fn print_json(scale: f64, rows: usize, cardinality: usize, updates: u64, table: &[Row]) {
    println!("{{");
    println!("  \"experiment\": \"replog_recovery\",");
    println!("  \"scale\": {scale},");
    println!("  \"rows\": {rows},");
    println!("  \"cardinality\": {cardinality},");
    println!("  \"updates\": {updates},");
    println!("  \"quantum\": {QUANTUM},");
    println!("  \"distribution\": \"zipf\",");
    println!("  \"durability\": [");
    for (i, r) in table.iter().enumerate() {
        println!("    {{");
        println!("      \"mode\": \"{}\",", r.mode);
        println!("      \"wal_sync\": \"{}\",", r.sync);
        println!("      \"elapsed_ms\": {:.3},", r.seconds * 1e3);
        println!("      \"mupdates_per_sec\": {:.3},", updates as f64 / r.seconds / 1e6);
        println!("      \"checksum_matches_reference\": {}", r.checksum_ok);
        println!("    }}{}", if i + 1 < table.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
