//! Figure 9: overall performance of different versions of wave-frontier
//! SSSP on different inputs.
//!
//! Run: `cargo run --release -p invector-bench --bin fig09_sssp
//!       [--scale f | --full]`

use invector_bench::{arg_scale, wavefront_figure};
use invector_kernels::{sssp, sssp_reuse};

fn main() {
    let scale = arg_scale(0.02);
    wavefront_figure(
        "Figure 9",
        "SSSP",
        scale,
        |g, variant| sssp(g, 0, variant, 10_000),
        |g| sssp_reuse(g, 0, 10_000),
    );
}
