//! Figure 13: throughput of hash-based aggregation versus group-by
//! cardinality (x-axis `log2(cardinality)` ∈ [6, 19]) for the three skewed
//! distributions and five method variants.
//!
//! Query: `SELECT G, count(*), sum(V), sum(V*V) FROM R GROUP BY G`.
//!
//! Run: `cargo run --release -p invector-bench --bin fig13_aggregation
//!       [--scale f | --full]`
//! The paper uses 32M rows; scale multiplies that row count.

use invector_agg::dist::{generate, Distribution};
use invector_agg::run::{aggregate, Method};
use invector_bench::{arg_csv, arg_scale, header, CsvWriter};

fn main() {
    let scale = arg_scale(1.0 / 64.0);
    let rows = ((32_000_000f64 * scale) as usize).max(1 << 14);
    header("Figure 13", "hash aggregation throughput vs group cardinality", scale);
    println!("rows per run: {rows}; series: throughput Mrows/s (wall) | instr/row (modeled)");
    let mut csv = CsvWriter::new(&[
        "distribution",
        "method",
        "log2_cardinality",
        "mrows_per_sec",
        "instr_per_row",
    ]);

    // The paper sweeps log2(cardinality) in [6, 19]; at reduced scale the
    // cardinality cannot exceed the row count, so the sweep is clipped.
    let max_log2 = 19.min((rows as f64).log2() as u32 - 2);
    for dist in Distribution::ALL {
        println!("\n=== distribution: {dist} ===");
        print!("{:<16}", "log2(card):");
        for log2card in (6..=max_log2).step_by(1) {
            print!(" {log2card:>12}");
        }
        println!();
        for method in Method::ALL {
            print!("{:<16}", method.label());
            for log2card in 6..=max_log2 {
                let cardinality = 1usize << log2card;
                let input = generate(dist, rows, cardinality, 0xF16 + log2card as u64);
                let out = aggregate(method, &input.keys, &input.vals, cardinality);
                let wall = out.mrows_per_sec(rows);
                let ipr = out.instructions as f64 / rows as f64;
                csv.row(&[
                    dist.label().into(),
                    method.label().into(),
                    log2card.to_string(),
                    format!("{wall:.2}"),
                    format!("{ipr:.2}"),
                ]);
                print!(" {:>6.1}|{:>5.1}", wall, ipr);
            }
            println!();
        }
    }
    if let Some(path) = arg_csv() {
        csv.write(&path).expect("write csv");
        println!("\nwrote {} data points to {}", csv.len(), path.display());
    }
    println!(
        "\npaper shape: linear_mask worst everywhere (skew serializes it); bucket_invec \
         best until cardinality nears the table/cache size, where linear_invec takes over"
    );
}
