//! Convenience driver: runs every table/figure harness in sequence
//! (locating the sibling binaries next to this executable) and reports a
//! pass/fail summary — the one-command equivalent of the paper artifact's
//! `run.sh`.
//!
//! Run: `cargo run --release -p invector-bench --bin all_experiments
//!       [--scale f | --full]`
//! Extra arguments are forwarded to every harness.

use std::process::Command;

/// The harness binaries, in paper order.
const EXPERIMENTS: [&str; 9] = [
    "table1_datasets",
    "fig08_pagerank",
    "fig09_sssp",
    "fig10_sswp",
    "fig11_wcc",
    "fig12_moldyn",
    "fig13_aggregation",
    "table2_reduce_by_key",
    "locality_study",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let own = std::env::current_exe().expect("current executable path");
    let dir = own.parent().expect("executable directory");

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let path = dir.join(name);
        if !path.exists() {
            eprintln!(
                "skipping {name}: {} not built (cargo build --release -p invector-bench --bins)",
                path.display()
            );
            failures.push(name);
            continue;
        }
        println!("\n################ {name} ################");
        match Command::new(&path).args(&forwarded).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{name} exited with {status}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e}");
                failures.push(name);
            }
        }
    }

    println!("\n================ summary ================");
    println!(
        "{} of {} experiments completed",
        EXPERIMENTS.len() - failures.len(),
        EXPERIMENTS.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
