//! Native SIMD backends vs the portable software model: wall-clock of the
//! fused whole-stream accumulation drivers that back every kernel's
//! in-vector hot loop (sum/min/max over `f32` and `i32`), on a uniform and
//! a skewed (hotspot-mixture) index distribution, with one row per native
//! ISA the build host supports (AVX-512, AVX2, NEON).
//!
//! Emits one JSON document on stdout. The `count_feature` field records
//! whether the portable model charged its instruction counter, so the
//! counter-on vs counter-off comparison is two runs of this binary:
//!
//! ```text
//! cargo run --release -p invector-bench --bin native_vs_model
//! cargo run --release -p invector-bench --bin native_vs_model --no-default-features
//! ```
//!
//! `BENCH_native.json` at the repo root holds both runs.

use std::time::{Duration, Instant};

use invector_bench::arg_scale;
use invector_core::backend::Backend;
use invector_core::ops::{Max, Min, Sum};
use invector_core::{invec_accumulate, invec_accumulate_with, BackendChoice};
use invector_harness::{registry, RunSpec};
use invector_kernels::{ExecPolicy, Variant};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Target slots, L1-resident so both paths measure the conflict-resolution
/// pipeline rather than DRAM latency (shared across generators so speedups
/// are comparable).
const TARGET_LEN: usize = 1 << 12;

/// Hot slots of the skewed generator: a power-law-style hotspot mixture
/// (most items uniform, a heavy tail landing on a few slots), the regime of
/// the paper's real graph datasets — conflicts are frequent but small, so
/// the merge loop runs without dominating.
const HOT_SLOTS: i32 = 12;

/// Fraction (percent) of skewed items routed to the hot slots.
const HOT_PERCENT: u32 = 8;

/// The native ISAs this host can execute, widest first.
fn native_backends() -> Vec<Backend> {
    [Backend::Avx512, Backend::Avx2, Backend::Neon].into_iter().filter(|b| b.available()).collect()
}

fn backend_choice(b: Backend) -> BackendChoice {
    match b {
        Backend::Portable => BackendChoice::Portable,
        Backend::Avx512 => BackendChoice::Avx512,
        Backend::Avx2 => BackendChoice::Avx2,
        Backend::Neon => BackendChoice::Neon,
    }
}

struct Row {
    kernel: &'static str,
    generator: &'static str,
    backend: &'static str,
    portable_secs: f64,
    native_secs: f64,
    speedup: f64,
}

fn main() {
    let scale = arg_scale(0.1);
    let items = ((4 << 20) as f64 * scale) as usize + 16;
    let mut rng = SmallRng::seed_from_u64(0x1605);

    let generators: [(&'static str, Vec<i32>); 2] = [
        ("uniform", (0..items).map(|_| rng.gen_range(0..TARGET_LEN as i32)).collect()),
        (
            "skewed",
            (0..items)
                .map(|_| {
                    if rng.gen_range(0..100u32) < HOT_PERCENT {
                        rng.gen_range(0..HOT_SLOTS)
                    } else {
                        rng.gen_range(0..TARGET_LEN as i32)
                    }
                })
                .collect(),
        ),
    ];
    let fvals: Vec<f32> = (0..items).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ivals: Vec<i32> = (0..items).map(|_| rng.gen_range(-100..100)).collect();

    let backends = native_backends();
    let mut rows: Vec<Row> = Vec::new();
    // One measurement per (kernel, generator, backend): the portable
    // model's whole stream vs the same stream through the backend's fused
    // driver. Each repetition times every path back to back, so scheduler
    // noise (steal time, frequency shifts) hits all rows of a group alike;
    // the reported speedup is the median of the per-repetition ratios,
    // which a few disturbed repetitions cannot drag around.
    macro_rules! bench {
        ($name:literal, $t:ty, $op:ty, $vals:expr, $init:expr) => {
            for (generator, idx) in &generators {
                let base: Vec<$t> = vec![$init; TARGET_LEN];
                let vals: &[$t] = $vals;
                let mut portable_secs = f64::INFINITY;
                let mut native_best = vec![f64::INFINITY; backends.len()];
                let mut ratios: Vec<Vec<f64>> = vec![Vec::with_capacity(REPS); backends.len()];
                // One untimed pass per path pages the streams in and warms
                // the caches so the first timed repetition is not an outlier.
                {
                    let mut target = base.clone();
                    invec_accumulate::<$t, $op>(&mut target, idx, vals);
                    for &backend in &backends {
                        let mut target = base.clone();
                        invec_accumulate_with::<$t, $op>(backend, &mut target, idx, vals);
                    }
                }
                for _ in 0..REPS {
                    let p = once(|| {
                        let mut target = base.clone();
                        let start = Instant::now();
                        invec_accumulate::<$t, $op>(&mut target, idx, vals);
                        start.elapsed()
                    });
                    portable_secs = portable_secs.min(p);
                    for (k, &backend) in backends.iter().enumerate() {
                        let n = once(|| {
                            let mut target = base.clone();
                            let start = Instant::now();
                            invec_accumulate_with::<$t, $op>(backend, &mut target, idx, vals);
                            start.elapsed()
                        });
                        native_best[k] = native_best[k].min(n);
                        ratios[k].push(p / n.max(1e-12));
                    }
                }
                for (k, &backend) in backends.iter().enumerate() {
                    rows.push(Row {
                        kernel: $name,
                        generator,
                        backend: backend.name(),
                        portable_secs,
                        native_secs: native_best[k],
                        speedup: median(&mut ratios[k]),
                    });
                }
            }
        };
    }
    bench!("add_f32", f32, Sum, &fvals, 0.0);
    bench!("min_f32", f32, Min, &fvals, f32::INFINITY);
    bench!("max_f32", f32, Max, &fvals, f32::NEG_INFINITY);
    bench!("add_i32", i32, Sum, &ivals, 0);
    bench!("min_i32", i32, Min, &ivals, i32::MAX);
    bench!("max_i32", i32, Max, &ivals, i32::MIN);

    print_json(scale, items, &backends, &rows, &app_rows(scale, &backends));
}

/// End-to-end registry rows: each application's in-vector variant on the
/// portable model vs every available native backend, through the harness
/// pipeline. The micro rows above isolate the accumulation driver; these
/// put the same backends under the full kernels.
fn app_rows(scale: f64, backends: &[Backend]) -> Vec<AppRow> {
    let spec = RunSpec { scale, iters: 20, ..RunSpec::small() };
    let mut rows = Vec::new();
    for app in registry::all() {
        let workload = match app.prepare(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping {}: {e}", app.name());
                continue;
            }
        };
        let time = |choice: BackendChoice| {
            let policy = ExecPolicy::default().backend(choice);
            let mut best = f64::INFINITY;
            for _ in 0..APP_REPS {
                best = best.min(workload.run(Variant::Invec, &policy).elapsed().as_secs_f64());
            }
            best
        };
        let portable_secs = time(BackendChoice::Portable);
        for &backend in backends {
            let native_secs = time(backend_choice(backend));
            rows.push(AppRow {
                app: app.name(),
                input: workload.describe(),
                backend: backend.name(),
                portable_secs,
                native_secs,
            });
        }
        if backends.is_empty() {
            rows.push(AppRow {
                app: app.name(),
                input: workload.describe(),
                backend: "portable",
                portable_secs,
                native_secs: portable_secs,
            });
        }
    }
    rows
}

/// Repetitions per (app, backend); whole-kernel runs are long enough that
/// best-of-few is stable.
const APP_REPS: usize = 5;

struct AppRow {
    app: &'static str,
    input: String,
    backend: &'static str,
    portable_secs: f64,
    native_secs: f64,
}

/// Interleaved repetitions per (kernel, generator, path).
const REPS: usize = 31;

/// One measured duration, in seconds.
fn once(f: impl FnOnce() -> Duration) -> f64 {
    f().as_secs_f64()
}

/// Median of the paired per-repetition ratios.
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let mid = xs.len() / 2;
    if xs.is_empty() {
        return f64::NAN;
    }
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

fn print_json(scale: f64, items: usize, backends: &[Backend], rows: &[Row], apps: &[AppRow]) {
    println!("{{");
    println!("  \"experiment\": \"native_vs_model\",");
    println!("  \"scale\": {scale},");
    println!("  \"items\": {items},");
    println!("  \"target_len\": {TARGET_LEN},");
    println!("  \"count_feature\": {},", cfg!(feature = "count"));
    let names: Vec<String> = backends.iter().map(|b| format!("\"{}\"", b.name())).collect();
    println!("  \"native_backends\": [{}],", names.join(", "));
    println!("  \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        println!("    {{");
        println!("      \"kernel\": \"{}\",", r.kernel);
        println!("      \"generator\": \"{}\",", r.generator);
        println!("      \"backend\": \"{}\",", r.backend);
        println!("      \"portable_secs\": {:.6},", r.portable_secs);
        println!("      \"native_secs\": {:.6},", r.native_secs);
        println!("      \"speedup\": {:.2}", r.speedup);
        println!("    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    println!("  ],");
    println!("  \"apps\": [");
    for (i, r) in apps.iter().enumerate() {
        println!("    {{");
        println!("      \"app\": \"{}\",", r.app);
        println!("      \"input\": \"{}\",", r.input);
        println!("      \"backend\": \"{}\",", r.backend);
        println!("      \"portable_secs\": {:.6},", r.portable_secs);
        println!("      \"native_secs\": {:.6},", r.native_secs);
        println!("      \"speedup\": {:.2}", r.portable_secs / r.native_secs.max(1e-12));
        println!("    }}{}", if i + 1 < apps.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
