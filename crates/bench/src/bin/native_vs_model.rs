//! Native AVX-512 backend vs the portable software model: wall-clock of
//! the fused whole-stream accumulation drivers that back every kernel's
//! in-vector hot loop (sum/min/max over `f32` and `i32`), on a uniform and
//! a skewed (hotspot-mixture) index distribution.
//!
//! Emits one JSON document on stdout. The `count_feature` field records
//! whether the portable model charged its instruction counter, so the
//! counter-on vs counter-off comparison is two runs of this binary:
//!
//! ```text
//! cargo run --release -p invector-bench --bin native_vs_model
//! cargo run --release -p invector-bench --bin native_vs_model --no-default-features
//! ```
//!
//! `BENCH_native.json` at the repo root holds both runs.

use std::time::{Duration, Instant};

use invector_bench::arg_scale;
use invector_core::backend::Backend;
use invector_core::ops::{Max, Min, Sum};
use invector_core::{invec_accumulate, invec_accumulate_with, BackendChoice};
use invector_harness::{registry, RunSpec};
use invector_kernels::{ExecPolicy, Variant};
use invector_simd::native;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Target slots, L1-resident so both paths measure the conflict-resolution
/// pipeline rather than DRAM latency (shared across generators so speedups
/// are comparable).
const TARGET_LEN: usize = 1 << 12;

/// Hot slots of the skewed generator: a power-law-style hotspot mixture
/// (most items uniform, a heavy tail landing on a few slots), the regime of
/// the paper's real graph datasets — conflicts are frequent but small, so
/// the merge loop runs without dominating.
const HOT_SLOTS: i32 = 12;

/// Fraction (percent) of skewed items routed to the hot slots.
const HOT_PERCENT: u32 = 8;

struct Row {
    kernel: &'static str,
    generator: &'static str,
    portable_secs: f64,
    native_secs: Option<f64>,
    speedup: Option<f64>,
}

fn main() {
    let scale = arg_scale(0.1);
    let items = ((4 << 20) as f64 * scale) as usize + 16;
    let mut rng = SmallRng::seed_from_u64(0x1605);

    let generators: [(&'static str, Vec<i32>); 2] = [
        ("uniform", (0..items).map(|_| rng.gen_range(0..TARGET_LEN as i32)).collect()),
        (
            "skewed",
            (0..items)
                .map(|_| {
                    if rng.gen_range(0..100u32) < HOT_PERCENT {
                        rng.gen_range(0..HOT_SLOTS)
                    } else {
                        rng.gen_range(0..TARGET_LEN as i32)
                    }
                })
                .collect(),
        ),
    ];
    let fvals: Vec<f32> = (0..items).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ivals: Vec<i32> = (0..items).map(|_| rng.gen_range(-100..100)).collect();

    let mut rows: Vec<Row> = Vec::new();
    // One measurement per (kernel, generator): the portable model's whole
    // stream vs the same stream through the native fused driver. Each
    // repetition times the two paths back to back, so scheduler noise
    // (steal time, frequency shifts) hits both halves of a pair alike; the
    // reported speedup is the median of the per-repetition ratios, which a
    // few disturbed repetitions cannot drag around.
    macro_rules! bench {
        ($name:literal, $t:ty, $op:ty, $vals:expr, $init:expr) => {
            for (generator, idx) in &generators {
                let base: Vec<$t> = vec![$init; TARGET_LEN];
                let vals: &[$t] = $vals;
                let mut portable_secs = f64::INFINITY;
                let mut native_best = f64::INFINITY;
                let mut ratios: Vec<f64> = Vec::with_capacity(REPS);
                // One untimed pass per path pages the streams in and warms
                // the caches so the first timed repetition is not an outlier.
                {
                    let mut target = base.clone();
                    invec_accumulate::<$t, $op>(&mut target, idx, vals);
                    if native::available() {
                        let mut target = base.clone();
                        invec_accumulate_with::<$t, $op>(Backend::Native, &mut target, idx, vals);
                    }
                }
                for _ in 0..REPS {
                    let p = once(|| {
                        let mut target = base.clone();
                        let start = Instant::now();
                        invec_accumulate::<$t, $op>(&mut target, idx, vals);
                        start.elapsed()
                    });
                    portable_secs = portable_secs.min(p);
                    if native::available() {
                        let n = once(|| {
                            let mut target = base.clone();
                            let start = Instant::now();
                            invec_accumulate_with::<$t, $op>(
                                Backend::Native,
                                &mut target,
                                idx,
                                vals,
                            );
                            start.elapsed()
                        });
                        native_best = native_best.min(n);
                        ratios.push(p / n.max(1e-12));
                    }
                }
                let native_secs = native::available().then_some(native_best);
                let speedup = native::available().then(|| median(&mut ratios));
                rows.push(Row { kernel: $name, generator, portable_secs, native_secs, speedup });
            }
        };
    }
    bench!("add_f32", f32, Sum, &fvals, 0.0);
    bench!("min_f32", f32, Min, &fvals, f32::INFINITY);
    bench!("max_f32", f32, Max, &fvals, f32::NEG_INFINITY);
    bench!("add_i32", i32, Sum, &ivals, 0);
    bench!("min_i32", i32, Min, &ivals, i32::MAX);
    bench!("max_i32", i32, Max, &ivals, i32::MIN);

    print_json(scale, items, &rows, &app_rows(scale));
}

/// End-to-end registry rows: each application's in-vector variant on the
/// portable model vs the native backend, through the harness pipeline. The
/// micro rows above isolate the accumulation driver; these put the same
/// backends under the full kernels.
fn app_rows(scale: f64) -> Vec<AppRow> {
    let spec = RunSpec { scale, iters: 20, ..RunSpec::small() };
    let mut rows = Vec::new();
    for app in registry::all() {
        let workload = match app.prepare(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping {}: {e}", app.name());
                continue;
            }
        };
        let time = |choice: BackendChoice| {
            let policy = ExecPolicy::default().backend(choice);
            let mut best = f64::INFINITY;
            for _ in 0..APP_REPS {
                best = best.min(workload.run(Variant::Invec, &policy).elapsed().as_secs_f64());
            }
            best
        };
        let portable_secs = time(BackendChoice::Portable);
        let native_secs = native::available().then(|| time(BackendChoice::Native));
        rows.push(AppRow {
            app: app.name(),
            input: workload.describe(),
            portable_secs,
            native_secs,
        });
    }
    rows
}

/// Repetitions per (app, backend); whole-kernel runs are long enough that
/// best-of-few is stable.
const APP_REPS: usize = 5;

struct AppRow {
    app: &'static str,
    input: String,
    portable_secs: f64,
    native_secs: Option<f64>,
}

/// Interleaved repetitions per (kernel, generator, path).
const REPS: usize = 31;

/// One measured duration, in seconds.
fn once(f: impl FnOnce() -> Duration) -> f64 {
    f().as_secs_f64()
}

/// Median of the paired per-repetition ratios.
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

fn print_json(scale: f64, items: usize, rows: &[Row], apps: &[AppRow]) {
    println!("{{");
    println!("  \"experiment\": \"native_vs_model\",");
    println!("  \"scale\": {scale},");
    println!("  \"items\": {items},");
    println!("  \"target_len\": {TARGET_LEN},");
    println!("  \"count_feature\": {},", cfg!(feature = "count"));
    println!("  \"native_available\": {},", native::available());
    println!("  \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        println!("    {{");
        println!("      \"kernel\": \"{}\",", r.kernel);
        println!("      \"generator\": \"{}\",", r.generator);
        println!("      \"portable_secs\": {:.6},", r.portable_secs);
        match (r.native_secs, r.speedup) {
            (Some(n), Some(s)) => {
                println!("      \"native_secs\": {n:.6},");
                println!("      \"speedup\": {s:.2}");
            }
            _ => {
                println!("      \"native_secs\": null,");
                println!("      \"speedup\": null");
            }
        }
        println!("    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    println!("  ],");
    println!("  \"apps\": [");
    for (i, r) in apps.iter().enumerate() {
        println!("    {{");
        println!("      \"app\": \"{}\",", r.app);
        println!("      \"input\": \"{}\",", r.input);
        println!("      \"portable_secs\": {:.6},", r.portable_secs);
        match r.native_secs {
            Some(n) => {
                println!("      \"native_secs\": {n:.6},");
                println!("      \"speedup\": {:.2}", r.portable_secs / n.max(1e-12));
            }
            None => {
                println!("      \"native_secs\": null,");
                println!("      \"speedup\": null");
            }
        }
        println!("    }}{}", if i + 1 < apps.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
