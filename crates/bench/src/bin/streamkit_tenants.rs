//! Multi-tenant streaming bench: incremental graph analytics and windowed
//! aggregation co-resident on one serving core, compared against the
//! from-scratch alternative the delta engines replace.
//!
//! One core hosts four stream tables — delta PageRank and incremental WCC
//! over a shifting-hot-edge churn stream, plus a count-based add window and
//! a watermark-based max window over a key-hashed data stream. Two cells:
//!
//! 1. **delta** — every epoch applies its event slice incrementally through
//!    the streamkit engines (the serving path). Timed over the whole
//!    multi-tenant ingest, windows included.
//! 2. **from_scratch** — at every epoch boundary the graph analytics are
//!    recomputed serially from the current edge set (`streamkit::reference`),
//!    which is what a stateless consumer would have to do to see the same
//!    per-epoch answers; the window tenants are maintained with the
//!    plain-loop simulator, the cheapest stateless-side substitute.
//!
//! The delta core's snapshots are checked bitwise against the from-scratch
//! recompute at every sampled epoch boundary (and the window tables against
//! the plain-loop simulator at the end) — the speedup is only reported for
//! states proven identical. Emits one JSON document on stdout whose
//! `streamkit` rows are checked in as part of `BENCH_serve.json`.
//!
//! Run: `cargo run --release -p invector-bench --bin streamkit_tenants
//!       [--scale f | --full]`

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use invector_bench::arg_scale;
use invector_serve::{
    LocalClient, OpKind, ServeClient, ServeConfig, ServerCore, TableSpec, Update,
};
use invector_streamkit::{reference, AggOp, DELETE_BIT};

/// Vertices in the evolving graph (delta wins grow with graph size).
const VERTICES: u32 = 4_096;
/// Distinct hot-cluster positions the churn stream drifts through. The
/// stride and the cluster width are both `VERTICES / HOT_POSITIONS`, so
/// clusters tile the id space without overlapping — overlap would chain
/// the whole graph into one component and any deletion would force the
/// WCC engine to re-relax all of it.
const HOT_POSITIONS: u32 = 128;
/// PageRank iteration depth.
const ITERS: u32 = 12;
/// Window tenant key space.
const KEYS: u32 = 256;
/// Epoch quantum — also the from-scratch recompute cadence: both cells
/// produce answers at the same per-epoch boundaries.
const QUANTUM: usize = 512;
/// Every `SAMPLE`-th epoch boundary is verified bitwise against the
/// from-scratch recompute (every boundary is *timed* on both sides).
const SAMPLE: usize = 8;
/// Deterministic stream seed (same generator family as the harness apps).
const SEED: u64 = 0x1b_f2_9d;

/// xorshift64* — self-contained so the bench needs no rand dependency.
struct EventRng(u64);

impl EventRng {
    fn new(seed: u64) -> EventRng {
        EventRng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

struct Row {
    mode: &'static str,
    seconds: f64,
    updates: u64,
    snapshots_verified: usize,
}

fn main() {
    let scale = arg_scale(1.0);
    let epochs = ((128.0 * scale) as usize).max(8);
    let events = epochs * QUANTUM;

    // Shifting-hot-edge churn: most events touch a window of vertex ids
    // that drifts through the id space, so deletes hit live edges and the
    // dirty frontier stays small relative to the graph — the regime where
    // delta maintenance should beat recomputation decisively.
    let mut rng = EventRng::new(SEED);
    let edge_events: Vec<(u32, u32)> = (0..events)
        .map(|i| {
            let hot = ((i / QUANTUM) as u32 % HOT_POSITIONS) * (VERTICES / HOT_POSITIONS);
            let span = (VERTICES / HOT_POSITIONS).max(2);
            let src = (hot + rng.next() as u32 % span) % VERTICES;
            let dst = (hot + rng.next() as u32 % span) % VERTICES;
            invector_streamkit::edge_event(src, dst, rng.next() % 100 < 90)
        })
        .collect();
    let mut watermark = 0u32;
    let window_events: Vec<(u32, u32)> = (0..events)
        .map(|i| {
            if i % 97 == 96 {
                watermark += 1 + (rng.next() as u32 % 3);
                invector_streamkit::window_advance(KEYS, watermark)
            } else {
                invector_streamkit::window_data(rng.next() as u32 % KEYS, rng.next() as i32)
            }
        })
        .collect();

    let (delta, snapshots) = delta_cell(&edge_events, &window_events, epochs);
    let from_scratch = from_scratch_cell(&edge_events, &window_events, epochs, &snapshots);
    verify_windows(&window_events);

    let speedup = from_scratch.seconds / delta.seconds;
    for row in [&delta, &from_scratch] {
        eprintln!(
            "{:<14} {:>9.2} ms  {:>8.2} Mup/s  {} snapshot points verified",
            row.mode,
            row.seconds * 1e3,
            row.updates as f64 / row.seconds / 1e6,
            row.snapshots_verified,
        );
    }
    eprintln!("delta speedup vs from-scratch: {speedup:.2}x");
    assert!(
        speedup >= 5.0,
        "delta maintenance must beat from-scratch recomputation by >= 5x (got {speedup:.2}x)"
    );

    print_json(scale, epochs, events, &delta, &from_scratch, speedup);
}

/// Bitwise witnesses captured from the serving core at sampled epoch
/// boundaries: `(epoch, rank bits, wcc label bits)`.
type GraphSnapshots = Vec<(usize, Vec<u32>, Vec<u32>)>;

/// The serving path: all four tenants on one core, events applied epoch by
/// epoch through the incremental engines. Snapshot capture runs off the
/// clock — the timed cost is submit + epoch apply only.
fn delta_cell(
    edge_events: &[(u32, u32)],
    window_events: &[(u32, u32)],
    epochs: usize,
) -> (Row, GraphSnapshots) {
    let mut config = ServeConfig::new(vec![
        TableSpec::pagerank("ranks", VERTICES, ITERS),
        TableSpec::wcc("components", VERTICES),
        TableSpec::window("sums", OpKind::Add, KEYS, 8, 256, false),
        TableSpec::window("maxs", OpKind::Max, KEYS, 6, 4, true),
    ]);
    config.quantum = QUANTUM;
    config.queue_capacity = QUANTUM * 4;
    let core = ServerCore::new(config).expect("config is valid");
    let mut client = LocalClient::new(core.clone());

    let n = VERTICES as usize;
    let mut snapshots = Vec::new();
    let mut elapsed = Duration::ZERO;
    for epoch in 0..epochs {
        let slice = epoch * QUANTUM..(epoch + 1) * QUANTUM;
        let start = Instant::now();
        // The two graph tenants consume the same edge stream and the two
        // window tenants the same data stream, so each batch is built once
        // and submitted to both subscribers.
        for (events, tables) in [(edge_events, [0u16, 1]), (window_events, [2u16, 3])] {
            let updates: Vec<Update> = events[slice.clone()]
                .iter()
                .enumerate()
                .map(|(i, &(idx, bits))| Update { seq: (slice.start + i) as u64, idx, bits })
                .collect();
            for table in tables {
                client.submit_all(table, &updates).expect("submit");
            }
        }
        core.tick(false);
        elapsed += start.elapsed();

        if (epoch + 1) % SAMPLE == 0 || epoch + 1 == epochs {
            let mut ranks = client.snapshot(0).expect("ranks snapshot").bits();
            ranks.truncate(n);
            let mut labels = client.snapshot(1).expect("labels snapshot").bits();
            labels.truncate(n);
            snapshots.push((epoch + 1, ranks, labels));
        }
    }
    let row = Row {
        mode: "delta",
        seconds: elapsed.as_secs_f64(),
        updates: 2 * edge_events.len() as u64 + 2 * window_events.len() as u64,
        snapshots_verified: snapshots.len(),
    };
    (row, snapshots)
}

/// The stateless alternative: at every epoch boundary, rebuild the analytics
/// from the current edge set with the serial reference. Verified bitwise
/// against the delta core's snapshots at the sampled boundaries.
fn from_scratch_cell(
    edge_events: &[(u32, u32)],
    window_events: &[(u32, u32)],
    epochs: usize,
    snapshots: &GraphSnapshots,
) -> Row {
    let n = VERTICES as usize;
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    // The stateless consumer still owes the window tenants their per-epoch
    // answers; the plain-loop simulator is the cheapest way to produce
    // them, so that is what this cell is billed for.
    let mut sums = reference::WindowSim::new(KEYS as usize, 8, 256, false, AggOp::Add);
    let mut maxs = reference::WindowSim::new(KEYS as usize, 6, 4, true, AggOp::Max);
    let mut elapsed = Duration::ZERO;
    let mut verified = 0usize;
    for epoch in 0..epochs {
        let start = Instant::now();
        sums.apply(&window_events[epoch * QUANTUM..(epoch + 1) * QUANTUM]);
        maxs.apply(&window_events[epoch * QUANTUM..(epoch + 1) * QUANTUM]);
        for &(src, bits) in &edge_events[epoch * QUANTUM..(epoch + 1) * QUANTUM] {
            let dst = bits & !DELETE_BIT;
            if bits & DELETE_BIT != 0 {
                edges.remove(&(src, dst));
            } else {
                edges.insert((src, dst));
            }
        }
        let mut inn = vec![Vec::new(); n];
        let mut outdeg = vec![0u32; n];
        let mut und = vec![Vec::new(); n];
        for &(u, v) in &edges {
            inn[v as usize].push(u);
            outdeg[u as usize] += 1;
            und[u as usize].push(v);
            und[v as usize].push(u);
        }
        for list in und.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        let layers = reference::pagerank_layers(n, ITERS as usize, &inn, &outdeg);
        let labels = reference::wcc_labels(n, &und);
        elapsed += start.elapsed();

        if let Some((_, ranks, served_labels)) = snapshots.iter().find(|&&(at, ..)| at == epoch + 1)
        {
            let scratch_ranks: Vec<u32> =
                layers[ITERS as usize].iter().map(|r| r.to_bits()).collect();
            let scratch_labels: Vec<u32> = labels.iter().map(|&l| l as u32).collect();
            assert_eq!(
                ranks,
                &scratch_ranks,
                "delta pagerank diverged from from-scratch at epoch {}",
                epoch + 1
            );
            assert_eq!(
                served_labels,
                &scratch_labels,
                "delta wcc diverged from from-scratch at epoch {}",
                epoch + 1
            );
            verified += 1;
        }
    }
    Row {
        mode: "from_scratch",
        seconds: elapsed.as_secs_f64(),
        updates: 2 * edge_events.len() as u64 + 2 * window_events.len() as u64,
        snapshots_verified: verified,
    }
}

/// The window tenants' full slot images — aggregates, bucket rings,
/// retraction payloads — must match the plain-loop simulator bitwise.
fn verify_windows(window_events: &[(u32, u32)]) {
    let mut config = ServeConfig::new(vec![
        TableSpec::window("sums", OpKind::Add, KEYS, 8, 256, false),
        TableSpec::window("maxs", OpKind::Max, KEYS, 6, 4, true),
    ]);
    config.quantum = QUANTUM;
    config.queue_capacity = QUANTUM * 4;
    let core = ServerCore::new(config).expect("config is valid");
    let mut client = LocalClient::new(core);
    for table in [0u16, 1] {
        let updates: Vec<Update> = window_events
            .iter()
            .enumerate()
            .map(|(seq, &(idx, bits))| Update { seq: seq as u64, idx, bits })
            .collect();
        for chunk in updates.chunks(QUANTUM) {
            client.submit_all(table, chunk).expect("window submit");
        }
    }
    client.flush().expect("flush");
    for (table, buckets, width, timed, op) in
        [(0u16, 8usize, 256u64, false, AggOp::Add), (1, 6, 4, true, AggOp::Max)]
    {
        let mut sim = reference::WindowSim::new(KEYS as usize, buckets, width, timed, op);
        sim.apply(window_events);
        let served = client.snapshot(table).expect("snapshot").bits();
        let expect: Vec<u32> = sim.slots.iter().map(|&s| s as u32).collect();
        assert_eq!(served, expect, "window table {table} diverged from the simulator");
    }
}

fn print_json(scale: f64, epochs: usize, events: usize, delta: &Row, scratch: &Row, speedup: f64) {
    println!("{{");
    println!("  \"experiment\": \"streamkit_tenants\",");
    println!("  \"scale\": {scale},");
    println!("  \"vertices\": {VERTICES},");
    println!("  \"pagerank_iters\": {ITERS},");
    println!("  \"window_keys\": {KEYS},");
    println!("  \"epochs\": {epochs},");
    println!("  \"events_per_stream\": {events},");
    println!("  \"quantum\": {QUANTUM},");
    println!("  \"streamkit\": [");
    for (i, r) in [delta, scratch].iter().enumerate() {
        println!("    {{");
        println!("      \"mode\": \"{}\",", r.mode);
        println!("      \"elapsed_ms\": {:.3},", r.seconds * 1e3);
        println!("      \"mupdates_per_sec\": {:.3},", r.updates as f64 / r.seconds / 1e6);
        println!("      \"snapshot_points_verified_bitwise\": {}", r.snapshots_verified);
        println!("    }}{}", if i < 1 { "," } else { "" });
    }
    println!("  ],");
    println!("  \"delta_speedup_vs_from_scratch\": {speedup:.2}");
    println!("}}");
}
