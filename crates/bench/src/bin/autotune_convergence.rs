//! Autotune convergence: does the online controller find the best static
//! cell — and keep the snapshots bitwise-deterministic while doing it?
//!
//! For each of three stream shapes (zipf, uniform, shifting hot key) the
//! harness measures every static quantum cell on the controller's ladder,
//! then runs the controller from the *worst* rung and checks four things:
//!
//! 1. **Convergence** — the final quantum lands within one ladder step of
//!    the best static cell (hysteresis legitimately stops one rung early).
//! 2. **Near-best throughput** — steady-state (second half of the stream)
//!    tuned throughput is at least 0.8x the best static cell.
//! 3. **Climbs out of the hole** — tuned steady-state is at least 2x the
//!    worst static cell it started at.
//! 4. **Determinism** — replaying the recorded policy trace without the
//!    controller reproduces the tuned run's snapshots bitwise.
//!
//! `--smoke` scales the streams down and exits non-zero on any failed
//! check (the CI gate); the default run prints the full table for
//! `BENCH`-style inspection.
//!
//! Run: `cargo run --release -p invector-bench --bin autotune_convergence
//!       [--smoke | --scale f | --full]`

use invector_bench::arg_scale;
use invector_bench::autotune::{
    convergence_config, ladder_steps, replay_trace, run_tuned, shifting_hot_key, sweep, uniform,
    zipf, Workload,
};
use invector_serve::TuneConfig;

const SEED: u64 = 0x1b_f2_9d;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = arg_scale(if smoke { 0.4 } else { 1.0 });
    let rows = ((150_000.0 * scale) as usize).max(30_000);
    let cardinality = 2_048.min(rows);
    let cfg = convergence_config();
    let ladder = cfg.quantum_ladder.clone();

    println!("autotune convergence: {rows} rows x 2 tables, {cardinality} slots");
    println!("ladder {ladder:?}, controller starts at quantum {}", ladder[0]);

    let workloads = [
        zipf(rows, cardinality, SEED),
        uniform(rows, cardinality, SEED),
        shifting_hot_key(rows, cardinality, SEED),
    ];

    let mut failures = Vec::new();
    for w in &workloads {
        if let Err(why) = check_workload(w, &cfg, &ladder) {
            failures.extend(why.into_iter().map(|f| format!("{}: {f}", w.name)));
        }
    }

    if failures.is_empty() {
        println!("\nall workloads converged; traces replay bitwise");
    } else {
        eprintln!("\nFAILED checks:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Runs one workload's sweep + tuned run and returns the failed checks.
fn check_workload(w: &Workload, cfg: &TuneConfig, ladder: &[usize]) -> Result<(), Vec<String>> {
    println!("\n{}:", w.name);
    println!("  {:>8} {:>10}", "quantum", "Mup/s");
    let cells = sweep(w, ladder);
    for c in &cells {
        println!("  {:>8} {:>10.2}", c.quantum, c.mups);
    }
    let best = cells.iter().max_by(|a, b| a.mups.total_cmp(&b.mups)).expect("cells");
    let worst = cells.iter().min_by(|a, b| a.mups.total_cmp(&b.mups)).expect("cells");

    let tuned = run_tuned(w, cfg.clone());
    println!(
        "  {:>8} {:>10.2}  (steady {:.2}, {} policy changes, final quantum {})",
        "tuned", tuned.overall_mups, tuned.steady_mups, tuned.changes, tuned.final_quantum
    );
    let top = ladder.last().copied().unwrap_or(4_096);
    let replayed = replay_trace(w, tuned.trace.clone(), ladder[0], top);
    let bitwise = replayed == tuned.bits;
    println!(
        "  trace replay: {}",
        if bitwise { "snapshots bitwise-identical" } else { "SNAPSHOT MISMATCH" }
    );

    let mut failures = Vec::new();
    let steps = ladder_steps(ladder, tuned.final_quantum, best.quantum);
    if steps > 1 {
        failures.push(format!(
            "final quantum {} is {steps} rungs from the best static cell {}",
            tuned.final_quantum, best.quantum
        ));
    }
    if tuned.steady_mups < 0.8 * best.mups {
        failures.push(format!(
            "steady {:.2} Mup/s under 0.8x the best static cell ({:.2} Mup/s at quantum {})",
            tuned.steady_mups, best.mups, best.quantum
        ));
    }
    if tuned.steady_mups < 2.0 * worst.mups {
        failures.push(format!(
            "steady {:.2} Mup/s under 2x the worst static cell ({:.2} Mup/s at quantum {})",
            tuned.steady_mups, worst.mups, worst.quantum
        ));
    }
    if !bitwise {
        failures.push("trace replay diverged from the tuned run's snapshots".to_string());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}
