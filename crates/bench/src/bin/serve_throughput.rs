//! Serving-layer throughput: micro-batch size × ingest shards × backend.
//!
//! Drives one Zipf update stream (an i32 count table plus an f32 min
//! table, the serving workload's table pair) through an in-process
//! [`LocalClient`] against a fresh [`ServerCore`] per cell, and measures
//! end-to-end ingest→apply throughput. The batch-size axis is the epoch
//! quantum: at quantum 1 every update pays a full kernel dispatch, which
//! is exactly the degenerate case micro-batching exists to amortize — the
//! paper-shaped result is throughput growing with batch size until the
//! in-vector kernel saturates.
//!
//! Emits one JSON document on stdout (checked in as `BENCH_serve.json`)
//! so results can be diffed across machines.
//!
//! Run: `cargo run --release -p invector-bench --bin serve_throughput
//!       [--scale f | --full]`

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use invector_agg::dist::{self, Distribution};
use invector_bench::arg_scale;
use invector_bench::autotune::{self, convergence_config};
use invector_core::BackendChoice;
use invector_serve::{
    LocalClient, OpKind, ServeClient, ServeConfig, Server, ServerCore, TableSpec, TcpClient, Update,
};

/// Epoch quanta swept (updates per micro-batch slice).
const QUANTA: [usize; 4] = [1, 256, 4096, 16384];
/// Ingest shard counts swept.
const SHARDS: [usize; 3] = [1, 4, 16];
/// Client submission batch: how many updates each `submit` call carries.
const CHUNK: usize = 1024;
/// Timed repetitions per cell; the fastest is reported, which filters
/// scheduler interference out of the short (tens of ms) timed sections.
/// Quantum-1 cells run seconds long and amortize interference on their
/// own, so they are timed once.
const REPEATS: usize = 3;
/// Same stream seed the harness serving workload uses.
const SEED: u64 = 0x1b_f2_9d;

struct Cell {
    backend: &'static str,
    shards: usize,
    quantum: usize,
    seconds: f64,
    slices: u64,
    retries: u32,
    /// `invector-obs` JSON snapshot of this cell's service registry,
    /// captured after the drain (the last cell's is embedded in the
    /// result document).
    obs: String,
}

fn main() {
    let scale = arg_scale(1.0);
    let rows = ((100_000.0 * scale) as usize).max(1_000);
    let cardinality = 4_096.min(rows);
    let input = dist::generate(Distribution::Zipf, rows, cardinality, SEED);
    // Two updates per row: one count increment, one min candidate.
    let updates = 2 * rows as u64;

    let mut backends = vec![("portable", BackendChoice::Portable)];
    if invector_simd::native::available() {
        backends.push(("native", BackendChoice::Native));
    }

    let mut cells = Vec::new();
    for &(label, backend) in &backends {
        for &shards in &SHARDS {
            for &quantum in &QUANTA {
                let cell = run_cell(&input, backend, label, shards, quantum);
                eprintln!(
                    "{label:>8} shards={shards:<2} quantum={quantum:<5} \
                     {:>8.2} ms  {:>7.2} Mup/s",
                    cell.seconds * 1e3,
                    updates as f64 / cell.seconds / 1e6,
                );
                cells.push(cell);
            }
        }
    }

    let sweep = connection_sweep(scale);
    let tuning = autotune_rows(rows, cardinality);

    print_json(scale, rows, cardinality, updates, &cells, &sweep, &tuning);
}

/// One row of the autotune comparison: the controller against the best
/// and worst static cells on its own ladder.
struct TuneRow {
    mode: &'static str,
    quantum: usize,
    mups: f64,
    /// Autotuned row only: steady-state (second-half) throughput, policy
    /// changes, and whether the recorded trace replayed bitwise.
    detail: Option<(f64, usize, bool)>,
}

/// Static ladder sweep + tuned run on the same zipf stream the quantum
/// cells use, emitted as autotuned / best-static / worst-static rows.
fn autotune_rows(rows: usize, cardinality: usize) -> Vec<TuneRow> {
    let cfg = convergence_config();
    let ladder = cfg.quantum_ladder.clone();
    let top = ladder.last().copied().unwrap_or(4_096);
    let w = autotune::zipf(rows, cardinality, SEED);

    let cells = autotune::sweep(&w, &ladder);
    let best = cells.iter().max_by(|a, b| a.mups.total_cmp(&b.mups)).expect("cells");
    let worst = cells.iter().min_by(|a, b| a.mups.total_cmp(&b.mups)).expect("cells");
    let tuned = autotune::run_tuned(&w, cfg);
    let bitwise = autotune::replay_trace(&w, tuned.trace.clone(), ladder[0], top) == tuned.bits;
    for (label, q, m) in [
        ("worst_static", worst.quantum, worst.mups),
        ("best_static", best.quantum, best.mups),
        ("autotuned", tuned.final_quantum, tuned.overall_mups),
    ] {
        eprintln!("  autotune {label:<13} quantum={q:<5} {m:>7.2} Mup/s");
    }
    vec![
        TuneRow { mode: "worst_static", quantum: worst.quantum, mups: worst.mups, detail: None },
        TuneRow { mode: "best_static", quantum: best.quantum, mups: best.mups, detail: None },
        TuneRow {
            mode: "autotuned",
            quantum: tuned.final_quantum,
            mups: tuned.overall_mups,
            detail: Some((tuned.steady_mups, tuned.changes, bitwise)),
        },
    ]
}

/// Client counts swept over real loopback TCP through the reactor front
/// end. The per-connection-overhead curve this produces is the headline
/// reactor result: `us_per_update` must stay flat (within 2x) from the
/// low end to the high end.
const CONN_COUNTS: [usize; 5] = [64, 128, 256, 512, 1024];
/// Submission chunk for the connection sweep (updates per round trip).
const CONN_CHUNK: usize = 256;
/// Driver threads that multiplex the sweep's client connections.
const DRIVERS: usize = 8;
/// Slot count for the sweep's table.
const SWEEP_SLOTS: usize = 4_096;

/// Scrambled slot targets, deterministic in seq.
fn update_at(seq: usize) -> Update {
    Update::i32(
        seq as u64,
        ((seq.wrapping_mul(2_654_435_761)) % SWEEP_SLOTS) as u32,
        (seq % 7) as i32 + 1,
    )
}

/// One connection-sweep measurement.
struct SweepPoint {
    conns: usize,
    /// Total updates in the fixed stream.
    total: usize,
    /// Connect + first-submit handshake time for the whole fleet.
    setup_seconds: f64,
    /// Steady-state submit→flush time for the fixed stream.
    seconds: f64,
    /// Snapshot checksum matched the in-process (blocking-path) reference.
    checksum_ok: bool,
}

/// Fixed-total update stream pushed over 64..=1024 loopback connections:
/// the stream is split into contiguous per-connection seq ranges (the
/// reorder buffer merges them), so the folded table — and its checksum —
/// must be bitwise identical to an in-process replay at every fleet size.
fn connection_sweep(scale: f64) -> Vec<SweepPoint> {
    let total = (((131_072.0 * scale) as usize).max(16_384)).next_multiple_of(1_024);
    let config = || {
        let mut c = ServeConfig::new(vec![TableSpec::i32("deg", OpKind::Add, SWEEP_SLOTS)]);
        c.quantum = 4_096;
        c.shards = 4;
        c.queue_capacity = 32_768;
        c.max_connections = 2_048;
        c
    };
    // Blocking-path reference: same stream, seq order, in process.
    let reference_sum = {
        let core = ServerCore::new(config()).expect("sweep config");
        let mut local = LocalClient::new(core);
        let all: Vec<Update> = (0..total).map(update_at).collect();
        local.submit_all(0, &all).expect("reference submit");
        local.flush().expect("reference flush");
        fnv64(&local.snapshot(0).expect("reference snapshot").bits())
    };

    let mut sweep = Vec::new();
    for &conns in &CONN_COUNTS {
        let mut best: Option<SweepPoint> = None;
        for _ in 0..REPEATS {
            let point = sweep_once(config(), conns, total, reference_sum);
            if best.as_ref().is_none_or(|b| point.seconds < b.seconds) {
                best = Some(point);
            }
        }
        let point = best.expect("at least one repeat");
        eprintln!(
            "  sweep conns={conns:<5} setup {:>7.2} ms  stream {:>8.2} ms  \
             {:>6.3} us/update  checksum {}",
            point.setup_seconds * 1e3,
            point.seconds * 1e3,
            point.seconds * 1e6 / total as f64,
            if point.checksum_ok { "ok" } else { "MISMATCH" },
        );
        sweep.push(point);
    }
    sweep
}

/// One timed sweep run: fresh server, `conns` live connections held open
/// across `DRIVERS` threads, contiguous seq ranges per connection.
fn sweep_once(config: ServeConfig, conns: usize, total: usize, reference_sum: u64) -> SweepPoint {
    let server = Server::bind(config, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let per_conn = total / conns;
    let drivers = DRIVERS.min(conns);

    let connected = Arc::new(Barrier::new(drivers + 1));
    let submitted = Arc::new(Barrier::new(drivers + 1));
    let setup_start = Instant::now();
    let handles: Vec<_> = (0..drivers)
        .map(|d| {
            let connected = Arc::clone(&connected);
            let submitted = Arc::clone(&submitted);
            std::thread::spawn(move || {
                let per_driver = conns / drivers;
                let mut clients: Vec<TcpClient> = (0..per_driver)
                    .map(|_| {
                        for _ in 0..200 {
                            if let Ok(c) = TcpClient::connect(addr) {
                                return c;
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        panic!("could not connect to {addr}");
                    })
                    .collect();
                connected.wait();
                // Interleave chunk submission round-robin across this
                // driver's connections so all `conns` sockets are active
                // at once, not drained one after another.
                let chunks_per_conn = per_conn.div_ceil(CONN_CHUNK);
                for round in 0..chunks_per_conn {
                    for (i, client) in clients.iter_mut().enumerate() {
                        let conn = d * per_driver + i;
                        let lo = conn * per_conn + round * CONN_CHUNK;
                        let hi = (lo + CONN_CHUNK).min((conn + 1) * per_conn);
                        let slice: Vec<Update> = (lo..hi).map(update_at).collect();
                        client.submit_all(0, &slice).expect("sweep submit");
                    }
                }
                submitted.wait();
                // Hold every socket open until the coordinator has
                // snapshotted: the server really serves `conns` live
                // connections for the whole timed section.
                submitted.wait();
                drop(clients);
            })
        })
        .collect();

    connected.wait();
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let start = Instant::now();
    submitted.wait();
    let mut coordinator = TcpClient::connect(addr).expect("coordinator connect");
    coordinator.flush().expect("sweep flush");
    let seconds = start.elapsed().as_secs_f64();
    let snap = coordinator.snapshot(0).expect("sweep snapshot");
    let checksum_ok = snap.watermark == total as u64 && fnv64(&snap.bits()) == reference_sum;
    submitted.wait();
    for h in handles {
        h.join().expect("sweep driver");
    }
    server.shutdown();
    server.join();
    SweepPoint { conns, total, setup_seconds, seconds, checksum_ok }
}

/// FNV-1a over snapshot bit patterns: a compact bitwise-equality witness.
fn fnv64(bits: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One swept configuration, best of [`REPEATS`] timed runs (quantum-1
/// cells are timed once; see [`REPEATS`]).
fn run_cell(
    input: &dist::Input,
    backend: BackendChoice,
    label: &'static str,
    shards: usize,
    quantum: usize,
) -> Cell {
    let repeats = if quantum == 1 { 1 } else { REPEATS };
    let mut best: Option<Cell> = None;
    for _ in 0..repeats {
        let cell = run_cell_once(input, backend, label, shards, quantum);
        if best.as_ref().is_none_or(|b| cell.seconds < b.seconds) {
            best = Some(cell);
        }
    }
    best.expect("at least one repeat")
}

/// One timed run: fresh server, full stream, forced drain.
fn run_cell_once(
    input: &dist::Input,
    backend: BackendChoice,
    label: &'static str,
    shards: usize,
    quantum: usize,
) -> Cell {
    let tables = vec![
        TableSpec::i32("counts", OpKind::Add, input.cardinality),
        TableSpec::f32("mins", OpKind::Min, input.cardinality),
    ];
    let mut config = ServeConfig::new(tables);
    config.backend = backend;
    config.shards = shards;
    config.quantum = quantum;
    // Enough queue headroom that backpressure retries measure the apply
    // path, not an artificially starved queue.
    config.queue_capacity = quantum.max(4_096) * 4;
    let core = ServerCore::new(config).expect("config is valid");
    let mut client = LocalClient::new(core.clone());

    let counts: Vec<Update> = input
        .keys
        .iter()
        .enumerate()
        .map(|(seq, &k)| Update::i32(seq as u64, k as u32, 1))
        .collect();
    let mins: Vec<Update> = input
        .keys
        .iter()
        .zip(&input.vals)
        .enumerate()
        .map(|(seq, (&k, &v))| Update::f32(seq as u64, k as u32, v))
        .collect();

    let start = Instant::now();
    let mut retries = 0u32;
    for (chunk_c, chunk_m) in counts.chunks(CHUNK).zip(mins.chunks(CHUNK)) {
        retries += client.submit_all(0, chunk_c).expect("local submit");
        retries += client.submit_all(1, chunk_m).expect("local submit");
    }
    client.flush().expect("local flush");
    let seconds = start.elapsed().as_secs_f64();

    let stats = core.stats_summary();
    let obs = invector_obs::json_snapshot(core.registry());
    Cell { backend: label, shards, quantum, seconds, slices: stats.slices, retries, obs }
}

fn print_json(
    scale: f64,
    rows: usize,
    cardinality: usize,
    updates: u64,
    cells: &[Cell],
    sweep: &[SweepPoint],
    tuning: &[TuneRow],
) {
    // Speedup baseline: quantum 1 on the same backend at the same shard
    // count — the unbatched degenerate case.
    let base = |c: &Cell| {
        cells
            .iter()
            .find(|b| b.backend == c.backend && b.shards == c.shards && b.quantum == 1)
            .map_or(f64::NAN, |b| b.seconds)
    };
    println!("{{");
    println!("  \"experiment\": \"serve_throughput\",");
    println!("  \"scale\": {scale},");
    println!("  \"rows\": {rows},");
    println!("  \"cardinality\": {cardinality},");
    println!("  \"updates\": {updates},");
    println!("  \"distribution\": \"zipf\",");
    println!("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        println!("    {{");
        println!("      \"backend\": \"{}\",", c.backend);
        println!("      \"shards\": {},", c.shards);
        println!("      \"quantum\": {},", c.quantum);
        println!("      \"elapsed_ms\": {:.3},", c.seconds * 1e3);
        println!("      \"mupdates_per_sec\": {:.3},", updates as f64 / c.seconds / 1e6);
        println!("      \"slices\": {},", c.slices);
        println!("      \"reject_retries\": {},", c.retries);
        println!("      \"speedup_vs_quantum1\": {:.3}", base(c) / c.seconds.max(1e-12));
        println!("    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    println!("  ],");
    // Reactor front-end result: a fixed update stream over a growing fleet
    // of live loopback connections. `us_per_update` flat across the sweep
    // means per-connection overhead is constant-bounded — the event-driven
    // front end does not pay per-thread costs per socket.
    println!("  \"connection_sweep\": [");
    for (i, p) in sweep.iter().enumerate() {
        println!("    {{");
        println!("      \"clients\": {},", p.conns);
        println!("      \"stream_updates\": {},", p.total);
        println!("      \"setup_ms\": {:.3},", p.setup_seconds * 1e3);
        println!("      \"elapsed_ms\": {:.3},", p.seconds * 1e3);
        println!("      \"us_per_update\": {:.4},", p.seconds * 1e6 / p.total as f64);
        println!("      \"checksum_matches_blocking_path\": {}", p.checksum_ok);
        println!("    }}{}", if i + 1 < sweep.len() { "," } else { "" });
    }
    println!("  ],");
    // The obs→policy loop closed: the online controller, started at the
    // ladder's worst rung on the same zipf stream, against the best and
    // worst static `(quantum)` cells of its ladder. The acceptance band is
    // steady-state autotuned >= 0.8x best static and >= 2x worst static,
    // with the recorded policy trace replaying to bitwise-identical
    // snapshots.
    println!("  \"autotune\": [");
    for (i, r) in tuning.iter().enumerate() {
        println!("    {{");
        println!("      \"mode\": \"{}\",", r.mode);
        println!("      \"quantum\": {},", r.quantum);
        match r.detail {
            None => println!("      \"mupdates_per_sec\": {:.3}", r.mups),
            Some((steady, changes, bitwise)) => {
                println!("      \"mupdates_per_sec\": {:.3},", r.mups);
                println!("      \"steady_mupdates_per_sec\": {steady:.3},");
                println!("      \"policy_changes\": {changes},");
                println!("      \"trace_replay_bitwise\": {bitwise}");
            }
        }
        println!("    }}{}", if i + 1 < tuning.len() { "," } else { "" });
    }
    println!("  ],");
    // Stats recording rides the sharded invector-obs registry: per-thread
    // relaxed atomics merged on read. The Mutex<ServeStats> that used to
    // sit on the epoch path is gone, so the numbers above include no
    // stats-lock contention; an obs-disabled build must land within noise
    // (the regression budget is ±3% on quantum-4096 native throughput).
    println!(
        "  \"notes\": \"stats recorded via the sharded lock-free obs registry; \
         the former Mutex<ServeStats> epoch-path contention point is removed, \
         so an obs-disabled build must match within ~3%\","
    );
    // The last swept cell's service-registry snapshot (series read zero in
    // obs-disabled builds, but the document shape is stable).
    let obs = cells.last().map_or("{}", |c| c.obs.as_str());
    println!("  \"obs\": {obs},");
    // Cross-sweep engine/SIMD counters from the global registry.
    println!("  \"obs_global\": {}", invector_obs::json_snapshot(invector_obs::Registry::global()));
    println!("}}");
}
