//! Serving-layer throughput: micro-batch size × ingest shards × backend.
//!
//! Drives one Zipf update stream (an i32 count table plus an f32 min
//! table, the serving workload's table pair) through an in-process
//! [`LocalClient`] against a fresh [`ServerCore`] per cell, and measures
//! end-to-end ingest→apply throughput. The batch-size axis is the epoch
//! quantum: at quantum 1 every update pays a full kernel dispatch, which
//! is exactly the degenerate case micro-batching exists to amortize — the
//! paper-shaped result is throughput growing with batch size until the
//! in-vector kernel saturates.
//!
//! Emits one JSON document on stdout (checked in as `BENCH_serve.json`)
//! so results can be diffed across machines.
//!
//! Run: `cargo run --release -p invector-bench --bin serve_throughput
//!       [--scale f | --full]`

use std::time::Instant;

use invector_agg::dist::{self, Distribution};
use invector_bench::arg_scale;
use invector_core::BackendChoice;
use invector_serve::{
    LocalClient, OpKind, ServeClient, ServeConfig, ServerCore, TableSpec, Update,
};

/// Epoch quanta swept (updates per micro-batch slice).
const QUANTA: [usize; 4] = [1, 256, 4096, 16384];
/// Ingest shard counts swept.
const SHARDS: [usize; 3] = [1, 4, 16];
/// Client submission batch: how many updates each `submit` call carries.
const CHUNK: usize = 1024;
/// Timed repetitions per cell; the fastest is reported, which filters
/// scheduler interference out of the short (tens of ms) timed sections.
/// Quantum-1 cells run seconds long and amortize interference on their
/// own, so they are timed once.
const REPEATS: usize = 3;
/// Same stream seed the harness serving workload uses.
const SEED: u64 = 0x1b_f2_9d;

struct Cell {
    backend: &'static str,
    shards: usize,
    quantum: usize,
    seconds: f64,
    slices: u64,
    retries: u32,
    /// `invector-obs` JSON snapshot of this cell's service registry,
    /// captured after the drain (the last cell's is embedded in the
    /// result document).
    obs: String,
}

fn main() {
    let scale = arg_scale(1.0);
    let rows = ((100_000.0 * scale) as usize).max(1_000);
    let cardinality = 4_096.min(rows);
    let input = dist::generate(Distribution::Zipf, rows, cardinality, SEED);
    // Two updates per row: one count increment, one min candidate.
    let updates = 2 * rows as u64;

    let mut backends = vec![("portable", BackendChoice::Portable)];
    if invector_simd::native::available() {
        backends.push(("native", BackendChoice::Native));
    }

    let mut cells = Vec::new();
    for &(label, backend) in &backends {
        for &shards in &SHARDS {
            for &quantum in &QUANTA {
                let cell = run_cell(&input, backend, label, shards, quantum);
                eprintln!(
                    "{label:>8} shards={shards:<2} quantum={quantum:<5} \
                     {:>8.2} ms  {:>7.2} Mup/s",
                    cell.seconds * 1e3,
                    updates as f64 / cell.seconds / 1e6,
                );
                cells.push(cell);
            }
        }
    }

    print_json(scale, rows, cardinality, updates, &cells);
}

/// One swept configuration, best of [`REPEATS`] timed runs (quantum-1
/// cells are timed once; see [`REPEATS`]).
fn run_cell(
    input: &dist::Input,
    backend: BackendChoice,
    label: &'static str,
    shards: usize,
    quantum: usize,
) -> Cell {
    let repeats = if quantum == 1 { 1 } else { REPEATS };
    let mut best: Option<Cell> = None;
    for _ in 0..repeats {
        let cell = run_cell_once(input, backend, label, shards, quantum);
        if best.as_ref().is_none_or(|b| cell.seconds < b.seconds) {
            best = Some(cell);
        }
    }
    best.expect("at least one repeat")
}

/// One timed run: fresh server, full stream, forced drain.
fn run_cell_once(
    input: &dist::Input,
    backend: BackendChoice,
    label: &'static str,
    shards: usize,
    quantum: usize,
) -> Cell {
    let tables = vec![
        TableSpec::i32("counts", OpKind::Add, input.cardinality),
        TableSpec::f32("mins", OpKind::Min, input.cardinality),
    ];
    let mut config = ServeConfig::new(tables);
    config.backend = backend;
    config.shards = shards;
    config.quantum = quantum;
    // Enough queue headroom that backpressure retries measure the apply
    // path, not an artificially starved queue.
    config.queue_capacity = quantum.max(4_096) * 4;
    let core = ServerCore::new(config).expect("config is valid");
    let mut client = LocalClient::new(core.clone());

    let counts: Vec<Update> = input
        .keys
        .iter()
        .enumerate()
        .map(|(seq, &k)| Update::i32(seq as u64, k as u32, 1))
        .collect();
    let mins: Vec<Update> = input
        .keys
        .iter()
        .zip(&input.vals)
        .enumerate()
        .map(|(seq, (&k, &v))| Update::f32(seq as u64, k as u32, v))
        .collect();

    let start = Instant::now();
    let mut retries = 0u32;
    for (chunk_c, chunk_m) in counts.chunks(CHUNK).zip(mins.chunks(CHUNK)) {
        retries += client.submit_all(0, chunk_c).expect("local submit");
        retries += client.submit_all(1, chunk_m).expect("local submit");
    }
    client.flush().expect("local flush");
    let seconds = start.elapsed().as_secs_f64();

    let stats = core.stats_summary();
    let obs = invector_obs::json_snapshot(core.registry());
    Cell { backend: label, shards, quantum, seconds, slices: stats.slices, retries, obs }
}

fn print_json(scale: f64, rows: usize, cardinality: usize, updates: u64, cells: &[Cell]) {
    // Speedup baseline: quantum 1 on the same backend at the same shard
    // count — the unbatched degenerate case.
    let base = |c: &Cell| {
        cells
            .iter()
            .find(|b| b.backend == c.backend && b.shards == c.shards && b.quantum == 1)
            .map_or(f64::NAN, |b| b.seconds)
    };
    println!("{{");
    println!("  \"experiment\": \"serve_throughput\",");
    println!("  \"scale\": {scale},");
    println!("  \"rows\": {rows},");
    println!("  \"cardinality\": {cardinality},");
    println!("  \"updates\": {updates},");
    println!("  \"distribution\": \"zipf\",");
    println!("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        println!("    {{");
        println!("      \"backend\": \"{}\",", c.backend);
        println!("      \"shards\": {},", c.shards);
        println!("      \"quantum\": {},", c.quantum);
        println!("      \"elapsed_ms\": {:.3},", c.seconds * 1e3);
        println!("      \"mupdates_per_sec\": {:.3},", updates as f64 / c.seconds / 1e6);
        println!("      \"slices\": {},", c.slices);
        println!("      \"reject_retries\": {},", c.retries);
        println!("      \"speedup_vs_quantum1\": {:.3}", base(c) / c.seconds.max(1e-12));
        println!("    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    println!("  ],");
    // Stats recording rides the sharded invector-obs registry: per-thread
    // relaxed atomics merged on read. The Mutex<ServeStats> that used to
    // sit on the epoch path is gone, so the numbers above include no
    // stats-lock contention; an obs-disabled build must land within noise
    // (the regression budget is ±3% on quantum-4096 native throughput).
    println!(
        "  \"notes\": \"stats recorded via the sharded lock-free obs registry; \
         the former Mutex<ServeStats> epoch-path contention point is removed, \
         so an obs-disabled build must match within ~3%\","
    );
    // The last swept cell's service-registry snapshot (series read zero in
    // obs-disabled builds, but the document shape is stable).
    let obs = cells.last().map_or("{}", |c| c.obs.as_str());
    println!("  \"obs\": {obs},");
    // Cross-sweep engine/SIMD counters from the global registry.
    println!("  \"obs_global\": {}", invector_obs::json_snapshot(invector_obs::Registry::global()));
    println!("}}");
}
