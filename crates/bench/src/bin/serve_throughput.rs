//! Serving-layer throughput: micro-batch size × ingest shards × backend.
//!
//! Drives one Zipf update stream (an i32 count table plus an f32 min
//! table, the serving workload's table pair) through an in-process
//! [`LocalClient`] against a fresh [`ServerCore`] per cell, and measures
//! end-to-end ingest→apply throughput. The batch-size axis is the epoch
//! quantum: at quantum 1 every update pays a full kernel dispatch, which
//! is exactly the degenerate case micro-batching exists to amortize — the
//! paper-shaped result is throughput growing with batch size until the
//! in-vector kernel saturates.
//!
//! Emits one JSON document on stdout (checked in as `BENCH_serve.json`)
//! so results can be diffed across machines.
//!
//! Run: `cargo run --release -p invector-bench --bin serve_throughput
//!       [--scale f | --full]`

use std::time::Instant;

use invector_agg::dist::{self, Distribution};
use invector_bench::arg_scale;
use invector_core::BackendChoice;
use invector_serve::{
    LocalClient, OpKind, ServeClient, ServeConfig, ServerCore, TableSpec, Update,
};

/// Epoch quanta swept (updates per micro-batch slice).
const QUANTA: [usize; 4] = [1, 256, 4096, 16384];
/// Ingest shard counts swept.
const SHARDS: [usize; 3] = [1, 4, 16];
/// Client submission batch: how many updates each `submit` call carries.
const CHUNK: usize = 1024;
/// Same stream seed the harness serving workload uses.
const SEED: u64 = 0x1b_f2_9d;

struct Cell {
    backend: &'static str,
    shards: usize,
    quantum: usize,
    seconds: f64,
    slices: u64,
    retries: u32,
}

fn main() {
    let scale = arg_scale(1.0);
    let rows = ((100_000.0 * scale) as usize).max(1_000);
    let cardinality = 4_096.min(rows);
    let input = dist::generate(Distribution::Zipf, rows, cardinality, SEED);
    // Two updates per row: one count increment, one min candidate.
    let updates = 2 * rows as u64;

    let mut backends = vec![("portable", BackendChoice::Portable)];
    if invector_simd::native::available() {
        backends.push(("native", BackendChoice::Native));
    }

    let mut cells = Vec::new();
    for &(label, backend) in &backends {
        for &shards in &SHARDS {
            for &quantum in &QUANTA {
                let cell = run_cell(&input, backend, label, shards, quantum);
                eprintln!(
                    "{label:>8} shards={shards:<2} quantum={quantum:<5} \
                     {:>8.2} ms  {:>7.2} Mup/s",
                    cell.seconds * 1e3,
                    updates as f64 / cell.seconds / 1e6,
                );
                cells.push(cell);
            }
        }
    }

    print_json(scale, rows, cardinality, updates, &cells);
}

/// One swept configuration: fresh server, full stream, forced drain.
fn run_cell(
    input: &dist::Input,
    backend: BackendChoice,
    label: &'static str,
    shards: usize,
    quantum: usize,
) -> Cell {
    let tables = vec![
        TableSpec::i32("counts", OpKind::Add, input.cardinality),
        TableSpec::f32("mins", OpKind::Min, input.cardinality),
    ];
    let mut config = ServeConfig::new(tables);
    config.backend = backend;
    config.shards = shards;
    config.quantum = quantum;
    // Enough queue headroom that backpressure retries measure the apply
    // path, not an artificially starved queue.
    config.queue_capacity = quantum.max(4_096) * 4;
    let core = ServerCore::new(config).expect("config is valid");
    let mut client = LocalClient::new(core.clone());

    let counts: Vec<Update> = input
        .keys
        .iter()
        .enumerate()
        .map(|(seq, &k)| Update::i32(seq as u64, k as u32, 1))
        .collect();
    let mins: Vec<Update> = input
        .keys
        .iter()
        .zip(&input.vals)
        .enumerate()
        .map(|(seq, (&k, &v))| Update::f32(seq as u64, k as u32, v))
        .collect();

    let start = Instant::now();
    let mut retries = 0u32;
    for (chunk_c, chunk_m) in counts.chunks(CHUNK).zip(mins.chunks(CHUNK)) {
        retries += client.submit_all(0, chunk_c).expect("local submit");
        retries += client.submit_all(1, chunk_m).expect("local submit");
    }
    client.flush().expect("local flush");
    let seconds = start.elapsed().as_secs_f64();

    let stats = core.stats_summary();
    Cell { backend: label, shards, quantum, seconds, slices: stats.slices, retries }
}

fn print_json(scale: f64, rows: usize, cardinality: usize, updates: u64, cells: &[Cell]) {
    // Speedup baseline: quantum 1 on the same backend at the same shard
    // count — the unbatched degenerate case.
    let base = |c: &Cell| {
        cells
            .iter()
            .find(|b| b.backend == c.backend && b.shards == c.shards && b.quantum == 1)
            .map_or(f64::NAN, |b| b.seconds)
    };
    println!("{{");
    println!("  \"experiment\": \"serve_throughput\",");
    println!("  \"scale\": {scale},");
    println!("  \"rows\": {rows},");
    println!("  \"cardinality\": {cardinality},");
    println!("  \"updates\": {updates},");
    println!("  \"distribution\": \"zipf\",");
    println!("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        println!("    {{");
        println!("      \"backend\": \"{}\",", c.backend);
        println!("      \"shards\": {},", c.shards);
        println!("      \"quantum\": {},", c.quantum);
        println!("      \"elapsed_ms\": {:.3},", c.seconds * 1e3);
        println!("      \"mupdates_per_sec\": {:.3},", updates as f64 / c.seconds / 1e6);
        println!("      \"slices\": {},", c.slices);
        println!("      \"reject_retries\": {},", c.retries);
        println!("      \"speedup_vs_quantum1\": {:.3}", base(c) / c.seconds.max(1e-12));
        println!("    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
