//! MIMD×SIMD scaling: speedup of the thread-pooled execution engine over
//! the single-threaded driver, for every registered application with an
//! engine path, per variant.
//!
//! Rows come from the harness registry — any application added there shows
//! up here with no bench changes. Emits one JSON document on stdout —
//! `threads → speedup` series suitable for plotting — so results can be
//! diffed across machines.
//!
//! Run: `cargo run --release -p invector-bench --bin parallel_scaling
//!       [--scale f | --full]`

use std::time::Duration;

use invector_bench::arg_scale;
use invector_harness::{registry, RunSpec};
use invector_kernels::{ExecPolicy, Variant};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The engine's per-worker strategies: the scalar baseline and the
/// in-vector reduction every vectorized variant maps onto.
const VARIANTS: [Variant; 2] = [Variant::Serial, Variant::Invec];

struct Series {
    app: &'static str,
    input: String,
    label: &'static str,
    /// `(threads, seconds)` per sweep point.
    points: Vec<(usize, f64)>,
}

fn main() {
    let scale = arg_scale(0.1);
    // The small preset at the requested dataset scale; a modest iteration
    // budget keeps the 8-thread sweep per app tractable.
    let spec = RunSpec { scale, iters: 20, ..RunSpec::small() };
    let mut series: Vec<Series> = Vec::new();

    for app in registry::all() {
        if !app.supports_threads() {
            continue;
        }
        let workload = match app.prepare(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping {}: {e}", app.name());
                continue;
            }
        };
        for variant in VARIANTS {
            if !app.variants().contains(&variant) {
                continue;
            }
            let mut points = Vec::new();
            for threads in THREADS {
                let policy = ExecPolicy::with_threads(threads);
                let elapsed = best_of(3, || workload.run(variant, &policy).timings.compute);
                points.push((threads, elapsed));
            }
            series.push(Series {
                app: app.name(),
                input: workload.describe(),
                label: variant.label(app.tiling()),
                points,
            });
        }
    }

    print_json(scale, &series);
}

/// Best (minimum) measured compute duration of `runs` attempts, in seconds.
fn best_of(runs: usize, mut f: impl FnMut() -> Duration) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        best = best.min(f().as_secs_f64());
    }
    best
}

fn print_json(scale: f64, series: &[Series]) {
    println!("{{");
    println!("  \"experiment\": \"parallel_scaling\",");
    println!("  \"scale\": {scale},");
    println!("  \"series\": [");
    for (i, s) in series.iter().enumerate() {
        let base = s.points.first().map_or(f64::NAN, |&(_, t)| t);
        println!("    {{");
        println!("      \"app\": \"{}\",", s.app);
        println!("      \"input\": \"{}\",", s.input);
        println!("      \"variant\": \"{}\",", s.label);
        let threads: Vec<String> = s.points.iter().map(|&(t, _)| t.to_string()).collect();
        println!("      \"threads\": [{}],", threads.join(", "));
        let speedups: Vec<String> =
            s.points.iter().map(|&(_, t)| format!("{:.3}", base / t.max(1e-12))).collect();
        println!("      \"speedup\": [{}]", speedups.join(", "));
        println!("    }}{}", if i + 1 < series.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
