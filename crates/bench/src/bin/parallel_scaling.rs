//! MIMD×SIMD scaling: speedup of the thread-pooled execution engine over
//! the single-threaded driver, for the PageRank edge phase (power-law and
//! uniform graphs) and the Moldyn force phase, per variant.
//!
//! Emits one JSON document on stdout — `threads → speedup` series suitable
//! for plotting — so results can be diffed across machines.
//!
//! Run: `cargo run --release -p invector-bench --bin parallel_scaling
//!       [--scale f | --full]`

use std::time::{Duration, Instant};

use invector_bench::arg_scale;
use invector_graph::gen::{rmat, uniform, RmatParams};
use invector_graph::EdgeList;
use invector_kernels::{pagerank, ExecPolicy, PageRankConfig, Variant};
use invector_moldyn::input::input_16_3_0r;
use invector_moldyn::sim::simulate_with_policy;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const VARIANTS: [Variant; 2] = [Variant::Serial, Variant::Invec];

struct Series {
    workload: &'static str,
    generator: &'static str,
    variant: Variant,
    /// `(threads, seconds)` per sweep point.
    points: Vec<(usize, f64)>,
}

fn main() {
    let scale = arg_scale(0.1);
    let mut series: Vec<Series> = Vec::new();

    // PageRank edge phase on the two generator families of the paper's
    // dataset table: skewed (RMAT, power-law degrees) and uniform.
    let nv = ((1 << 17) as f64 * scale) as usize + 16;
    let ne = nv * 16;
    let graphs: [(&str, EdgeList); 2] = [
        ("power-law", rmat(nv.next_power_of_two(), ne, RmatParams::SOCIAL, 42)),
        ("uniform", uniform(nv, ne, 42)),
    ];
    for (generator, graph) in &graphs {
        for variant in VARIANTS {
            let mut points = Vec::new();
            for threads in THREADS {
                let config = PageRankConfig {
                    exec: ExecPolicy::with_threads(threads),
                    ..PageRankConfig::default()
                };
                let elapsed = best_of(3, || {
                    let r = pagerank(graph, variant, &config);
                    r.timings.compute
                });
                points.push((threads, elapsed));
            }
            series.push(Series { workload: "pagerank", generator, variant, points });
        }
    }

    // Moldyn force phase (pair streams are locality-windowed rather than
    // generator-shaped; one input suffices for the sweep).
    let molecules = input_16_3_0r(scale.min(0.02));
    for variant in VARIANTS {
        let mut points = Vec::new();
        for threads in THREADS {
            let policy = ExecPolicy::with_threads(threads);
            let elapsed = best_of(3, || {
                let r = simulate_with_policy(&molecules, variant, 10, &policy);
                r.timings.compute
            });
            points.push((threads, elapsed));
        }
        series.push(Series { workload: "moldyn", generator: "16-3.0r", variant, points });
    }

    print_json(scale, &series);
}

/// Best (minimum) measured duration of `runs` attempts, in seconds.
fn best_of(runs: usize, mut f: impl FnMut() -> Duration) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        let d = f();
        let _ = t.elapsed();
        best = best.min(d.as_secs_f64());
    }
    best
}

fn print_json(scale: f64, series: &[Series]) {
    println!("{{");
    println!("  \"experiment\": \"parallel_scaling\",");
    println!("  \"scale\": {scale},");
    println!("  \"series\": [");
    for (i, s) in series.iter().enumerate() {
        let base = s.points.first().map_or(f64::NAN, |&(_, t)| t);
        println!("    {{");
        println!("      \"workload\": \"{}\",", s.workload);
        println!("      \"generator\": \"{}\",", s.generator);
        println!("      \"variant\": \"{}\",", s.variant.tiled_label());
        let threads: Vec<String> = s.points.iter().map(|&(t, _)| t.to_string()).collect();
        println!("      \"threads\": [{}],", threads.join(", "));
        let speedups: Vec<String> =
            s.points.iter().map(|&(_, t)| format!("{:.3}", base / t.max(1e-12))).collect();
        println!("      \"speedup\": [{}]", speedups.join(", "));
        println!("    }}{}", if i + 1 < series.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
