//! Figure 10: overall performance of different versions of wave-frontier
//! SSWP (Single-Source Widest Path) on different inputs.
//!
//! Run: `cargo run --release -p invector-bench --bin fig10_sswp
//!       [--scale f | --full]`

use invector_bench::{arg_scale, wavefront_figure};
use invector_kernels::{sswp, sswp_reuse};

fn main() {
    let scale = arg_scale(0.02);
    wavefront_figure(
        "Figure 10",
        "SSWP",
        scale,
        |g, variant| sswp(g, 0, variant, 10_000),
        |g| sswp_reuse(g, 0, 10_000),
    );
}
