//! Figure 11: overall performance of different versions of WCC (Weakly
//! Connected Components) on different inputs.
//!
//! Run: `cargo run --release -p invector-bench --bin fig11_wcc
//!       [--scale f | --full]`

use invector_bench::{arg_scale, wavefront_figure};
use invector_kernels::{wcc, wcc_reuse};

fn main() {
    let scale = arg_scale(0.02);
    wavefront_figure(
        "Figure 11",
        "WCC",
        scale,
        |g, variant| wcc(g, variant, 10_000),
        |g| wcc_reuse(g, 10_000),
    );
}
