//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation. Since the SIMD engine is emulated, each harness
//! reports **two** measurements:
//!
//! * wall time — directly comparable *among the vectorized variants*
//!   (they share the emulation overhead), and for the inspector phases
//!   (tiling/grouping), which are native scalar code everywhere;
//! * **modeled instructions** — the emulated-SIMD instruction count (with a
//!   documented scalar cost model for the serial baselines), the measure
//!   used for serial-vs-SIMD speedup shapes, where wall time would unfairly
//!   compare native scalar code against an interpreter.

use std::time::Duration;

pub mod autotune;

/// Reads the experiment scale from `--scale <f>` / `--full` CLI arguments
/// or the `INVECTOR_SCALE` environment variable, defaulting to `default`.
///
/// `--full` selects scale 1.0 (the paper's dataset sizes).
pub fn arg_scale(default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--full") {
        return 1.0;
    }
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
            return v;
        }
    }
    if let Ok(v) = std::env::var("INVECTOR_SCALE") {
        if let Ok(v) = v.parse::<f64>() {
            return v;
        }
    }
    default
}

/// Formats a duration as engineering-friendly milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats a big count with thousands separators.
pub fn human(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// `a / b` guarded against division by zero.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::NAN
    } else {
        a / b
    }
}

/// Reads an optional `--csv <path>` argument: when present, harnesses also
/// write their data points as CSV for external plotting.
pub fn arg_csv() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1)).map(Into::into)
}

/// A minimal CSV accumulator (quoted-field-free data only: numbers and
/// simple labels).
#[derive(Debug, Clone)]
pub struct CsvWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvWriter {
    /// Creates a writer with the given column names.
    pub fn new(header: &[&str]) -> Self {
        CsvWriter { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header, or a field
    /// contains a comma/newline (this writer does not quote).
    pub fn row(&mut self, fields: &[String]) {
        assert_eq!(fields.len(), self.header.len(), "row width mismatch");
        assert!(
            fields.iter().all(|f| !f.contains(',') && !f.contains('\n')),
            "fields must not contain commas or newlines"
        );
        self.rows.push(fields.to_vec());
    }

    /// Number of data rows accumulated.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were accumulated.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Prints the standard experiment header.
pub fn header(experiment: &str, description: &str, scale: f64) {
    println!("================================================================");
    println!("{experiment}: {description}");
    println!("scale {scale} of the paper's dataset sizes (use --full for 1.0)");
    println!("================================================================");
}

/// Shared driver for the wave-frontier figures (9, 10, 11): runs every
/// variant of `app` on all three graph datasets and prints the paper's
/// breakdown (grouping time, compute time, iterations, modeled
/// instructions, SIMD utilization).
pub fn wavefront_figure<T: PartialEq + std::fmt::Debug>(
    figure: &str,
    app: &str,
    scale: f64,
    runner: impl Fn(
        &invector_graph::EdgeList,
        invector_kernels::Variant,
    ) -> invector_kernels::RunResult<T>,
    reuse_runner: impl Fn(&invector_graph::EdgeList) -> invector_kernels::RunResult<T>,
) {
    use invector_kernels::Variant;
    header(
        figure,
        &format!("wave-frontier {app}, 5 versions x 3 graphs (log2-scale in paper)"),
        scale,
    );
    for dataset in invector_graph::datasets::all(scale) {
        println!(
            "\n--- {} ({} vertices, {} edges) ---",
            dataset.name,
            human(dataset.graph.num_vertices() as u64),
            human(dataset.graph.num_edges() as u64)
        );
        println!(
            "{:<24} {:>10} {:>11} {:>7} {:>15} {:>10}",
            "version", "group(ms)", "compute(ms)", "iters", "model(Minstr)", "simd_util"
        );
        let mut serial_instr = 0u64;
        let mut mask_instr = 0u64;
        let mut invec_instr = 0u64;
        let mut reference: Option<Vec<T>> = None;
        for variant in Variant::ALL {
            let r = runner(&dataset.graph, variant);
            match variant {
                Variant::Serial => serial_instr = r.instructions,
                Variant::Masked => mask_instr = r.instructions,
                Variant::Invec => invec_instr = r.instructions,
                _ => {}
            }
            let util = r
                .utilization
                .map(|u| format!("{:.2}%", u.ratio() * 100.0))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<24} {:>10} {:>11} {:>7} {:>15.1} {:>10}",
                variant.frontier_label(),
                ms(r.timings.grouping),
                ms(r.timings.compute),
                r.iterations,
                r.instructions as f64 / 1e6,
                util
            );
            match &reference {
                None => reference = Some(r.values),
                Some(expect) => assert_eq!(&r.values, expect, "{variant} diverged"),
            }
        }
        // The reuse realization of grouping (Jiang et al. [11]) — the
        // technique the paper's nontiling_and_grouping bars measure.
        let r = reuse_runner(&dataset.graph);
        println!(
            "{:<24} {:>10} {:>11} {:>7} {:>15.1} {:>10}",
            "grouping(reuse)",
            ms(r.timings.grouping),
            ms(r.timings.compute),
            r.iterations,
            r.instructions as f64 / 1e6,
            "-"
        );
        assert_eq!(Some(&r.values), reference.as_ref(), "reuse diverged");
        println!(
            "modeled speedups: invec vs serial {:.2}x, invec vs mask {:.2}x",
            ratio(serial_instr as f64, invec_instr as f64),
            ratio(mask_instr as f64, invec_instr as f64)
        );
    }
    println!(
        "\npaper shape: masking at/below serial (poor utilization); per-iteration grouping \
         overhead catastrophic; invec the only approach with consistent SIMD speedups"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_inserts_separators() {
        assert_eq!(human(1), "1");
        assert_eq!(human(1234), "1,234");
        assert_eq!(human(1_234_567), "1,234,567");
    }

    #[test]
    fn ratio_handles_zero() {
        assert!(ratio(1.0, 0.0).is_nan());
        assert_eq!(ratio(6.0, 2.0), 3.0);
    }

    #[test]
    fn ms_formats_milliseconds() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }

    #[test]
    fn csv_writer_renders_header_and_rows() {
        let mut w = CsvWriter::new(&["a", "b"]);
        assert!(w.is_empty());
        w.row(&["1".into(), "x".into()]);
        w.row(&["2".into(), "y".into()]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.to_csv(), "a,b\n1,x\n2,y\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn csv_writer_rejects_ragged_rows() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(&["1".into()]);
    }

    #[test]
    #[should_panic(expected = "must not contain")]
    fn csv_writer_rejects_commas() {
        let mut w = CsvWriter::new(&["a"]);
        w.row(&["1,2".into()]);
    }
}
