//! Durability and replication for streamkit stream tables: the state-in-slots
//! design means the WAL, checkpoint, seal, and follower machinery see a graph
//! or window table as just another slot array — these tests prove that
//! composition actually holds under crashes and replication.
//!
//! 1. **Kill-point recovery.** For any edge-churn + window stream and any
//!    kill point, a server restarted over the WAL reconstructs every stream
//!    table bitwise identical to an uninterrupted run at the recovered
//!    watermark — incremental engine state included, because the engines
//!    rebuild their caches from the recovered slots.
//! 2. **Follower convergence.** A follower tailing a leader that serves
//!    graph + window tables verifies every epoch seal and converges bitwise,
//!    including ring buckets, retraction payloads, and adjacency bitmaps.

use std::path::PathBuf;

use proptest::prelude::*;
use rand::{Rng, SeedableRng, SmallRng};

use invector_serve::{
    FollowStatus, Follower, LocalClient, OpKind, ServeClient, ServeConfig, Server, ServerCore,
    SyncPolicy, TableSpec, TcpClient, Update, WalOptions,
};

/// Graph-table vertex count. Small enough that proptest churn visits the
/// same edges repeatedly (so deletes hit live edges), big enough for
/// multi-vertex components and non-trivial rank propagation.
const VERTICES: u32 = 10;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("invector-serve-streamkit-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One of every stream-table kind: delta PageRank, incremental WCC, a
/// count-based add window, and a watermark-based max window.
fn tables() -> Vec<TableSpec> {
    vec![
        TableSpec::pagerank("ranks", VERTICES, 3),
        TableSpec::wcc("components", VERTICES),
        TableSpec::window("sums", OpKind::Add, 5, 3, 4, false),
        TableSpec::window("maxs", OpKind::Max, 4, 3, 2, true),
    ]
}

/// Per-table update streams: edge churn for the graph tables (events travel
/// as the update records `EdgeOps` would log), data + watermark events for
/// the windows.
fn generate_streams(rng: &mut SmallRng, len: usize) -> Vec<Vec<Update>> {
    let mut streams = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut watermark = 0u32;
    for seq in 0..len as u64 {
        for t in [0usize, 1] {
            let src = rng.gen_range(0..VERTICES);
            let dst = rng.gen_range(0..VERTICES);
            let (idx, bits) = invector_streamkit::edge_event(src, dst, rng.gen_bool(0.7));
            streams[t].push(Update { seq, idx, bits });
        }
        let (idx, bits) =
            invector_streamkit::window_data(rng.gen_range(0..5), rng.gen_range(-99..99));
        streams[2].push(Update { seq, idx, bits });
        let (idx, bits) = if rng.gen_bool(0.1) {
            watermark += rng.gen_range(1..3);
            invector_streamkit::window_advance(4, watermark)
        } else {
            invector_streamkit::window_data(rng.gen_range(0..4), rng.gen_range(-99..99))
        };
        streams[3].push(Update { seq, idx, bits });
    }
    streams
}

fn config_with_wal(dir: &PathBuf, quantum: usize) -> ServeConfig {
    let mut config = ServeConfig::new(tables());
    config.quantum = quantum;
    let mut wal = WalOptions::new(dir);
    wal.sync = SyncPolicy::Os; // tests simulate process death, not power loss
    wal.checkpoint_epochs = 0;
    wal.checkpoint_bytes = 0;
    config.wal = Some(wal);
    config
}

/// Uninterrupted no-WAL reference at the given per-table watermarks — valid
/// for stream tables for the same reason as flat ones: batch cuts are a
/// pure function of stream content and quantum, and the engines are
/// deterministic functions of the applied event prefix.
fn reference_at(streams: &[Vec<Update>], quantum: usize, watermarks: &[u64]) -> Vec<Vec<u32>> {
    let mut config = ServeConfig::new(tables());
    config.quantum = quantum;
    let core = ServerCore::new(config).expect("reference core");
    let mut client = LocalClient::new(core);
    for (t, stream) in streams.iter().enumerate() {
        client.submit_all(t as u16, &stream[..watermarks[t] as usize]).expect("submit");
    }
    client.flush().expect("flush");
    (0..streams.len()).map(|t| client.snapshot(t as u16).expect("snapshot").bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any churn stream, any kill point: the restarted server's stream
    /// tables — value regions, adjacency bitmaps, bucket rings, retraction
    /// payloads, all of it — are bitwise identical to an uninterrupted run
    /// at the recovered watermark.
    #[test]
    fn stream_tables_recover_bitwise_from_any_kill_point(
        seed in any::<u64>(),
        len in 1usize..250,
        quantum_pow in 2u32..5,
        kill_after in 0usize..48,
    ) {
        let quantum = 1usize << quantum_pow;
        let mut rng = SmallRng::seed_from_u64(seed);
        let streams = generate_streams(&mut rng, len);
        let dir = temp_dir("kill");

        {
            let core = ServerCore::new(config_with_wal(&dir, quantum)).expect("core");
            let mut client = LocalClient::new(core.clone());
            let mut steps = 0usize;
            'ingest: for (t, stream) in streams.iter().enumerate() {
                for chunk in stream.chunks(11) {
                    client.submit_all(t as u16, chunk).expect("submit");
                    if rng.gen_bool(0.4) {
                        core.tick(false);
                    }
                    steps += 1;
                    if steps >= kill_after {
                        break 'ingest;
                    }
                }
            }
            core.tick(false);
            // Drop without flush/shutdown: the crash.
        }

        let recovered = ServerCore::new(config_with_wal(&dir, quantum)).expect("recovery");
        let watermarks: Vec<u64> = (0..streams.len())
            .map(|t| recovered.snapshot(t as u16).expect("snapshot").watermark)
            .collect();
        for wm in &watermarks {
            prop_assert_eq!(wm % quantum as u64, 0, "non-drain cuts are whole quanta");
        }
        let expect = reference_at(&streams, quantum, &watermarks);
        for (t, want) in expect.iter().enumerate() {
            let got = recovered.snapshot(t as u16).expect("snapshot").bits();
            prop_assert_eq!(&got, want, "stream table {} diverged after recovery", t);
        }

        // The recovered engines must also be *live*, not just display the
        // right bits: finish the streams on the recovered core and demand
        // the full-stream reference state.
        let mut client = LocalClient::new(recovered);
        for (t, stream) in streams.iter().enumerate() {
            client.submit_all(t as u16, &stream[watermarks[t] as usize..]).expect("resume");
        }
        client.flush().expect("flush");
        let full: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
        let expect = reference_at(&streams, quantum, &full);
        for (t, want) in expect.iter().enumerate() {
            let got = client.snapshot(t as u16).expect("snapshot").bits();
            prop_assert_eq!(&got, want, "stream table {} diverged after resuming", t);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Leader/follower smoke over a streamkit workload: the follower bootstraps
/// from a chunked snapshot (engine caches rebuilt from installed slots),
/// tails epochs of edge churn and window expiry with per-epoch seal
/// verification, and converges bitwise on every stream table.
#[test]
fn follower_converges_bitwise_on_a_streamkit_workload() {
    let quantum = 8usize;
    let dir = temp_dir("follow");
    let mut config = config_with_wal(&dir, quantum);
    // Cross at least one checkpoint reset so the follower re-bootstraps —
    // and therefore re-runs Engine::rebuild — mid-workload.
    if let Some(wal) = config.wal.as_mut() {
        wal.checkpoint_epochs = 16;
    }
    let server = Server::bind(config, "127.0.0.1:0").expect("bind leader");
    let addr = server.local_addr().to_string();

    let follower = Follower::start(&addr, ServeConfig::new(Vec::new())).expect("follower");

    const EPOCHS: usize = 60;
    let mut ingest = TcpClient::connect(&addr).expect("ingest client");
    let mut rng = SmallRng::seed_from_u64(0x57E4);
    let mut full_streams: [Vec<Update>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for epoch in 0..EPOCHS {
        let streams = generate_streams(&mut rng, quantum);
        for (t, mut stream) in streams.into_iter().enumerate() {
            for (i, u) in stream.iter_mut().enumerate() {
                u.seq = (epoch * quantum + i) as u64;
            }
            ingest.submit_all(t as u16, &stream).expect("submit");
            full_streams[t].extend(stream);
        }
        ingest.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    let target = (EPOCHS * quantum) as u64;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let caught_up = (0..4u16)
            .all(|t| follower.core().snapshot(t).map(|s| s.watermark == target).unwrap_or(false));
        if caught_up {
            break;
        }
        if let FollowStatus::Diverged(m) = follower.status() {
            panic!("follower diverged: {m}");
        }
        assert!(std::time::Instant::now() < deadline, "follower failed to catch up");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    for t in 0..4u16 {
        let leader = ingest.snapshot(t).expect("leader snapshot");
        let follow = follower.core().snapshot(t).expect("follower snapshot");
        assert_eq!(leader.watermark, follow.watermark);
        assert_eq!(leader.checksum, follow.checksum, "table {t} checksum differs");
        assert_eq!(leader.bits(), follow.bits(), "table {t} bits differ");
    }
    assert!(matches!(follower.status(), FollowStatus::Tailing));

    // The follower's engines answer queries over the replicated state: its
    // current window aggregate and top-k agree with the leader's.
    let leader_window = ingest.window_query(2, u64::MAX).expect("leader window");
    let follow_window = follower.core().window_query(2, u64::MAX).expect("follower window");
    assert_eq!(leader_window.values, follow_window.values);
    assert_eq!(leader_window.bucket, follow_window.bucket);
    let leader_top = ingest.top_k(0, 3).expect("leader top-k");
    let follow_top = follower.core().top_k(0, 3).expect("follower top-k");
    assert_eq!(leader_top.entries, follow_top.entries);

    // The workload must actually have exercised expiry/retraction, or the
    // smoke proves less than it claims.
    assert!(
        follow_window.expired > 0 || {
            let timed = follower.core().window_query(3, u64::MAX).expect("timed window");
            timed.expired > 0
        },
        "no bucket ever expired — widen the stream"
    );

    follower.stop();
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
