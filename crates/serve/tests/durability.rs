//! Durability and replication properties:
//!
//! 1. **Crash recovery.** For any admitted stream and any kill point, a
//!    server restarted over the WAL directory reconstructs tables bitwise
//!    identical to an uninterrupted run at the same watermark — the
//!    determinism contract extended through a crash.
//! 2. **Torn tails.** A log cut off (or bit-flipped) at any byte recovers
//!    the longest valid record prefix and serves exactly that state.
//! 3. **Tamper refusal.** A log record altered *consistently* (valid
//!    framing, wrong contents) is caught by the next `Seal`'s state
//!    checksum, and the server refuses to start.
//! 4. **Follower convergence.** A follower tailing a leader over loopback
//!    TCP verifies every epoch seal and converges bitwise, through
//!    checkpoint resets; a tampered record parks it in `Diverged`.

use std::path::PathBuf;

use proptest::prelude::*;
use rand::{Rng, SeedableRng, SmallRng};

use invector_replog::recover;
use invector_serve::{
    FollowStatus, Follower, LocalClient, OpKind, ServeClient, ServeConfig, Server, ServerCore,
    SyncPolicy, TableSpec, TcpClient, Update, WalOptions, WalRecord,
};

const TABLE_LEN: usize = 48;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("invector-serve-durability-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn tables() -> Vec<TableSpec> {
    vec![
        TableSpec::i32("counts", OpKind::Add, TABLE_LEN),
        TableSpec::f32("sums", OpKind::Add, TABLE_LEN),
    ]
}

fn generate_streams(rng: &mut SmallRng, len: usize) -> Vec<Vec<Update>> {
    let mut streams = vec![Vec::new(), Vec::new()];
    for seq in 0..len as u64 {
        let idx = rng.gen_range(0u32..TABLE_LEN as u32);
        streams[0].push(Update::i32(seq, idx, rng.gen_range(-100i32..100)));
        let idx = rng.gen_range(0u32..TABLE_LEN as u32);
        streams[1].push(Update::f32(seq, idx, rng.gen_range(-1.0f32..1.0)));
    }
    streams
}

fn config_with_wal(dir: &PathBuf, quantum: usize) -> ServeConfig {
    let mut config = ServeConfig::new(tables());
    config.quantum = quantum;
    let mut wal = WalOptions::new(dir);
    wal.sync = SyncPolicy::Os; // tests simulate process death, not power loss
    wal.checkpoint_epochs = 0; // explicit checkpoint control per test
    wal.checkpoint_bytes = 0;
    config.wal = Some(wal);
    config
}

/// Uninterrupted no-WAL reference: feed exactly `watermark` updates of each
/// stream through the same quantum and return the snapshot bits. Epoch
/// timing cannot matter (that is the determinism contract, proven in
/// serve_properties), so plain submit + flush is a valid reference for any
/// run whose cuts all fell on quantum boundaries.
fn reference_at(streams: &[Vec<Update>], quantum: usize, watermarks: &[u64]) -> Vec<Vec<u32>> {
    let mut config = ServeConfig::new(tables());
    config.quantum = quantum;
    let core = ServerCore::new(config).expect("reference core");
    let mut client = LocalClient::new(core);
    for (t, stream) in streams.iter().enumerate() {
        client.submit_all(t as u16, &stream[..watermarks[t] as usize]).expect("submit");
    }
    client.flush().expect("flush");
    (0..streams.len()).map(|t| client.snapshot(t as u16).expect("snapshot").bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any admitted stream, any kill point: the restarted server's tables
    /// are bitwise identical to an uninterrupted run at the same
    /// watermark. The "crash" drops the core with updates still queued and
    /// partially applied; only logged slices may survive, and all of them
    /// must.
    #[test]
    fn recovery_is_bitwise_identical_to_an_uninterrupted_run(
        seed in any::<u64>(),
        len in 1usize..400,
        quantum_pow in 2u32..6,
        kill_after in 0usize..64,
    ) {
        let quantum = 1usize << quantum_pow;
        let mut rng = SmallRng::seed_from_u64(seed);
        let streams = generate_streams(&mut rng, len);
        let dir = temp_dir("kill");

        // Interleave submissions and ticks, stopping abruptly after
        // `kill_after` steps (capped by however many steps there are).
        {
            let core = ServerCore::new(config_with_wal(&dir, quantum)).expect("core");
            let mut client = LocalClient::new(core.clone());
            let mut steps = 0usize;
            'ingest: for (t, stream) in streams.iter().enumerate() {
                for chunk in stream.chunks(13) {
                    client.submit_all(t as u16, chunk).expect("submit");
                    if rng.gen_bool(0.4) {
                        core.tick(false);
                    }
                    steps += 1;
                    if steps >= kill_after {
                        break 'ingest;
                    }
                }
            }
            core.tick(false);
            // Drop without flush/shutdown: the crash.
        }

        // Restart over the WAL dir. Whatever watermark the log carries,
        // the state must equal the reference at exactly that watermark.
        let recovered = ServerCore::new(config_with_wal(&dir, quantum)).expect("recovery");
        let watermarks: Vec<u64> =
            (0..streams.len()).map(|t| recovered.snapshot(t as u16).expect("snapshot").watermark).collect();
        for wm in &watermarks {
            prop_assert_eq!(wm % quantum as u64, 0, "non-drain cuts are whole quanta");
        }
        let expect = reference_at(&streams, quantum, &watermarks);
        for (t, want) in expect.iter().enumerate() {
            let got = recovered.snapshot(t as u16).expect("snapshot").bits();
            prop_assert_eq!(&got, want, "table {} diverged after recovery", t);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Cutting the log at any byte (a torn write) recovers the longest
    /// valid record prefix: the reopen succeeds and serves the reference
    /// state at the recovered (possibly shorter) watermark.
    #[test]
    fn torn_tails_recover_the_longest_valid_prefix(
        seed in any::<u64>(),
        len in 32usize..300,
        cut_fraction in 0.0f64..1.0,
    ) {
        let quantum = 8usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let streams = generate_streams(&mut rng, len);
        let dir = temp_dir("tear");

        {
            let core = ServerCore::new(config_with_wal(&dir, quantum)).expect("core");
            let mut client = LocalClient::new(core.clone());
            for (t, stream) in streams.iter().enumerate() {
                client.submit_all(t as u16, stream).expect("submit");
            }
            core.tick(false);
        }
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).expect("read log");
        prop_assert!(!bytes.is_empty(), "len >= 32 with quantum 8 always logs slices");
        let keep = ((bytes.len() as f64) * cut_fraction) as usize;
        std::fs::write(&wal_path, &bytes[..keep]).expect("tear log");

        let recovered = ServerCore::new(config_with_wal(&dir, quantum)).expect("recovery");
        let watermarks: Vec<u64> =
            (0..streams.len()).map(|t| recovered.snapshot(t as u16).expect("snapshot").watermark).collect();
        let expect = reference_at(&streams, quantum, &watermarks);
        for (t, want) in expect.iter().enumerate() {
            let got = recovered.snapshot(t as u16).expect("snapshot").bits();
            prop_assert_eq!(&got, want, "table {} diverged after torn-tail recovery", t);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A record altered with *valid* framing — the attack a frame CRC cannot
/// catch — is caught by the next seal's state checksum: the restart fails
/// loudly instead of serving diverged state.
#[test]
fn consistently_tampered_log_refuses_to_serve() {
    let quantum = 8usize;
    let dir = temp_dir("tamper");
    {
        let core = ServerCore::new(config_with_wal(&dir, quantum)).expect("core");
        let mut client = LocalClient::new(core.clone());
        let updates: Vec<Update> =
            (0..64u64).map(|seq| Update::i32(seq, (seq % TABLE_LEN as u64) as u32, 1)).collect();
        client.submit_all(0, &updates).expect("submit");
        core.tick(false);
    }

    // Decode the records, flip one bit of one batch update's value, and
    // rewrite the whole log with correct framing.
    let wal_path = dir.join("wal.log");
    let recovered = recover(&wal_path).expect("recover");
    assert!(recovered.torn.is_none());
    let mut records: Vec<WalRecord> =
        recovered.records.iter().map(|p| WalRecord::decode(p).expect("decode")).collect();
    let tampered = records
        .iter_mut()
        .find_map(|r| match r {
            WalRecord::Batch { updates, .. } => Some(updates),
            WalRecord::Seal { .. } => None,
        })
        .expect("a batch record");
    tampered[3] = Update::i32(tampered[3].seq, tampered[3].idx, 2);
    std::fs::remove_file(&wal_path).expect("drop log");
    let mut wal = invector_replog::Wal::open(&wal_path).expect("fresh log");
    for r in &records {
        wal.append(&r.encode()).expect("append");
    }
    wal.sync().expect("sync");
    drop(wal);

    let err = ServerCore::new(config_with_wal(&dir, quantum))
        .expect_err("tampered log must refuse to serve");
    assert!(
        err.contains("refusing to serve") || err.contains("diverged"),
        "error must name the divergence: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Leader/follower loopback: a follower bootstraps from a chunked snapshot,
/// tails the log through >=100 epochs of concurrent ingest (crossing
/// several checkpoint resets), verifies every seal, and finishes bitwise
/// identical to the leader.
#[test]
fn follower_converges_bitwise_across_100_epochs_and_checkpoints() {
    let quantum = 16usize;
    let dir = temp_dir("follow");
    let mut config = config_with_wal(&dir, quantum);
    // Checkpoint every 32 non-empty epochs so the run crosses several
    // generations and exercises the reset/re-bootstrap path, not just the
    // steady tail.
    if let Some(wal) = config.wal.as_mut() {
        wal.checkpoint_epochs = 32;
    }
    let server = Server::bind(config, "127.0.0.1:0").expect("bind leader");
    let addr = server.local_addr().to_string();

    let follower = Follower::start(&addr, ServeConfig::new(Vec::new())).expect("follower");

    // Concurrent ingest: one quantum per table per epoch, Flush forcing
    // the epoch boundary, for 120 epochs.
    const EPOCHS: usize = 160;
    let mut ingest = TcpClient::connect(&addr).expect("ingest client");
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for epoch in 0..EPOCHS {
        for t in 0..2u16 {
            let base = (epoch * quantum) as u64;
            let updates: Vec<Update> = (0..quantum as u64)
                .map(|i| {
                    let idx = rng.gen_range(0u32..TABLE_LEN as u32);
                    if t == 0 {
                        Update::i32(base + i, idx, rng.gen_range(-9i32..9))
                    } else {
                        Update::f32(base + i, idx, rng.gen_range(-1.0f32..1.0))
                    }
                })
                .collect();
            ingest.submit_all(t, &updates).expect("submit");
        }
        ingest.flush().expect("flush");
        // Pace ingest at roughly the follower's poll cadence: the point is
        // live tailing with per-epoch verification, not a bootstrap race.
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Wait for the follower to reach the leader's watermark on both tables.
    let target = (EPOCHS * quantum) as u64;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let caught_up = (0..2u16)
            .all(|t| follower.core().snapshot(t).map(|s| s.watermark == target).unwrap_or(false));
        if caught_up {
            break;
        }
        if let FollowStatus::Diverged(m) = follower.status() {
            panic!("follower diverged: {m}");
        }
        assert!(std::time::Instant::now() < deadline, "follower failed to catch up");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    for t in 0..2u16 {
        let leader = ingest.snapshot(t).expect("leader snapshot");
        let follow = follower.core().snapshot(t).expect("follower snapshot");
        assert_eq!(leader.watermark, follow.watermark);
        assert_eq!(leader.checksum, follow.checksum, "table {t} checksum differs");
        assert_eq!(leader.bits(), follow.bits(), "table {t} bits differ");
    }
    assert!(matches!(follower.status(), FollowStatus::Tailing));
    #[cfg(feature = "obs")]
    {
        let text = follower.core().metrics_text();
        let verified: u64 = text
            .lines()
            .find(|l| l.starts_with("invector_serve_follower_epochs_verified_total"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("verified series");
        assert!(verified >= 100, "only {verified} seals verified");
    }

    follower.stop();
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A single bit flipped in a replicated batch makes the follower's replayed
/// state disagree with the leader's seal — it must park in `Diverged`, not
/// serve the drifted bits.
#[test]
fn follower_detects_single_bit_divergence_exactly() {
    let quantum = 8usize;
    let dir = temp_dir("diverge");
    let core = ServerCore::new(config_with_wal(&dir, quantum)).expect("leader core");
    let mut client = LocalClient::new(core.clone());
    let updates: Vec<Update> =
        (0..32u64).map(|seq| Update::i32(seq, (seq % TABLE_LEN as u64) as u32, 1)).collect();
    client.submit_all(0, &updates).expect("submit");
    core.tick(false);

    // Replicate the leader's log into a read-only replica core, flipping
    // one value bit in one batch.
    let replica = {
        let mut config = ServeConfig::new(tables());
        config.quantum = quantum;
        ServerCore::new(config).expect("replica core")
    };
    replica.set_read_only(true);
    let page = core.log_tail(0, 0, u32::MAX).expect("tail");
    let mut tampered_once = false;
    let mut outcome = Ok(());
    for payload in &page.records {
        let mut record = WalRecord::decode(payload).expect("decode");
        if let WalRecord::Batch { updates, .. } = &mut record {
            if !tampered_once {
                updates[5] = Update::i32(updates[5].seq, updates[5].idx, 1 ^ 2);
                tampered_once = true;
            }
        }
        outcome = replica.apply_replica(&record);
        if outcome.is_err() {
            break;
        }
    }
    assert!(tampered_once, "log must contain a batch");
    let message = outcome.expect_err("tampered replication must fail the seal check");
    assert!(message.contains("divergence"), "error must name the divergence: {message}");
    std::fs::remove_dir_all(&dir).ok();
}
