//! Reactor edge cases over real loopback sockets: slow-reader write
//! backpressure, half-closed peers, connection-cap enforcement, the
//! poll-fallback backend, and a 1k-connection update→snapshot round trip
//! with bitwise-identical snapshots.

use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use invector_serve::protocol::{read_frame, write_frame, Reply, Request, Update, PROTOCOL_VERSION};
use invector_serve::{
    LocalClient, OpKind, ReactorKind, ServeClient, ServeConfig, Server, ServerCore, TableSpec,
    TcpClient,
};

/// FNV-1a over snapshot bit patterns: a compact bitwise-equality witness.
fn fnv64(bits: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Connects with retries: a 1k-connection storm can outrun the listen
/// backlog, which surfaces as refused or reset connects that simply need
/// another try.
fn connect_retrying(addr: std::net::SocketAddr) -> TcpClient {
    for _ in 0..200 {
        match TcpClient::connect(addr) {
            Ok(c) => return c,
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    panic!("could not connect to {addr} after 200 attempts");
}

/// A slow reader must stall the server's writes (partial-write resumption)
/// and then its reads (write-ring cap pauses read interest) — and every
/// reply must still arrive intact once the client finally drains.
#[test]
fn slow_reader_backpressure_stalls_writes_then_reads() {
    // 1M-slot i32 table: each snapshot reply is ~4 MiB, far beyond both the
    // 16 KiB write-ring cap and the kernel socket buffers.
    let slots = 1 << 20;
    let mut config = ServeConfig::new(vec![TableSpec::i32("big", OpKind::Add, slots)]);
    config.write_buffer_cap = 16 << 10;
    let server = Server::bind(config, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &Request::Hello { version: PROTOCOL_VERSION }.encode())
        .expect("hello");

    // Queue four ~4 MiB replies without reading a byte, then keep request
    // bytes flowing: the read stall only triggers when data is readable
    // while the write ring is over its cap, so follow the snapshots with
    // several update frames totalling well past one read chunk (16 KiB).
    const REPLIES: usize = 4;
    for _ in 0..REPLIES {
        write_frame(&mut writer, &Request::Snapshot { table: 0 }.encode()).expect("snapshot req");
    }
    const UPDATE_FRAMES: usize = 4;
    const PER_FRAME: usize = 512;
    for f in 0..UPDATE_FRAMES {
        let updates: Vec<Update> = (0..PER_FRAME)
            .map(|i| {
                let seq = (f * PER_FRAME + i) as u64;
                Update::i32(seq, (seq % slots as u64) as u32, 1)
            })
            .collect();
        write_frame(&mut writer, &Request::Update { table: 0, updates }.encode())
            .expect("update req");
    }
    // Give the reactor time to fill the socket + write ring and hit both
    // stall paths while we refuse to read.
    std::thread::sleep(Duration::from_millis(100));

    // Now drain: hello reply, every snapshot intact, then the update acks.
    let hello = read_frame(&mut reader).expect("hello reply").expect("frame");
    assert!(matches!(Reply::decode(&hello).expect("decode"), Reply::Hello { .. }));
    for i in 0..REPLIES {
        let body = read_frame(&mut reader).expect("snapshot reply").expect("frame");
        match Reply::decode(&body).expect("decode") {
            Reply::Snapshot { values, .. } => {
                assert_eq!(values.len(), slots, "reply {i} arrived intact");
            }
            other => panic!("reply {i}: expected Snapshot, got {other:?}"),
        }
    }
    for i in 0..UPDATE_FRAMES {
        let body = read_frame(&mut reader).expect("update ack").expect("frame");
        match Reply::decode(&body).expect("decode") {
            Reply::Ack { .. } | Reply::Reject { .. } => {}
            other => panic!("ack {i}: expected Ack/Reject, got {other:?}"),
        }
    }

    // The stall counters must have fired (visible with obs compiled in).
    #[cfg(feature = "obs")]
    {
        let mut probe = TcpClient::connect(addr).expect("probe connect");
        let text = probe.metrics().expect("metrics");
        let series_value = |name: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(name) && !l.starts_with('#'))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("series {name} missing:\n{text}"))
        };
        assert!(series_value("invector_serve_write_stalls_total") >= 1, "writes must stall");
        assert!(series_value("invector_serve_read_stalls_total") >= 1, "reads must pause");
        assert!(series_value("invector_serve_wakeups_total") >= 1);
    }

    server.shutdown();
    server.join();
}

/// A peer that half-closes (shutdown of its write side) after sending its
/// requests still receives every reply, then a clean EOF.
#[test]
fn half_closed_peer_receives_all_replies_then_eof() {
    let mut config = ServeConfig::new(vec![TableSpec::i32("c", OpKind::Add, 64)]);
    config.quantum = 32;
    let server = Server::bind(config, "127.0.0.1:0").expect("bind");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));

    // Write the whole conversation, then close the write side before
    // reading anything.
    write_frame(&mut writer, &Request::Hello { version: PROTOCOL_VERSION }.encode())
        .expect("hello");
    let updates: Vec<Update> = (0..100).map(|i| Update::i32(i, (i % 64) as u32, 1)).collect();
    write_frame(&mut writer, &Request::Update { table: 0, updates }.encode()).expect("update");
    write_frame(&mut writer, &Request::Flush.encode()).expect("flush");
    write_frame(&mut writer, &Request::Snapshot { table: 0 }.encode()).expect("snapshot");
    drop(writer);
    stream.shutdown(Shutdown::Write).expect("half-close");

    let hello = read_frame(&mut reader).expect("hello reply").expect("frame");
    assert!(matches!(Reply::decode(&hello).expect("decode"), Reply::Hello { .. }));
    let ack = read_frame(&mut reader).expect("ack").expect("frame");
    assert!(matches!(Reply::decode(&ack).expect("decode"), Reply::Ack { accepted: 100, .. }));
    let flush = read_frame(&mut reader).expect("flush ack").expect("frame");
    assert!(matches!(Reply::decode(&flush).expect("decode"), Reply::Ack { .. }));
    let snap = read_frame(&mut reader).expect("snapshot").expect("frame");
    match Reply::decode(&snap).expect("decode") {
        Reply::Snapshot { watermark, values, .. } => {
            assert_eq!(watermark, 100);
            assert_eq!(values.iter().map(|&b| b as i32).sum::<i32>(), 100);
        }
        other => panic!("expected Snapshot, got {other:?}"),
    }
    // After the last reply the server closes its side: clean EOF.
    assert!(read_frame(&mut reader).expect("eof").is_none(), "expected EOF after final reply");

    server.shutdown();
    server.join();
}

/// `max_connections` refuses surplus accepts outright while established
/// connections keep working.
#[test]
fn connection_cap_refuses_surplus_accepts() {
    let mut config = ServeConfig::new(vec![TableSpec::i32("c", OpKind::Add, 16)]);
    config.max_connections = 2;
    let server = Server::bind(config, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut a = TcpClient::connect(addr).expect("first");
    let _b = TcpClient::connect(addr).expect("second");
    // The third accept is over the cap: the server drops it, which the
    // handshake observes as a closed or reset connection.
    assert!(
        TcpClient::connect(addr).is_err(),
        "third connection must be refused at max_connections=2"
    );
    // Established connections are unaffected.
    a.submit(0, &[Update::i32(0, 3, 5)]).expect("submit on live conn");
    a.flush().expect("flush");
    assert_eq!(a.snapshot(0).expect("snap").watermark, 1);

    server.shutdown();
    server.join();
}

/// The poll(2) fallback backend must serve the identical workload to the
/// same snapshot bytes as the default (epoll) backend.
#[test]
fn poll_fallback_matches_epoll_snapshots_bitwise() {
    let make_config = |kind: ReactorKind| {
        let mut c = ServeConfig::new(vec![TableSpec::f32("mins", OpKind::Min, 256)]);
        c.quantum = 64;
        c.reactor = kind;
        c
    };
    let updates: Vec<Update> =
        (0..1000).map(|i| Update::f32(i, (i % 256) as u32, (i as f32).sin())).collect();

    let mut checksums = Vec::new();
    for kind in [ReactorKind::Auto, ReactorKind::Poll] {
        let server = Server::bind(make_config(kind), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        // Interleave delivery across four connections.
        let mut clients: Vec<TcpClient> =
            (0..4).map(|_| TcpClient::connect(addr).expect("connect")).collect();
        for (i, chunk) in updates.chunks(50).enumerate() {
            clients[i % 4].submit_all(0, chunk).expect("submit");
        }
        clients[0].flush().expect("flush");
        let snap = clients[0].snapshot(0).expect("snapshot");
        assert_eq!(snap.watermark, 1000);
        checksums.push(fnv64(&snap.bits()));
        server.shutdown();
        server.join();
    }
    assert_eq!(checksums[0], checksums[1], "poll and epoll snapshots must agree bitwise");
}

/// 1024 concurrent loopback connections, each completing a full
/// update→snapshot round trip: every snapshot is bitwise identical, and
/// identical to an in-process (blocking-path) replay of the same
/// seq-ordered stream.
#[test]
fn one_thousand_connections_round_trip_identical_snapshots() {
    const CONNS: usize = 1024;
    const PER_CONN: usize = 32;
    const SLOTS: usize = 4096;
    let total = CONNS * PER_CONN;

    let config = || {
        let mut c = ServeConfig::new(vec![TableSpec::i32("deg", OpKind::Add, SLOTS)]);
        c.quantum = 4096;
        c.max_connections = 2048;
        c
    };
    // Scrambled slot targets, deterministic in seq.
    let update_at = |seq: usize| {
        Update::i32(
            seq as u64,
            ((seq.wrapping_mul(2_654_435_761)) % SLOTS) as u32,
            (seq % 7) as i32 + 1,
        )
    };

    // Reference: the same stream, seq-ordered, through the in-process
    // client (the pre-reactor blocking path's core entry points).
    let reference = {
        let core = ServerCore::new(config()).expect("core");
        let mut local = LocalClient::new(core);
        let all: Vec<Update> = (0..total).map(update_at).collect();
        local.submit_all(0, &all).expect("reference submit");
        local.flush().expect("reference flush");
        let snap = local.snapshot(0).expect("reference snapshot");
        assert_eq!(snap.watermark, total as u64);
        snap.bits()
    };
    let reference_sum = fnv64(&reference);

    let server = Server::bind(config(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    const DRIVERS: usize = 8;
    let submitted = Arc::new(Barrier::new(DRIVERS + 1));
    let flushed = Arc::new(Barrier::new(DRIVERS + 1));
    let mut handles = Vec::new();
    for d in 0..DRIVERS {
        let submitted = Arc::clone(&submitted);
        let flushed = Arc::clone(&flushed);
        handles.push(std::thread::spawn(move || {
            let per_driver = CONNS / DRIVERS;
            // Hold every connection open for the whole test: the server
            // really serves 1024 live sockets at once.
            let mut clients: Vec<TcpClient> =
                (0..per_driver).map(|_| connect_retrying(addr)).collect();
            for (i, client) in clients.iter_mut().enumerate() {
                let conn = d * per_driver + i;
                let slice: Vec<Update> =
                    (conn * PER_CONN..(conn + 1) * PER_CONN).map(update_at).collect();
                client.submit_all(0, &slice).expect("submit slice");
            }
            submitted.wait();
            flushed.wait();
            clients
                .iter_mut()
                .map(|c| {
                    let snap = c.snapshot(0).expect("snapshot");
                    assert_eq!(snap.watermark, (CONNS * PER_CONN) as u64);
                    fnv64(&snap.bits())
                })
                .collect::<Vec<u64>>()
        }));
    }

    submitted.wait();
    let mut coordinator = connect_retrying(addr);
    coordinator.flush().expect("global flush");
    flushed.wait();

    for h in handles {
        for sum in h.join().expect("driver thread") {
            assert_eq!(sum, reference_sum, "every connection must see identical snapshot bytes");
        }
    }

    #[cfg(feature = "obs")]
    {
        let text = coordinator.metrics().expect("metrics");
        let series_value = |name: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(name) && !l.starts_with('#'))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("series {name} missing:\n{text}"))
        };
        assert!(series_value("invector_serve_accepted_total") >= (CONNS + 1) as u64);
        assert!(series_value("invector_serve_open_connections") >= 1);
        assert!(series_value("invector_serve_readiness_batches_total") >= 1);
    }

    server.shutdown();
    server.join();
}
