//! Property tests for the serving layer's two contracts:
//!
//! 1. **Deterministic snapshots.** One logical update stream produces
//!    bitwise-identical table snapshots at a fixed (quantum, threads)
//!    configuration, no matter how many ingest shards the server runs,
//!    how the stream is split across clients, how client submissions
//!    interleave, or when epochs fire.
//! 2. **Backpressure.** A saturated ingest queue rejects with a
//!    retry-after hint — it never blocks the caller and never drops an
//!    admitted update.

use proptest::prelude::*;
use rand::{Rng, SeedableRng, SmallRng};

use invector_core::exec::ExecVariant;
use invector_serve::{
    LocalClient, OpKind, PolicyTrace, RejectReason, ServeClient, ServeConfig, ServerCore,
    SubmitOutcome, TableSpec, TuneConfig, TuneMode, Update,
};

const TABLE_LEN: usize = 64;

fn tables() -> Vec<TableSpec> {
    vec![
        TableSpec::i32("counts", OpKind::Add, TABLE_LEN),
        TableSpec::f32("mins", OpKind::Min, TABLE_LEN),
        TableSpec::f32("sums", OpKind::Add, TABLE_LEN),
    ]
}

/// One generated logical stream per table. `sums` exercises f32
/// accumulation, where any reassociation of the fold would show up
/// bitwise.
fn generate_streams(rng: &mut SmallRng, len: usize) -> Vec<Vec<Update>> {
    let mut streams = vec![Vec::new(), Vec::new(), Vec::new()];
    for seq in 0..len as u64 {
        let idx = rng.gen_range(0u32..TABLE_LEN as u32);
        streams[0].push(Update::i32(seq, idx, rng.gen_range(-100i32..100)));
        let idx = rng.gen_range(0u32..TABLE_LEN as u32);
        streams[1].push(Update::f32(seq, idx, rng.gen_range(-1.0f32..1.0)));
        let idx = rng.gen_range(0u32..TABLE_LEN as u32);
        streams[2].push(Update::f32(seq, idx, rng.gen_range(-1.0f32..1.0)));
    }
    streams
}

/// Replays `streams` against a fresh server and returns the final
/// snapshot bits per table.
///
/// `shards` and the chunking/interleaving/tick schedule (driven by `rng`)
/// are the degrees of freedom that must NOT affect the result; `quantum`
/// is part of the configuration that legitimately may.
fn replay(
    streams: &[Vec<Update>],
    shards: usize,
    quantum: usize,
    rng: &mut SmallRng,
) -> Vec<Vec<u32>> {
    replay_with_tune(streams, shards, quantum, TuneMode::Off, rng).0
}

/// [`replay`], but with a tuning mode: returns the snapshot bits and the
/// run's recorded policy trace (empty unless tuning ran).
fn replay_with_tune(
    streams: &[Vec<Update>],
    shards: usize,
    quantum: usize,
    tune: TuneMode,
    rng: &mut SmallRng,
) -> (Vec<Vec<u32>>, PolicyTrace) {
    let mut config = ServeConfig::new(tables());
    config.shards = shards;
    config.quantum = quantum;
    config.tune = tune;
    let core = ServerCore::new(config).expect("core");
    let mut client = LocalClient::new(core.clone());

    // Cut each table's stream into client-sized chunks...
    let mut submissions: Vec<(u16, &[Update])> = Vec::new();
    for (t, stream) in streams.iter().enumerate() {
        let mut rest = stream.as_slice();
        while !rest.is_empty() {
            let n = rng.gen_range(1usize..=rest.len().min(48));
            let (chunk, tail) = rest.split_at(n);
            submissions.push((t as u16, chunk));
            rest = tail;
        }
    }
    // ...and deliver them in a random interleaving (Fisher–Yates), as if
    // from many racing connections, with epochs firing at random points.
    for i in (1..submissions.len()).rev() {
        submissions.swap(i, rng.gen_range(0usize..=i));
    }
    for (table, chunk) in submissions {
        client.submit_all(table, chunk).expect("submit");
        if rng.gen_bool(0.3) {
            core.tick(false);
        }
    }
    client.flush().expect("flush");
    let bits =
        (0..streams.len()).map(|t| client.snapshot(t as u16).expect("snapshot").bits()).collect();
    (bits, core.policy_trace())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline contract: same stream, same (quantum, threads) →
    /// bitwise-identical snapshots under every shard count, client split,
    /// interleaving, and epoch timing.
    #[test]
    fn snapshots_are_bitwise_identical_across_interleavings(
        seed in any::<u64>(),
        len in 1usize..500,
        quantum_pow in 3u32..8,
    ) {
        let quantum = 1usize << quantum_pow;
        let mut rng = SmallRng::seed_from_u64(seed);
        let streams = generate_streams(&mut rng, len);

        // Reference: one shard, in-order submission, no mid-stream ticks.
        let reference = {
            let mut config = ServeConfig::new(tables());
            config.quantum = quantum;
            config.shards = 1;
            let core = ServerCore::new(config).expect("core");
            let mut client = LocalClient::new(core);
            for (t, stream) in streams.iter().enumerate() {
                client.submit_all(t as u16, stream).expect("submit");
            }
            client.flush().expect("flush");
            (0..streams.len())
                .map(|t| client.snapshot(t as u16).expect("snapshot").bits())
                .collect::<Vec<_>>()
        };

        for round in 0..3u64 {
            let shards = [1usize, 2, 3, 8][rng.gen_range(0usize..4)];
            let mut replay_rng = SmallRng::seed_from_u64(seed.wrapping_add(round * 7919));
            let got = replay(&streams, shards, quantum, &mut replay_rng);
            prop_assert_eq!(
                &got, &reference,
                "shards={} round={} diverged from the reference replay", shards, round
            );
        }
    }

    /// Exact operators (integer add, float min) are grouping-independent,
    /// so even *different* quanta must agree bitwise on those tables.
    #[test]
    fn exact_tables_agree_even_across_quanta(
        seed in any::<u64>(),
        len in 1usize..300,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let streams = generate_streams(&mut rng, len);
        let mut rng_a = SmallRng::seed_from_u64(seed ^ 1);
        let mut rng_b = SmallRng::seed_from_u64(seed ^ 2);
        let a = replay(&streams, 2, 32, &mut rng_a);
        let b = replay(&streams, 4, 128, &mut rng_b);
        prop_assert_eq!(&a[0], &b[0], "i32 add table must not depend on the quantum");
        prop_assert_eq!(&a[1], &b[1], "f32 min table must not depend on the quantum");
    }

    /// Duplicate deliveries (client retries after a lost ack) never change
    /// the outcome: first arrival per sequence number wins.
    #[test]
    fn duplicate_deliveries_are_idempotent(
        seed in any::<u64>(),
        len in 1usize..200,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let streams = generate_streams(&mut rng, len);
        let mut rng_a = SmallRng::seed_from_u64(seed ^ 3);
        let reference = replay(&streams, 2, 64, &mut rng_a);

        // Same replay, but every chunk is delivered twice.
        let mut config = ServeConfig::new(tables());
        config.quantum = 64;
        config.shards = 2;
        let core = ServerCore::new(config).expect("core");
        let mut client = LocalClient::new(core);
        for (t, stream) in streams.iter().enumerate() {
            for chunk in stream.chunks(17) {
                client.submit_all(t as u16, chunk).expect("submit");
                client.submit_all(t as u16, chunk).expect("redundant submit");
            }
        }
        client.flush().expect("flush");
        let stats = client.stats().expect("stats");
        prop_assert!(stats.duplicates > 0 || len == 0, "retransmissions must be counted");
        for (t, expect) in reference.iter().enumerate() {
            let got = client.snapshot(t as u16).expect("snapshot").bits();
            prop_assert_eq!(&got, expect, "table {} changed under duplicate delivery", t);
        }
    }

    /// Tuning preserves the determinism contract: a run under an
    /// aggressive live controller records a policy trace, and replaying
    /// that trace — under a *different* shard count, client split,
    /// interleaving, and epoch timing — reproduces every snapshot bitwise.
    #[test]
    fn tuned_snapshots_replay_bitwise_from_the_recorded_trace(
        seed in any::<u64>(),
        len in 32usize..400,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let streams = generate_streams(&mut rng, len);

        // Tiny windows, zero hysteresis, a quantum/thread/variant lattice:
        // the controller switches as often as it ever will, so the trace
        // is dense with mid-stream policy changes.
        let tune = TuneConfig {
            quantum_ladder: vec![4, 16, 64],
            thread_ladder: vec![1, 2],
            variants: vec![ExecVariant::Invec, ExecVariant::Serial],
            warmup_epochs: 1,
            measure_epochs: 1,
            hysteresis: 0.0,
            hold_epochs: 4,
            drift: 0.25,
        };
        let mut rng_a = SmallRng::seed_from_u64(seed ^ 0xa11ce);
        let (tuned, trace) =
            replay_with_tune(&streams, 2, 4, TuneMode::Auto(tune), &mut rng_a);

        let mut rng_b = SmallRng::seed_from_u64(seed ^ 0xb0b);
        let (replayed, _) =
            replay_with_tune(&streams, 5, 4, TuneMode::Replay(trace.clone()), &mut rng_b);
        prop_assert_eq!(
            &tuned, &replayed,
            "trace with {} entries failed to reproduce the tuned run", trace.len()
        );
    }
}

#[test]
fn saturated_queue_rejects_with_retry_after_instead_of_blocking() {
    let mut config = ServeConfig::new(vec![TableSpec::i32("c", OpKind::Add, 16)]);
    config.shards = 1;
    config.queue_capacity = 8;
    config.quantum = 4;
    let core = ServerCore::new(config).expect("core");

    // Fill the queue to the brim without running any epochs.
    let fill: Vec<Update> = (0..8).map(|i| Update::i32(i, (i % 16) as u32, 1)).collect();
    assert!(matches!(core.submit(0, &fill), SubmitOutcome::Accepted { accepted: 8, .. }));

    // Saturated: every further submit must return immediately with a
    // retry hint. Repeating it must not block or mutate anything.
    for _ in 0..3 {
        match core.submit(0, &[Update::i32(8, 0, 1)]) {
            SubmitOutcome::Rejected { accepted, retry_after_ms, reason } => {
                assert_eq!(accepted, 0);
                assert!(retry_after_ms >= 1, "retry hint must be actionable");
                assert_eq!(reason, RejectReason::QueueFull);
            }
            other => panic!("saturated queue must reject, got {other:?}"),
        }
    }

    // Draining the queue re-opens admission, and nothing that was ever
    // accepted has been lost.
    core.tick(true);
    assert!(matches!(core.submit(0, &[Update::i32(8, 0, 1)]), SubmitOutcome::Accepted { .. }));
    core.flush();
    let snapshot = core.snapshot(0).expect("snapshot");
    assert_eq!(snapshot.watermark, 9, "all 9 accepted updates applied");
    #[cfg(feature = "obs")]
    assert!(core.stats_summary().rejected >= 3);
}

#[test]
fn reorder_window_rejections_are_retryable_not_fatal() {
    let mut config = ServeConfig::new(vec![TableSpec::i32("c", OpKind::Add, 16)]);
    config.window = 8;
    let core = ServerCore::new(config).expect("core");

    // seq 10 is beyond watermark 0 + window 8: refused, not dropped.
    match core.submit(0, &[Update::i32(10, 0, 1)]) {
        SubmitOutcome::Rejected { reason, .. } => assert_eq!(reason, RejectReason::WindowExceeded),
        other => panic!("expected a window rejection, got {other:?}"),
    }

    // Once the earlier stream positions arrive and apply (advancing the
    // watermark), the retry fits inside the window.
    let head: Vec<Update> = (0..8).map(|i| Update::i32(i, 0, 1)).collect();
    assert!(matches!(core.submit(0, &head), SubmitOutcome::Accepted { .. }));
    core.flush();
    let tail: Vec<Update> = (8..11).map(|i| Update::i32(i, 0, 1)).collect();
    assert!(matches!(core.submit(0, &tail), SubmitOutcome::Accepted { .. }));
    core.flush();
    assert_eq!(core.snapshot(0).expect("snapshot").watermark, 11);
}
