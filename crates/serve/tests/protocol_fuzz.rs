//! Decoder robustness properties for the wire protocol: no byte sequence
//! may panic `Request::decode` / `Reply::decode` — arbitrary garbage,
//! truncated prefixes of valid encodings, and unknown opcode tags must all
//! come back as clean `Err(Malformed)` (or a successful parse when the
//! bytes happen to spell a valid frame). A live TCP server answers a
//! malformed frame with an `Error` reply instead of dying.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use proptest::prelude::*;

use invector_serve::protocol::{
    read_frame, snapshot_checksum, write_frame, EdgeOp, Reply, Request, RequestView,
    SnapshotAssembler, SnapshotMetaTable, StatsSummary, Update, PROTOCOL_VERSION,
};
use invector_serve::{
    OpKind, RejectReason, Ring, ServeConfig, Server, StreamKind, TableSpec, ValueKind,
};

fn arb_update() -> impl Strategy<Value = Update> {
    (any::<u64>(), any::<u32>(), any::<u32>()).prop_map(|(seq, idx, bits)| Update {
        seq,
        idx,
        bits,
    })
}

/// Every request variant, dispatched off a tag byte (the vendored proptest
/// shim has no `prop_oneof`).
fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..13, any::<u16>(), any::<u32>(), any::<u64>(), prop::collection::vec(arb_update(), 0..40))
        .prop_map(|(tag, word, dword, qword, updates)| match tag {
            0 => Request::Hello { version: word },
            1 => Request::Update { table: word, updates },
            2 => Request::Flush,
            3 => Request::Snapshot { table: word },
            4 => Request::Stats,
            5 => Request::Shutdown,
            6 => Request::Metrics,
            7 => Request::SnapshotBegin,
            8 => Request::SnapshotChunk { table: word, chunk: dword },
            9 => Request::EdgeOps {
                table: word,
                ops: updates.into_iter().map(EdgeOp::from_update).collect(),
            },
            10 => Request::WindowQuery { table: word, bucket: qword },
            11 => Request::TopK { table: word, k: dword },
            _ => Request::LogTail {
                checkpoint: qword,
                index: qword.rotate_left(17),
                max_bytes: dword,
            },
        })
}

fn arb_table_spec() -> impl Strategy<Value = TableSpec> {
    (0u8..2, 0u8..3, 1usize..512, prop::collection::vec(0u8..26, 1..12), 0u8..4, any::<u32>())
        .prop_map(|(kind, op, len, name, stream, param)| TableSpec {
            name: name.into_iter().map(|c| (b'a' + c) as char).collect(),
            kind: if kind == 0 { ValueKind::F32 } else { ValueKind::I32 },
            op: match op {
                0 => OpKind::Add,
                1 => OpKind::Min,
                _ => OpKind::Max,
            },
            len,
            // Encoding round-trips don't validate geometry, so arbitrary
            // stream parameters are fair game here.
            stream: match stream {
                0 => StreamKind::Flat,
                1 => StreamKind::GraphPageRank { vertices: param, iters: param.rotate_left(9) },
                2 => StreamKind::GraphWcc { vertices: param },
                _ => StreamKind::Window {
                    keys: param,
                    buckets: param.rotate_left(5),
                    width: param.rotate_left(11),
                    timed: param % 2 == 0,
                },
            },
        })
}

/// Every reply variant, same tag-dispatch scheme.
fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        0u8..13,
        any::<u16>(),
        any::<u32>(),
        any::<u64>(),
        prop::collection::vec(any::<u32>(), 0..40),
        prop::collection::vec(arb_table_spec(), 0..4),
        prop::collection::vec(0u8..128, 0..60),
    )
        .prop_map(|(tag, word, accepted, watermark, values, tables, text)| {
            let text: String = text.into_iter().map(|c| c as char).collect();
            match tag {
                0 => Reply::Hello { version: word, shards: word, quantum: accepted, tables },
                1 => Reply::Ack { accepted, watermark },
                2 => Reply::Reject {
                    accepted,
                    retry_after_ms: accepted,
                    reason: match word % 3 {
                        0 => RejectReason::QueueFull,
                        1 => RejectReason::WindowExceeded,
                        _ => RejectReason::Draining,
                    },
                },
                3 => Reply::Snapshot { table: word, watermark, checksum: accepted, values },
                8 => Reply::SnapshotMeta {
                    checkpoint: watermark,
                    index: watermark.rotate_left(13),
                    chunk_values: accepted,
                    tables: values
                        .iter()
                        .take(6)
                        .enumerate()
                        .map(|(t, &v)| SnapshotMetaTable {
                            table: t as u16,
                            watermark: u64::from(v),
                            len: u64::from(v).rotate_left(7),
                            checksum: v,
                        })
                        .collect(),
                },
                9 => Reply::SnapshotChunk { table: word, chunk: accepted, values },
                10 => Reply::LogRecords {
                    checkpoint: watermark,
                    next_index: watermark.wrapping_add(u64::from(accepted)),
                    head: watermark.wrapping_mul(3),
                    reset: word % 2 == 0,
                    records: values.iter().take(5).map(|&v| v.to_le_bytes().to_vec()).collect(),
                },
                4 => Reply::Stats(StatsSummary {
                    epochs: watermark,
                    slices: watermark,
                    applied: watermark,
                    rejected: u64::from(accepted),
                    duplicates: u64::from(word),
                    occupancy: 0.5,
                    conflict_depth: 1.0,
                    updates_per_sec: 1e6,
                    p50_epoch_us: 10.0,
                    p99_epoch_us: 100.0,
                }),
                5 => Reply::Metrics(text),
                6 => Reply::Bye { watermarks: values.iter().map(|&v| u64::from(v)).collect() },
                11 => Reply::Window {
                    table: word,
                    watermark,
                    bucket: watermark.rotate_left(3),
                    expired: u64::from(accepted),
                    values,
                },
                12 => Reply::TopK {
                    table: word,
                    watermark,
                    entries: values.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect(),
                },
                _ => Reply::Error(text),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes never panic either decoder: every outcome is a
    /// clean `Ok` or `Err`.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        body in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = Request::decode(&body);
        let _ = Reply::decode(&body);
    }

    /// Every strict prefix of a valid request encoding is refused without
    /// panicking, and the full encoding still round-trips.
    #[test]
    fn truncated_request_frames_fail_cleanly(
        request in arb_request(),
        cut in any::<usize>(),
    ) {
        let body = request.encode();
        prop_assert_eq!(Request::decode(&body).unwrap(), request);
        if body.len() > 1 {
            let cut = 1 + cut % (body.len() - 1);
            prop_assert!(Request::decode(&body[..cut]).is_err(),
                "prefix of {} of {} bytes must not parse", cut, body.len());
        }
    }

    /// Reply encodings survive arbitrary truncation without panicking (a
    /// prefix may still parse when a length field shrinks to cover it, but
    /// it must never crash), and the full encoding round-trips.
    #[test]
    fn truncated_reply_frames_never_panic(
        reply in arb_reply(),
        cut in any::<usize>(),
    ) {
        let body = reply.encode();
        prop_assert_eq!(Reply::decode(&body).unwrap(), reply);
        let cut = cut % (body.len() + 1);
        let _ = Reply::decode(&body[..cut]);
    }

    /// Unknown opcode tags are refused up front, whatever payload follows.
    #[test]
    fn unknown_opcode_tags_are_refused(
        tag in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let known_request = (0x01..=0x0D).contains(&tag);
        let known_reply = (0x81..=0x8C).contains(&tag) || tag == 0xFF;
        let mut body = vec![tag];
        body.extend_from_slice(&payload);
        if !known_request {
            prop_assert!(Request::decode(&body).is_err());
        }
        if !known_reply {
            prop_assert!(Reply::decode(&body).is_err());
        }
    }

    /// Bit-flipping one byte of a valid encoding never panics the decoder.
    #[test]
    fn single_byte_corruption_never_panics(
        request in arb_request(),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut body = request.encode();
        let pos = pos % body.len();
        body[pos] ^= flip;
        let _ = Request::decode(&body);
    }

    /// The zero-copy decoder agrees with the owned decoder on every valid
    /// frame, and its lazy per-update materialization reads the same
    /// records in the same order.
    #[test]
    fn borrowed_and_owned_decodes_agree(request in arb_request()) {
        let body = request.encode();
        let view = RequestView::decode(&body).expect("valid frame");
        prop_assert_eq!(view.to_owned(), Request::decode(&body).unwrap());
        if let RequestView::Update { updates, .. } = view {
            let materialized: Vec<Update> = updates.iter().collect();
            prop_assert_eq!(materialized.len(), updates.len());
            for (i, u) in materialized.iter().enumerate() {
                prop_assert_eq!(*u, updates.get(i));
            }
        }
    }

    /// Arbitrary bytes never panic the borrowing decoder either.
    #[test]
    fn borrowing_decoder_never_panics_on_arbitrary_bytes(
        body in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = RequestView::decode(&body);
    }

    /// A chunked snapshot transfer delivered strictly in order assembles
    /// to the original value stream under any (len, chunk_values)
    /// geometry; a *truncated* chunk sequence — any strict prefix — is
    /// refused at `finish`, never silently accepted.
    #[test]
    fn chunk_transfers_assemble_in_order_and_refuse_truncation(
        values in prop::collection::vec(any::<u32>(), 0..120),
        chunk_values in 1u32..16,
        drop_tail in any::<usize>(),
    ) {
        let checksum = snapshot_checksum(&values);
        let mut asm = SnapshotAssembler::new(0, values.len() as u64, checksum, chunk_values);
        let total = asm.chunk_count();
        for chunk in 0..total {
            let start = (chunk as usize) * chunk_values as usize;
            let end = (start + chunk_values as usize).min(values.len());
            asm.push(0, chunk, &values[start..end]).expect("in-order chunk");
        }
        prop_assert_eq!(asm.finish().expect("complete transfer"), values.clone());

        if total > 0 {
            // Stop after an arbitrary strict prefix of the chunk sequence.
            let keep = drop_tail % total as usize;
            let mut asm =
                SnapshotAssembler::new(0, values.len() as u64, checksum, chunk_values);
            for chunk in 0..keep as u32 {
                let start = (chunk as usize) * chunk_values as usize;
                let end = (start + chunk_values as usize).min(values.len());
                asm.push(0, chunk, &values[start..end]).expect("in-order chunk");
            }
            prop_assert!(asm.finish().is_err(), "truncated sequence must be refused");
        }
    }

    /// Delivering any chunk out of sequence is rejected immediately at
    /// `push` — the assembler never buffers holes or reorders.
    #[test]
    fn out_of_order_chunk_ids_are_rejected_at_push(
        values in prop::collection::vec(any::<u32>(), 2..120),
        chunk_values in 1u32..8,
        skew in any::<u32>(),
    ) {
        let checksum = snapshot_checksum(&values);
        let mut asm = SnapshotAssembler::new(0, values.len() as u64, checksum, chunk_values);
        let total = asm.chunk_count();
        if total < 2 {
            return Ok(());
        }
        // Any id other than the expected next one (0) must be refused,
        // including ids past the end of the transfer.
        let wrong = 1 + skew % (total + 3);
        let start = ((wrong as usize) * chunk_values as usize).min(values.len());
        let end = (start + chunk_values as usize).min(values.len());
        prop_assert!(asm.push(0, wrong, &values[start..end]).is_err());
        // The failed push must not have consumed the slot: the correct
        // sequence still assembles afterwards.
        for chunk in 0..total {
            let start = (chunk as usize) * chunk_values as usize;
            let end = (start + chunk_values as usize).min(values.len());
            asm.push(0, chunk, &values[start..end]).expect("in-order chunk");
        }
        prop_assert_eq!(asm.finish().expect("complete transfer"), values);
    }

    /// A multi-frame stream delivered to the ring in arbitrary read-sized
    /// chunks, at an arbitrary head rotation, decodes to exactly the
    /// original request sequence — no matter where the reads split the
    /// length prefixes or bodies, and no matter where the frames wrap the
    /// ring's physical edge.
    #[test]
    fn chunked_multi_frame_streams_decode_identically(
        requests in prop::collection::vec(arb_request(), 1..6),
        chunks in prop::collection::vec(1usize..48, 1..80),
        rot in 0usize..64,
    ) {
        let mut wire = Vec::new();
        for r in &requests {
            let body = r.encode();
            wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
            wire.extend_from_slice(&body);
        }
        // Small ring + head rotation: most deliveries wrap or grow.
        let mut ring = Ring::with_capacity(64);
        ring.push(&vec![0xAAu8; rot]);
        ring.consume(rot);
        let mut scratch = Vec::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        let mut chunk_i = 0;
        while pos < wire.len() {
            let n = chunks[chunk_i % chunks.len()].min(wire.len() - pos);
            chunk_i += 1;
            ring.push(&wire[pos..pos + n]);
            pos += n;
            while let Some(frame) = ring.pop_frame(&mut scratch).expect("well-formed stream") {
                decoded.push(RequestView::decode(frame).expect("valid frame").to_owned());
            }
        }
        prop_assert_eq!(decoded, requests);
        prop_assert!(ring.is_empty(), "no residue after the last frame");
    }
}

/// Exhaustive split/wrap sweep: one frame, split at *every* byte boundary,
/// at *every* head rotation of a small ring. Covers the length prefix
/// splitting across reads, the body splitting across reads, and both of
/// them wrapping the ring's physical edge (the scratch-spill path of
/// `pop_frame`).
#[test]
fn every_split_and_wrap_boundary_decodes_identically() {
    let updates: Vec<Update> =
        (0..2).map(|i| Update { seq: i, idx: i as u32, bits: 0xA5A5_0000 | i as u32 }).collect();
    let request = Request::Update { table: 7, updates };
    let body = request.encode();
    let mut wire = (body.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&body);
    assert!(wire.len() < 64, "frame must fit the ring so rotations wrap instead of growing");

    for rot in 0..64 {
        for cut in 0..=wire.len() {
            let mut ring = Ring::with_capacity(64);
            ring.push(&vec![0u8; rot]);
            ring.consume(rot);
            let mut scratch = Vec::new();
            ring.push(&wire[..cut]);
            if cut < wire.len() {
                assert!(
                    ring.pop_frame(&mut scratch).expect("clean").is_none(),
                    "partial frame (rot {rot}, cut {cut}) must wait for completion"
                );
            }
            ring.push(&wire[cut..]);
            let frame = ring.pop_frame(&mut scratch).expect("clean").expect("complete");
            let view = RequestView::decode(frame).expect("valid frame");
            assert_eq!(view.to_owned(), request, "rot {rot}, cut {cut}");
            assert!(ring.pop_frame(&mut scratch).expect("clean").is_none());
        }
    }
}

/// The same sweep for a frame larger than the initial ring capacity: every
/// split point forces a mid-frame growth (which linearizes the buffer), and
/// the decode must still come back byte-identical.
#[test]
fn growth_at_every_split_boundary_decodes_identically() {
    let updates: Vec<Update> =
        (0..24).map(|i| Update { seq: i, idx: i as u32, bits: !(i as u32) }).collect();
    let request = Request::Update { table: 1, updates };
    let body = request.encode();
    let mut wire = (body.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&body);
    assert!(wire.len() > 64, "frame must overflow the initial ring");

    for cut in 0..=wire.len() {
        let mut ring = Ring::with_capacity(64);
        // Rotate into the upper half so early pushes wrap before growing.
        ring.push(&[0u8; 48]);
        ring.consume(48);
        let mut scratch = Vec::new();
        ring.push(&wire[..cut]);
        if cut < wire.len() {
            assert!(ring.pop_frame(&mut scratch).expect("clean").is_none());
        }
        ring.push(&wire[cut..]);
        let frame = ring.pop_frame(&mut scratch).expect("clean").expect("complete");
        assert_eq!(RequestView::decode(frame).expect("valid").to_owned(), request, "cut {cut}");
    }
}

/// A garbage frame after the handshake gets an `Error` reply over the
/// wire — the server survives hostile bytes rather than panicking or
/// silently hanging the connection.
#[test]
fn tcp_server_answers_garbage_frames_with_an_error_reply() {
    let config = ServeConfig::new(vec![TableSpec::i32("c", OpKind::Add, 16)]);
    let server = Server::bind(config, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);

    // Handshake by hand so we control every byte that follows.
    write_frame(&mut writer, &Request::Hello { version: PROTOCOL_VERSION }.encode())
        .expect("hello");
    let hello = read_frame(&mut reader).expect("hello reply").expect("frame");
    assert!(matches!(Reply::decode(&hello).expect("decode"), Reply::Hello { .. }));

    // An unknown opcode with junk payload must come back as Error.
    write_frame(&mut writer, &[0x5A, 0xDE, 0xAD, 0xBE, 0xEF]).expect("garbage");
    let reply = read_frame(&mut reader).expect("error reply").expect("frame");
    match Reply::decode(&reply).expect("decode") {
        Reply::Error(m) => assert!(m.contains("unknown request opcode"), "{m}"),
        other => panic!("expected an Error reply, got {other:?}"),
    }

    // The server refused the connection but is still alive: a fresh
    // connection handshakes and shuts it down cleanly.
    let mut check = invector_serve::TcpClient::connect(addr).expect("reconnect");
    let exposition =
        invector_serve::ServeClient::metrics(&mut check).expect("metrics after garbage");
    assert!(exposition.contains("invector_serve_epochs_total"));
    check.shutdown().expect("shutdown");
    server.join();

    // Quiet the unused-write warning path: flush the dead writer.
    let _ = writer.flush();
}

/// Hostile stream-verb parameters — wrong table kinds, unknown window
/// buckets, out-of-range top-k, out-of-range edge endpoints — all come
/// back as clean `Error` replies over the wire, and the connection stays
/// usable afterwards.
#[test]
fn stream_verbs_refuse_hostile_parameters_without_panicking() {
    use invector_serve::{ServeClient, TcpClient};

    let config = ServeConfig::new(vec![
        TableSpec::i32("flat", OpKind::Add, 16),
        TableSpec::wcc("components", 8),
        TableSpec::window("gauges", OpKind::Max, 4, 3, 2, true),
    ]);
    let server = Server::bind(config, "127.0.0.1:0").expect("bind loopback");
    let mut tcp = TcpClient::connect(server.local_addr()).expect("connect");

    // Edge ops against a non-graph table and against out-of-range vertices.
    let op = EdgeOp::insert(0, 2, 3);
    assert!(matches!(tcp.edge_ops(0, &[op]).unwrap(), invector_serve::SubmitOutcome::Failed(_)));
    let wild = EdgeOp::insert(0, 2, 99);
    assert!(matches!(tcp.edge_ops(1, &[wild]).unwrap(), invector_serve::SubmitOutcome::Failed(_)));
    assert!(matches!(tcp.edge_ops(999, &[op]).unwrap(), invector_serve::SubmitOutcome::Failed(_)));

    // Window queries against non-window tables and unknown bucket ids.
    assert!(tcp.window_query(0, 0).is_err(), "flat table has no windows");
    assert!(tcp.window_query(1, 0).is_err(), "graph table has no windows");
    assert!(tcp.window_query(2, 7777).is_err(), "bucket far past the watermark is unknown");
    assert!(tcp.window_query(2, u64::MAX).is_ok(), "current-aggregate probe always answers");

    // Top-k outside [1, region].
    assert!(tcp.top_k(0, 0).is_err());
    assert!(tcp.top_k(0, 17).is_err(), "flat table region is 16 slots");
    assert!(tcp.top_k(1, 9).is_err(), "graph region is 8 vertices");
    assert!(tcp.top_k(2, 5).is_err(), "window region is 4 keys");
    assert_eq!(tcp.top_k(2, 4).expect("in-range top-k").entries.len(), 4);

    // The same connection still serves honest traffic.
    let outcome = tcp.edge_ops(1, &[EdgeOp::insert(0, 2, 3)]).expect("edge ops");
    assert!(matches!(outcome, invector_serve::SubmitOutcome::Accepted { .. }));
    tcp.flush().expect("flush");
    tcp.shutdown().expect("shutdown");
    server.join();
}
