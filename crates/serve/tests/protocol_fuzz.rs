//! Decoder robustness properties for the wire protocol: no byte sequence
//! may panic `Request::decode` / `Reply::decode` — arbitrary garbage,
//! truncated prefixes of valid encodings, and unknown opcode tags must all
//! come back as clean `Err(Malformed)` (or a successful parse when the
//! bytes happen to spell a valid frame). A live TCP server answers a
//! malformed frame with an `Error` reply instead of dying.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use proptest::prelude::*;

use invector_serve::protocol::{read_frame, write_frame, Reply, Request, StatsSummary, Update};
use invector_serve::{OpKind, RejectReason, ServeConfig, Server, TableSpec, ValueKind};

fn arb_update() -> impl Strategy<Value = Update> {
    (any::<u64>(), any::<u32>(), any::<u32>()).prop_map(|(seq, idx, bits)| Update {
        seq,
        idx,
        bits,
    })
}

/// Every request variant, dispatched off a tag byte (the vendored proptest
/// shim has no `prop_oneof`).
fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..7, any::<u16>(), prop::collection::vec(arb_update(), 0..40)).prop_map(
        |(tag, word, updates)| match tag {
            0 => Request::Hello { version: word },
            1 => Request::Update { table: word, updates },
            2 => Request::Flush,
            3 => Request::Snapshot { table: word },
            4 => Request::Stats,
            5 => Request::Shutdown,
            _ => Request::Metrics,
        },
    )
}

fn arb_table_spec() -> impl Strategy<Value = TableSpec> {
    (0u8..2, 0u8..3, 1usize..512, prop::collection::vec(0u8..26, 1..12)).prop_map(
        |(kind, op, len, name)| TableSpec {
            name: name.into_iter().map(|c| (b'a' + c) as char).collect(),
            kind: if kind == 0 { ValueKind::F32 } else { ValueKind::I32 },
            op: match op {
                0 => OpKind::Add,
                1 => OpKind::Min,
                _ => OpKind::Max,
            },
            len,
        },
    )
}

/// Every reply variant, same tag-dispatch scheme.
fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        0u8..8,
        any::<u16>(),
        any::<u32>(),
        any::<u64>(),
        prop::collection::vec(any::<u32>(), 0..40),
        prop::collection::vec(arb_table_spec(), 0..4),
        prop::collection::vec(0u8..128, 0..60),
    )
        .prop_map(|(tag, word, accepted, watermark, values, tables, text)| {
            let text: String = text.into_iter().map(|c| c as char).collect();
            match tag {
                0 => Reply::Hello { version: word, shards: word, quantum: accepted, tables },
                1 => Reply::Ack { accepted, watermark },
                2 => Reply::Reject {
                    accepted,
                    retry_after_ms: accepted,
                    reason: match word % 3 {
                        0 => RejectReason::QueueFull,
                        1 => RejectReason::WindowExceeded,
                        _ => RejectReason::Draining,
                    },
                },
                3 => Reply::Snapshot { table: word, watermark, values },
                4 => Reply::Stats(StatsSummary {
                    epochs: watermark,
                    slices: watermark,
                    applied: watermark,
                    rejected: u64::from(accepted),
                    duplicates: u64::from(word),
                    occupancy: 0.5,
                    conflict_depth: 1.0,
                    updates_per_sec: 1e6,
                    p50_epoch_us: 10.0,
                    p99_epoch_us: 100.0,
                }),
                5 => Reply::Metrics(text),
                6 => Reply::Bye { watermarks: values.iter().map(|&v| u64::from(v)).collect() },
                _ => Reply::Error(text),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes never panic either decoder: every outcome is a
    /// clean `Ok` or `Err`.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        body in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = Request::decode(&body);
        let _ = Reply::decode(&body);
    }

    /// Every strict prefix of a valid request encoding is refused without
    /// panicking, and the full encoding still round-trips.
    #[test]
    fn truncated_request_frames_fail_cleanly(
        request in arb_request(),
        cut in any::<usize>(),
    ) {
        let body = request.encode();
        prop_assert_eq!(Request::decode(&body).unwrap(), request);
        if body.len() > 1 {
            let cut = 1 + cut % (body.len() - 1);
            prop_assert!(Request::decode(&body[..cut]).is_err(),
                "prefix of {} of {} bytes must not parse", cut, body.len());
        }
    }

    /// Reply encodings survive arbitrary truncation without panicking (a
    /// prefix may still parse when a length field shrinks to cover it, but
    /// it must never crash), and the full encoding round-trips.
    #[test]
    fn truncated_reply_frames_never_panic(
        reply in arb_reply(),
        cut in any::<usize>(),
    ) {
        let body = reply.encode();
        prop_assert_eq!(Reply::decode(&body).unwrap(), reply);
        let cut = cut % (body.len() + 1);
        let _ = Reply::decode(&body[..cut]);
    }

    /// Unknown opcode tags are refused up front, whatever payload follows.
    #[test]
    fn unknown_opcode_tags_are_refused(
        tag in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let known_request = (0x01..=0x07).contains(&tag);
        let known_reply = (0x81..=0x87).contains(&tag) || tag == 0xFF;
        let mut body = vec![tag];
        body.extend_from_slice(&payload);
        if !known_request {
            prop_assert!(Request::decode(&body).is_err());
        }
        if !known_reply {
            prop_assert!(Reply::decode(&body).is_err());
        }
    }

    /// Bit-flipping one byte of a valid encoding never panics the decoder.
    #[test]
    fn single_byte_corruption_never_panics(
        request in arb_request(),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut body = request.encode();
        let pos = pos % body.len();
        body[pos] ^= flip;
        let _ = Request::decode(&body);
    }
}

/// A garbage frame after the handshake gets an `Error` reply over the
/// wire — the server survives hostile bytes rather than panicking or
/// silently hanging the connection.
#[test]
fn tcp_server_answers_garbage_frames_with_an_error_reply() {
    let config = ServeConfig::new(vec![TableSpec::i32("c", OpKind::Add, 16)]);
    let server = Server::bind(config, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);

    // Handshake by hand so we control every byte that follows.
    write_frame(&mut writer, &Request::Hello { version: 1 }.encode()).expect("hello");
    let hello = read_frame(&mut reader).expect("hello reply").expect("frame");
    assert!(matches!(Reply::decode(&hello).expect("decode"), Reply::Hello { .. }));

    // An unknown opcode with junk payload must come back as Error.
    write_frame(&mut writer, &[0x5A, 0xDE, 0xAD, 0xBE, 0xEF]).expect("garbage");
    let reply = read_frame(&mut reader).expect("error reply").expect("frame");
    match Reply::decode(&reply).expect("decode") {
        Reply::Error(m) => assert!(m.contains("unknown request opcode"), "{m}"),
        other => panic!("expected an Error reply, got {other:?}"),
    }

    // The server refused the connection but is still alive: a fresh
    // connection handshakes and shuts it down cleanly.
    let mut check = invector_serve::TcpClient::connect(addr).expect("reconnect");
    let exposition =
        invector_serve::ServeClient::metrics(&mut check).expect("metrics after garbage");
    assert!(exposition.contains("invector_serve_epochs_total"));
    check.shutdown().expect("shutdown");
    server.join();

    // Quiet the unused-write warning path: flush the dead writer.
    let _ = writer.flush();
}
