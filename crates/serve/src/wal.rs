//! Durability: the write-ahead log of admitted batch slices plus the
//! snapshot checkpoint store, built on [`invector_replog`].
//!
//! The determinism contract does the heavy lifting. Slice cut positions
//! are a pure function of (stream content, policy schedule), and a slice's
//! result bits are a pure function of (slice content, policy) — so logging
//! each slice exactly as cut, *before* it is applied, is enough to
//! reproduce every table bit by replay. Records are opaque checksummed
//! payloads to `invector-replog`; this module owns their meaning:
//!
//! ```text
//! record := 0x01 Batch  table:u16 count:u32 count x (seq:u64 idx:u32 bits:u32)
//!         | 0x02 Seal   table:u16 watermark:u64 crc:u32
//! ```
//!
//! A `Batch` is one slice, reusing the wire update layout
//! ([`encode_updates`]). A `Seal` closes a table's epoch with the CRC-32
//! of its post-apply bit stream — the per-epoch state checksum that
//! recovery verifies and followers compare for exact divergence
//! detection. A torn tail (a `Batch` whose `Seal` never made it to disk)
//! replays fine: the batch was admitted, its bits are deterministic, only
//! the verification point is missing.
//!
//! Checkpoints bound replay: every table's full state is published to the
//! [`SnapshotStore`] under a manifest carrying per-table checksums, then
//! the log is reset. The manifest is a single framed record:
//!
//! ```text
//! manifest := version:u16 checkpoint:u64 count:u16
//!             count x (table:u16 kind:u8 op:u8 len:u64 watermark:u64 checksum:u32)
//! checkpoint-table := table:u16 watermark:u64 count:u32 count x bits:u32
//! ```

use std::path::PathBuf;

use invector_replog::{crc32, SnapshotStore, SyncPolicy, Wal};

use crate::protocol::{encode_updates, ProtoError, Update, UpdatesView};
use crate::table::{OpKind, TableData, TableSpec, ValueKind};

/// Durability configuration: where the log lives and how hard it syncs.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Directory holding `wal.log`, checkpoints, and the manifest.
    pub dir: PathBuf,
    /// When the log syncs to stable storage (`--wal-sync`).
    pub sync: SyncPolicy,
    /// Checkpoint after this many non-empty epochs (0 disables the
    /// epoch-count trigger).
    pub checkpoint_epochs: u64,
    /// Checkpoint once the log exceeds this many bytes (0 disables the
    /// size trigger). Whichever trigger fires first wins.
    pub checkpoint_bytes: u64,
}

impl WalOptions {
    /// Durability under `dir` with default sync (`epoch`) and checkpoint
    /// cadence (256 epochs or 32 MiB of log, whichever first).
    pub fn new(dir: impl Into<PathBuf>) -> WalOptions {
        WalOptions {
            dir: dir.into(),
            sync: SyncPolicy::default(),
            checkpoint_epochs: 256,
            checkpoint_bytes: 32 << 20,
        }
    }
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// One admitted batch slice, logged before application.
    Batch {
        /// Table id.
        table: u16,
        /// The slice, exactly as cut (contiguous `seq` run).
        updates: Vec<Update>,
    },
    /// A table's epoch boundary: its watermark and state CRC after the
    /// epoch's slices applied.
    Seal {
        /// Table id.
        table: u16,
        /// Applied watermark at the seal point.
        watermark: u64,
        /// CRC-32 over the table's slot bit patterns (little-endian),
        /// matching [`crate::table::TableState::checksum`].
        crc: u32,
    },
}

impl WalRecord {
    /// Encodes the record payload (framing and checksumming belong to
    /// `invector-replog`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Batch { table, updates } => {
                out.push(0x01);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&(updates.len() as u32).to_le_bytes());
                encode_updates(&mut out, updates);
            }
            WalRecord::Seal { table, watermark, crc } => {
                out.push(0x02);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&watermark.to_le_bytes());
                out.extend_from_slice(&crc.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a record payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] for unknown kinds, truncated
    /// payloads, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, ProtoError> {
        let (&kind, rest) = payload
            .split_first()
            .ok_or_else(|| ProtoError::Malformed("empty WAL record".into()))?;
        match kind {
            0x01 => {
                if rest.len() < 6 {
                    return Err(ProtoError::Malformed("truncated WAL batch header".into()));
                }
                let table = u16::from_le_bytes([rest[0], rest[1]]);
                let count = u32::from_le_bytes([rest[2], rest[3], rest[4], rest[5]]) as usize;
                let body = &rest[6..];
                let view = UpdatesView::over(body)?;
                if view.len() != count {
                    return Err(ProtoError::Malformed(format!(
                        "WAL batch claims {count} updates, carries {}",
                        view.len()
                    )));
                }
                Ok(WalRecord::Batch { table, updates: view.iter().collect() })
            }
            0x02 => {
                if rest.len() != 14 {
                    return Err(ProtoError::Malformed("WAL seal is 14 payload bytes".into()));
                }
                let table = u16::from_le_bytes([rest[0], rest[1]]);
                let watermark = u64::from_le_bytes(rest[2..10].try_into().expect("8 bytes"));
                let crc = u32::from_le_bytes(rest[10..14].try_into().expect("4 bytes"));
                Ok(WalRecord::Seal { table, watermark, crc })
            }
            other => Err(ProtoError::Malformed(format!("unknown WAL record kind {other:#04x}"))),
        }
    }
}

/// One table's row in the checkpoint manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Table id.
    pub table: u16,
    /// Element type, for spec validation on load.
    pub kind: ValueKind,
    /// Operator, for spec validation on load.
    pub op: OpKind,
    /// Slot count.
    pub len: u64,
    /// Applied watermark at checkpoint time.
    pub watermark: u64,
    /// CRC-32 over the table's slot bit patterns.
    pub checksum: u32,
}

/// Current manifest layout version.
const MANIFEST_VERSION: u16 = 1;

/// Encodes the checkpoint manifest record.
pub fn encode_manifest(checkpoint: u64, entries: &[ManifestEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + entries.len() * 24);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&checkpoint.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.table.to_le_bytes());
        out.push(e.kind as u8);
        out.push(e.op as u8);
        out.extend_from_slice(&e.len.to_le_bytes());
        out.extend_from_slice(&e.watermark.to_le_bytes());
        out.extend_from_slice(&e.checksum.to_le_bytes());
    }
    out
}

/// Decodes a checkpoint manifest record.
///
/// # Errors
///
/// Returns [`ProtoError::Malformed`] for version or layout mismatches.
pub fn decode_manifest(payload: &[u8]) -> Result<(u64, Vec<ManifestEntry>), ProtoError> {
    let too_short = || ProtoError::Malformed("truncated checkpoint manifest".into());
    if payload.len() < 12 {
        return Err(too_short());
    }
    let version = u16::from_le_bytes([payload[0], payload[1]]);
    if version != MANIFEST_VERSION {
        return Err(ProtoError::Malformed(format!(
            "manifest version {version}, expected {MANIFEST_VERSION}"
        )));
    }
    let checkpoint = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    let count = u16::from_le_bytes([payload[10], payload[11]]) as usize;
    let mut rest = &payload[12..];
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        if rest.len() < 24 {
            return Err(too_short());
        }
        let kind = match rest[2] {
            0 => ValueKind::F32,
            1 => ValueKind::I32,
            other => return Err(ProtoError::Malformed(format!("unknown value kind {other}"))),
        };
        let op = match rest[3] {
            0 => OpKind::Add,
            1 => OpKind::Min,
            2 => OpKind::Max,
            other => return Err(ProtoError::Malformed(format!("unknown op kind {other}"))),
        };
        entries.push(ManifestEntry {
            table: u16::from_le_bytes([rest[0], rest[1]]),
            kind,
            op,
            len: u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes")),
            watermark: u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes")),
            checksum: u32::from_le_bytes(rest[20..24].try_into().expect("4 bytes")),
        });
        rest = &rest[24..];
    }
    if !rest.is_empty() {
        return Err(ProtoError::Malformed("trailing bytes after manifest entries".into()));
    }
    Ok((checkpoint, entries))
}

/// Encodes one table's checkpoint record (`table watermark count bits…`).
pub fn encode_checkpoint_table(table: u16, watermark: u64, data: &TableData) -> Vec<u8> {
    let bits = data.to_bits();
    let mut out = Vec::with_capacity(14 + 4 * bits.len());
    out.extend_from_slice(&table.to_le_bytes());
    out.extend_from_slice(&watermark.to_le_bytes());
    out.extend_from_slice(&(bits.len() as u32).to_le_bytes());
    for b in bits {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

/// Decodes one table's checkpoint record into typed data under `spec`.
///
/// # Errors
///
/// Returns [`ProtoError::Malformed`] for layout damage or a slot count
/// that disagrees with `spec`.
pub fn decode_checkpoint_table(
    payload: &[u8],
    spec: &TableSpec,
) -> Result<(u16, u64, TableData, u32), ProtoError> {
    if payload.len() < 14 {
        return Err(ProtoError::Malformed("truncated checkpoint table record".into()));
    }
    let table = u16::from_le_bytes([payload[0], payload[1]]);
    let watermark = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(payload[10..14].try_into().expect("4 bytes")) as usize;
    let body = &payload[14..];
    if body.len() != 4 * count {
        return Err(ProtoError::Malformed(format!(
            "checkpoint table record claims {count} slots, carries {} bytes",
            body.len()
        )));
    }
    if count != spec.len {
        return Err(ProtoError::Malformed(format!(
            "checkpoint of {count} slots for table '{}' of {} slots",
            spec.name, spec.len
        )));
    }
    // The state checksum is over exactly these little-endian bytes.
    let checksum = crc32(body);
    let bits = body.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")));
    let data = match spec.kind {
        ValueKind::F32 => TableData::F32(bits.map(f32::from_bits).collect()),
        ValueKind::I32 => TableData::I32(bits.map(|b| b as i32).collect()),
    };
    Ok((table, watermark, data, checksum))
}

/// The server's live durability state, locked as one unit (lock order:
/// tick lock → WAL → table locks).
#[derive(Debug)]
pub struct WalState {
    options: WalOptions,
    store: SnapshotStore,
    wal: Wal,
    /// Framed record payloads appended since the last checkpoint, kept in
    /// memory so followers can tail without the server re-reading its own
    /// log file. Index `i` of this vector is log index `i` of the current
    /// checkpoint generation.
    tail: Vec<Vec<u8>>,
    /// Checkpoint generation: starts at 0, bumps on every published
    /// checkpoint. A follower at a different generation re-bootstraps.
    checkpoint: u64,
    /// Non-empty epochs since the last checkpoint.
    epochs_since: u64,
}

/// What recovery reconstructed before the core applies it.
#[derive(Debug)]
pub struct WalRecovery {
    /// Per-table state to install (from the checkpoint, or identity
    /// fresh), with its watermark.
    pub installed: Vec<(TableData, u64)>,
    /// Expected per-table checksums for the installed state (from the
    /// manifest), `None` on a fresh start.
    pub install_checksums: Option<Vec<u32>>,
    /// Decoded log records to replay through the epoch path, in order.
    pub replay: Vec<WalRecord>,
    /// Human-readable note when a torn tail was truncated.
    pub torn: Option<String>,
}

impl WalState {
    /// Opens (or creates) the durability directory and reconstructs the
    /// state to recover: latest checkpoint + valid log prefix.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a corrupt manifest or checkpoint, or a
    /// manifest that disagrees with `specs` — a damaged store refuses to
    /// serve rather than starting fresh over data that existed.
    pub fn open(
        options: WalOptions,
        specs: &[TableSpec],
    ) -> Result<(WalState, WalRecovery), String> {
        let store = SnapshotStore::open(&options.dir)
            .map_err(|e| format!("open WAL dir {}: {e}", options.dir.display()))?;
        let manifest = store.manifest().map_err(|e| format!("read checkpoint manifest: {e}"))?;
        let (checkpoint, installed, install_checksums) = match manifest {
            None => (0, Vec::new(), None),
            Some(bytes) => {
                let (checkpoint, entries) =
                    decode_manifest(&bytes).map_err(|e| format!("checkpoint manifest: {e}"))?;
                if entries.len() != specs.len() {
                    return Err(format!(
                        "checkpoint manifest has {} tables, server is configured with {}",
                        entries.len(),
                        specs.len()
                    ));
                }
                let records = store
                    .read_checkpoint(checkpoint)
                    .map_err(|e| format!("read checkpoint {checkpoint}: {e}"))?;
                if records.len() != entries.len() {
                    return Err(format!(
                        "checkpoint {checkpoint} has {} table records, manifest lists {}",
                        records.len(),
                        entries.len()
                    ));
                }
                let mut installed = Vec::with_capacity(entries.len());
                let mut checksums = Vec::with_capacity(entries.len());
                for (t, (entry, record)) in entries.iter().zip(&records).enumerate() {
                    let spec = &specs[t];
                    if entry.table as usize != t
                        || entry.kind != spec.kind
                        || entry.op != spec.op
                        || entry.len != spec.len as u64
                    {
                        return Err(format!(
                            "manifest row {t} ({:?} {:?} len {}) disagrees with configured \
                             table '{}' ({:?} {:?} len {})",
                            entry.kind,
                            entry.op,
                            entry.len,
                            spec.name,
                            spec.kind,
                            spec.op,
                            spec.len
                        ));
                    }
                    let (table, watermark, data, checksum) = decode_checkpoint_table(record, spec)
                        .map_err(|e| format!("checkpoint table {t}: {e}"))?;
                    if table as usize != t {
                        return Err(format!("checkpoint record {t} is for table {table}"));
                    }
                    if watermark != entry.watermark {
                        return Err(format!(
                            "checkpoint table {t} watermark {watermark} != manifest {}",
                            entry.watermark
                        ));
                    }
                    if checksum != entry.checksum {
                        return Err(format!(
                            "checkpoint table {t} checksum {checksum:#010x} != manifest \
                             {:#010x} — refusing to serve corrupt state",
                            entry.checksum
                        ));
                    }
                    installed.push((data, watermark));
                    checksums.push(entry.checksum);
                }
                (checkpoint, installed, Some(checksums))
            }
        };
        let recovered = invector_replog::recover(&store.wal_path())
            .map_err(|e| format!("recover WAL {}: {e}", store.wal_path().display()))?;
        let mut replay = Vec::with_capacity(recovered.records.len());
        for (i, payload) in recovered.records.iter().enumerate() {
            replay.push(WalRecord::decode(payload).map_err(|e| format!("WAL record {i}: {e}"))?);
        }
        let tail = recovered.records;
        let wal = Wal::open(&store.wal_path())
            .map_err(|e| format!("open WAL {}: {e}", store.wal_path().display()))?;
        let state = WalState { options, store, wal, tail, checkpoint, epochs_since: 0 };
        let recovery = WalRecovery { installed, install_checksums, replay, torn: recovered.torn };
        Ok((state, recovery))
    }

    /// The configured options.
    pub fn options(&self) -> &WalOptions {
        &self.options
    }

    /// Current checkpoint generation.
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint
    }

    /// Log records in the current generation (the head index a follower
    /// catches up to).
    pub fn head(&self) -> u64 {
        self.tail.len() as u64
    }

    /// The framed payloads from log index `index`, at most `max_bytes`
    /// worth (always at least one record if any remain).
    pub fn records_from(&self, index: u64, max_bytes: u32) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut budget = max_bytes as usize;
        for payload in self.tail.iter().skip(index as usize) {
            if !out.is_empty() && payload.len() > budget {
                break;
            }
            budget = budget.saturating_sub(payload.len());
            out.push(payload.clone());
        }
        out
    }

    /// Appends one record: to the on-disk log and to the in-memory tail.
    /// Returns the framed byte count. Syncs immediately only under
    /// `SyncPolicy::Always`.
    ///
    /// # Errors
    ///
    /// Propagates log write failures.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<u64> {
        let payload = record.encode();
        let before = self.wal.bytes();
        self.wal.append(&payload)?;
        if self.options.sync == SyncPolicy::Always {
            self.wal.sync()?;
        }
        self.tail.push(payload);
        Ok(self.wal.bytes() - before)
    }

    /// Epoch-boundary sync under `SyncPolicy::Epoch` (a no-op otherwise).
    /// Returns whether a sync was issued.
    ///
    /// # Errors
    ///
    /// Propagates sync failures.
    pub fn sync_epoch(&mut self) -> std::io::Result<bool> {
        if self.options.sync == SyncPolicy::Os {
            return Ok(false);
        }
        if self.options.sync == SyncPolicy::Epoch {
            self.wal.sync()?;
            return Ok(true);
        }
        // Always-mode already synced per append.
        Ok(false)
    }

    /// Notes a completed non-empty epoch; `true` when a checkpoint is due
    /// by either trigger.
    pub fn note_epoch(&mut self) -> bool {
        self.epochs_since += 1;
        let by_epochs = self.options.checkpoint_epochs > 0
            && self.epochs_since >= self.options.checkpoint_epochs;
        let by_bytes =
            self.options.checkpoint_bytes > 0 && self.wal.bytes() >= self.options.checkpoint_bytes;
        by_epochs || by_bytes
    }

    /// Publishes a checkpoint — `entries` (the manifest rows, id order)
    /// and `records` (the matching encoded table states) — then bumps the
    /// generation and truncates the log.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures; the previous checkpoint stays
    /// authoritative if publish fails before the manifest swap.
    pub fn publish_checkpoint(
        &mut self,
        entries: &[ManifestEntry],
        records: &[Vec<u8>],
    ) -> std::io::Result<()> {
        debug_assert_eq!(entries.len(), records.len());
        let next = self.checkpoint + 1;
        let manifest = encode_manifest(next, entries);
        self.store.write_checkpoint(next, records.iter().map(Vec::as_slice), &manifest)?;
        self.wal.reset()?;
        self.tail.clear();
        self.checkpoint = next;
        self.epochs_since = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("invector-serve-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn batch(table: u16, start: u64, count: u32) -> WalRecord {
        let updates = (0..count).map(|i| Update::i32(start + u64::from(i), i, i as i32)).collect();
        WalRecord::Batch { table, updates }
    }

    #[test]
    fn records_round_trip_and_reject_damage() {
        for record in [
            batch(3, 100, 5),
            WalRecord::Batch { table: 0, updates: Vec::new() },
            WalRecord::Seal { table: 7, watermark: u64::MAX, crc: 0xDEAD_BEEF },
        ] {
            let bytes = record.encode();
            assert_eq!(WalRecord::decode(&bytes).expect("decode"), record);
        }

        assert!(WalRecord::decode(&[]).is_err(), "empty payload");
        assert!(WalRecord::decode(&[0x03]).is_err(), "unknown kind");
        let mut seal = WalRecord::Seal { table: 1, watermark: 2, crc: 3 }.encode();
        seal.pop();
        assert!(WalRecord::decode(&seal).is_err(), "truncated seal");
        let mut b = batch(1, 0, 2).encode();
        b.push(0);
        assert!(WalRecord::decode(&b).is_err(), "trailing byte in batch");
        // A count field that disagrees with the carried update bytes.
        let mut lying = batch(1, 0, 2).encode();
        lying[3] = 9;
        assert!(WalRecord::decode(&lying).is_err(), "count/body mismatch");
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let entries = vec![
            ManifestEntry {
                table: 0,
                kind: ValueKind::F32,
                op: OpKind::Add,
                len: 1024,
                watermark: 4096,
                checksum: 0x1234_5678,
            },
            ManifestEntry {
                table: 1,
                kind: ValueKind::I32,
                op: OpKind::Max,
                len: 17,
                watermark: 0,
                checksum: 0,
            },
        ];
        let bytes = encode_manifest(42, &entries);
        let (checkpoint, back) = decode_manifest(&bytes).expect("decode");
        assert_eq!(checkpoint, 42);
        assert_eq!(back, entries);

        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(decode_manifest(&wrong_version).is_err(), "version check");
        assert!(decode_manifest(&bytes[..bytes.len() - 1]).is_err(), "truncated row");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_manifest(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn checkpoint_table_codec_round_trips_under_spec() {
        let spec = TableSpec::i32("t", OpKind::Add, 6);
        let data = TableData::I32(vec![1, -2, 3, -4, 5, -6]);
        let bytes = encode_checkpoint_table(4, 99, &data);
        let (table, watermark, back, checksum) =
            decode_checkpoint_table(&bytes, &spec).expect("decode");
        assert_eq!((table, watermark), (4, 99));
        assert_eq!(back, data);
        assert_eq!(checksum, crate::protocol::snapshot_checksum(&data.to_bits()));

        let short = TableSpec::i32("t", OpKind::Add, 5);
        assert!(decode_checkpoint_table(&bytes, &short).is_err(), "spec len mismatch");
        assert!(decode_checkpoint_table(&bytes[..13], &spec).is_err(), "truncated header");
    }

    #[test]
    fn appended_records_survive_reopen_and_checkpoint_truncates() {
        let dir = temp_dir("reopen");
        let specs = vec![TableSpec::i32("t", OpKind::Add, 8)];
        let options = WalOptions::new(&dir);

        let (mut state, recovery) = WalState::open(options.clone(), &specs).expect("fresh open");
        assert!(recovery.installed.is_empty());
        assert!(recovery.replay.is_empty());
        let records = [batch(0, 0, 4), WalRecord::Seal { table: 0, watermark: 4, crc: 7 }];
        for r in &records {
            state.append(r).expect("append");
        }
        state.sync_epoch().expect("sync");
        assert_eq!(state.head(), 2);
        drop(state);

        let (mut state, recovery) = WalState::open(options.clone(), &specs).expect("reopen");
        assert_eq!(recovery.replay, records, "log replays in order");
        assert_eq!(state.head(), 2, "tail rebuilt from disk");

        // Publish a checkpoint: generation bumps, log truncates, and a
        // third open installs the checkpointed state with no replay.
        let data = TableData::I32(vec![5; 8]);
        let entry = ManifestEntry {
            table: 0,
            kind: ValueKind::I32,
            op: OpKind::Add,
            len: 8,
            watermark: 4,
            checksum: crate::protocol::snapshot_checksum(&data.to_bits()),
        };
        let record = encode_checkpoint_table(0, 4, &data);
        state.publish_checkpoint(&[entry], &[record]).expect("checkpoint");
        assert_eq!(state.checkpoint(), 1);
        assert_eq!(state.head(), 0);
        drop(state);

        let (state, recovery) = WalState::open(options, &specs).expect("post-checkpoint open");
        assert_eq!(state.checkpoint(), 1);
        assert!(recovery.replay.is_empty());
        assert_eq!(recovery.installed, vec![(data, 4)]);
        assert_eq!(recovery.install_checksums, Some(vec![entry.checksum]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_first_bad_crc() {
        let dir = temp_dir("torn");
        let specs = vec![TableSpec::i32("t", OpKind::Add, 8)];
        let options = WalOptions::new(&dir);
        let (mut state, _) = WalState::open(options.clone(), &specs).expect("open");
        let good = batch(0, 0, 4);
        state.append(&good).expect("append good");
        state.append(&batch(0, 4, 4)).expect("append to tear");
        state.sync_epoch().expect("sync");
        let wal_path = state.store.wal_path();
        drop(state);

        // Flip a bit in the last record's payload: its frame CRC no longer
        // matches, so recovery must keep only the first record.
        let mut bytes = std::fs::read(&wal_path).expect("read log");
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40;
        std::fs::write(&wal_path, &bytes).expect("rewrite log");

        let (state, recovery) = WalState::open(options, &specs).expect("reopen");
        assert_eq!(recovery.replay, vec![good], "valid prefix survives");
        assert!(recovery.torn.is_some(), "truncation is reported");
        assert_eq!(state.head(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_table_count_mismatch_refuses_to_open() {
        let dir = temp_dir("refuse");
        let specs = vec![TableSpec::i32("t", OpKind::Add, 4)];
        let options = WalOptions::new(&dir);
        let (mut state, _) = WalState::open(options.clone(), &specs).expect("open");
        let data = TableData::I32(vec![0; 4]);
        let entry = ManifestEntry {
            table: 0,
            kind: ValueKind::I32,
            op: OpKind::Add,
            len: 4,
            watermark: 0,
            checksum: crate::protocol::snapshot_checksum(&data.to_bits()),
        };
        state
            .publish_checkpoint(&[entry], &[encode_checkpoint_table(0, 0, &data)])
            .expect("checkpoint");
        drop(state);

        let two = vec![TableSpec::i32("t", OpKind::Add, 4), TableSpec::i32("u", OpKind::Add, 4)];
        assert!(WalState::open(options.clone(), &two).is_err(), "table count mismatch");
        let wrong_kind = vec![TableSpec::f32("t", OpKind::Add, 4)];
        assert!(WalState::open(options, &wrong_kind).is_err(), "kind mismatch");
        std::fs::remove_dir_all(&dir).ok();
    }
}
