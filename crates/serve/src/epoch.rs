//! Epoch bookkeeping: the seq-ordered reorder buffer and per-epoch
//! statistics.
//!
//! The service applies each table's update stream in **contiguous sequence
//! order**, exactly like a replicated log: updates may arrive on any
//! connection in any interleaving, but an update is only folded into the
//! table once every earlier stream position has been. The reorder buffer
//! is the holding pen between arrival order and application order.

use std::collections::BTreeMap;
use std::time::Duration;

use invector_core::stats::DepthHistogram;

use crate::protocol::{StatsSummary, Update};

/// Buffers out-of-order arrivals and releases the contiguous prefix.
///
/// `watermark` is the next stream position to apply; everything below it
/// has already been folded into the table. Insertions below the watermark
/// or at an occupied position are duplicates and are dropped (counted).
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    held: BTreeMap<u64, (u32, u32)>,
    watermark: u64,
    duplicates: u64,
}

impl ReorderBuffer {
    /// An empty buffer at watermark 0.
    pub fn new() -> ReorderBuffer {
        ReorderBuffer::default()
    }

    /// Next stream position to apply.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Updates currently held (contiguous or not).
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Duplicate insertions dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Buffers one update; returns `false` for duplicates (position
    /// already applied or already held).
    pub fn insert(&mut self, u: Update) -> bool {
        if u.seq < self.watermark {
            self.duplicates += 1;
            return false;
        }
        match self.held.entry(u.seq) {
            std::collections::btree_map::Entry::Occupied(_) => {
                self.duplicates += 1;
                false
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((u.idx, u.bits));
                true
            }
        }
    }

    /// Length of the contiguous run starting at the watermark.
    pub fn contiguous_len(&self) -> usize {
        let mut expect = self.watermark;
        for &seq in self.held.keys() {
            if seq != expect {
                break;
            }
            expect += 1;
        }
        (expect - self.watermark) as usize
    }

    /// Removes exactly `n` updates from the contiguous run into `out`
    /// (cleared first), advancing the watermark.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` contiguous updates are available — callers
    /// size `n` from [`contiguous_len`](Self::contiguous_len) under the
    /// same lock.
    pub fn pop_run(&mut self, n: usize, out: &mut Vec<Update>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            let (seq, (idx, bits)) =
                self.held.pop_first().expect("pop_run past the buffered updates");
            assert_eq!(seq, self.watermark, "pop_run past the contiguous run");
            out.push(Update { seq, idx, bits });
            self.watermark += 1;
        }
    }
}

/// One epoch's outcome: what [`tick`](crate::server::ServerCore::tick)
/// applied.
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Updates applied across all tables.
    pub applied: usize,
    /// Batch slices executed.
    pub slices: usize,
    /// Wall time of the tick.
    pub elapsed: Duration,
}

/// Bounded ring of recent epoch latencies for percentile reporting.
const LATENCY_RING: usize = 4096;

/// Running service statistics, updated by the epoch executor and admission
/// path, summarized on a `Stats` request.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Epochs that applied at least one slice.
    pub epochs: u64,
    /// Batch slices executed.
    pub slices: u64,
    /// Updates applied.
    pub applied: u64,
    /// Updates refused admission.
    pub rejected: u64,
    /// Slice capacity offered (slices × quantum), for occupancy.
    offered: u64,
    /// Merged conflict-depth histogram across applied slices.
    pub depth: DepthHistogram,
    /// Total epoch execution time.
    pub busy: Duration,
    /// Recent epoch latencies (ring, capacity [`LATENCY_RING`]).
    latencies: Vec<Duration>,
    /// Next ring slot to overwrite.
    cursor: usize,
}

impl ServeStats {
    /// Records one executed epoch.
    pub fn record_epoch(&mut self, report: &EpochReport, quantum: usize, depth: &DepthHistogram) {
        if report.slices == 0 {
            return;
        }
        self.epochs += 1;
        self.slices += report.slices as u64;
        self.applied += report.applied as u64;
        self.offered += (report.slices * quantum) as u64;
        self.depth.merge(depth);
        self.busy += report.elapsed;
        if self.latencies.len() < LATENCY_RING {
            self.latencies.push(report.elapsed);
        } else {
            self.latencies[self.cursor] = report.elapsed;
            self.cursor = (self.cursor + 1) % LATENCY_RING;
        }
    }

    /// Records refused admissions.
    pub fn record_rejects(&mut self, n: u64) {
        self.rejected += n;
    }

    /// Epoch latency percentile over the recent ring (`q` in `[0, 1]`).
    fn latency_quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[rank]
    }

    /// Condenses the running counters into the wire summary.
    pub fn summarize(&self, duplicates: u64) -> StatsSummary {
        let busy = self.busy.as_secs_f64();
        StatsSummary {
            epochs: self.epochs,
            slices: self.slices,
            applied: self.applied,
            rejected: self.rejected,
            duplicates,
            occupancy: if self.offered == 0 {
                0.0
            } else {
                self.applied as f64 / self.offered as f64
            },
            conflict_depth: self.depth.mean(),
            updates_per_sec: if busy > 0.0 { self.applied as f64 / busy } else { 0.0 },
            p50_epoch_us: self.latency_quantile(0.50).as_secs_f64() * 1e6,
            p99_epoch_us: self.latency_quantile(0.99).as_secs_f64() * 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_buffer_releases_only_the_contiguous_prefix() {
        let mut b = ReorderBuffer::new();
        for seq in [3u64, 0, 5, 1] {
            assert!(b.insert(Update::i32(seq, 0, 1)));
        }
        assert_eq!(b.contiguous_len(), 2, "0 and 1 are contiguous; 3 and 5 wait");
        let mut out = Vec::new();
        b.pop_run(2, &mut out);
        assert_eq!(out.iter().map(|u| u.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(b.watermark(), 2);
        assert_eq!(b.contiguous_len(), 0, "gap at 2");
        b.insert(Update::i32(2, 0, 1));
        b.insert(Update::i32(4, 0, 1));
        assert_eq!(b.contiguous_len(), 4, "2..=5 now contiguous");
    }

    #[test]
    fn stale_and_double_insertions_count_as_duplicates() {
        let mut b = ReorderBuffer::new();
        assert!(b.insert(Update::i32(0, 0, 1)));
        assert!(!b.insert(Update::i32(0, 9, 9)));
        let mut out = Vec::new();
        b.pop_run(1, &mut out);
        assert!(!b.insert(Update::i32(0, 0, 1)), "below watermark");
        assert_eq!(b.duplicates(), 2);
    }

    #[test]
    fn stats_summary_reports_occupancy_and_percentiles() {
        let mut s = ServeStats::default();
        let depth = DepthHistogram::new();
        for i in 0..10 {
            let report = EpochReport {
                applied: 96,
                slices: 1,
                elapsed: Duration::from_micros(100 + i * 10),
            };
            s.record_epoch(&report, 128, &depth);
        }
        s.record_rejects(7);
        let sum = s.summarize(3);
        assert_eq!(sum.epochs, 10);
        assert_eq!(sum.applied, 960);
        assert_eq!(sum.rejected, 7);
        assert_eq!(sum.duplicates, 3);
        assert!((sum.occupancy - 0.75).abs() < 1e-9);
        assert!(sum.p50_epoch_us >= 100.0 && sum.p50_epoch_us <= 190.0);
        assert!(sum.p99_epoch_us >= sum.p50_epoch_us);
        assert!(sum.updates_per_sec > 0.0);
    }

    #[test]
    fn empty_epochs_do_not_skew_statistics() {
        let mut s = ServeStats::default();
        s.record_epoch(&EpochReport::default(), 128, &DepthHistogram::new());
        assert_eq!(s.epochs, 0);
        assert_eq!(s.summarize(0).p50_epoch_us, 0.0);
    }
}
