//! Epoch bookkeeping: the seq-ordered reorder buffer and per-epoch
//! statistics.
//!
//! The service applies each table's update stream in **contiguous sequence
//! order**, exactly like a replicated log: updates may arrive on any
//! connection in any interleaving, but an update is only folded into the
//! table once every earlier stream position has been. The reorder buffer
//! is the holding pen between arrival order and application order.

use std::collections::VecDeque;
use std::time::Duration;

use invector_core::stats::DepthHistogram;
use invector_core::tune::{EpochPolicy, MetricFrame};
use invector_obs::{Counter, Gauge, Histogram, Registry};

use crate::protocol::{StatsSummary, Update};

/// Buffers out-of-order arrivals and releases the contiguous prefix.
///
/// `watermark` is the next stream position to apply; everything below it
/// has already been folded into the table. Insertions below the watermark
/// or at an occupied position are duplicates and are dropped (counted).
///
/// Storage is a dense ring keyed by offset from the watermark — slot `i`
/// holds stream position `watermark + i`. Admission bounds how far ahead
/// of the watermark a sequence number may land (`config.window`), so the
/// ring stays small, and the all-in-order common case costs one push and
/// one pop per update instead of a tree rebalance. This buffer sits on
/// the per-update serving path of every table, where a map lookup per
/// update dominated epoch time for cheap-op tables.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    held: VecDeque<Option<(u32, u32)>>,
    len: usize,
    watermark: u64,
    duplicates: u64,
}

impl ReorderBuffer {
    /// An empty buffer at watermark 0.
    pub fn new() -> ReorderBuffer {
        ReorderBuffer::default()
    }

    /// Next stream position to apply.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Updates currently held (contiguous or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Duplicate insertions dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Buffers one update; returns `false` for duplicates (position
    /// already applied or already held).
    pub fn insert(&mut self, u: Update) -> bool {
        if u.seq < self.watermark {
            self.duplicates += 1;
            return false;
        }
        let off = (u.seq - self.watermark) as usize;
        if off >= self.held.len() {
            self.held.resize(off + 1, None);
        }
        match &mut self.held[off] {
            Some(_) => {
                self.duplicates += 1;
                false
            }
            slot @ None => {
                *slot = Some((u.idx, u.bits));
                self.len += 1;
                true
            }
        }
    }

    /// Length of the contiguous run starting at the watermark.
    pub fn contiguous_len(&self) -> usize {
        self.held.iter().take_while(|slot| slot.is_some()).count()
    }

    /// Removes exactly `n` updates from the contiguous run into `out`
    /// (cleared first), advancing the watermark.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` contiguous updates are available — callers
    /// size `n` from [`contiguous_len`](Self::contiguous_len) under the
    /// same lock.
    pub fn pop_run(&mut self, n: usize, out: &mut Vec<Update>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            let (idx, bits) =
                self.held.pop_front().flatten().expect("pop_run past the contiguous run");
            self.len -= 1;
            out.push(Update { seq: self.watermark, idx, bits });
            self.watermark += 1;
        }
    }

    /// Fast-forwards the watermark without popping: positions below `to`
    /// were applied externally (checkpoint install, logged-slice replay).
    /// Any update buffered below the new watermark is dropped as already
    /// applied.
    ///
    /// # Panics
    ///
    /// Panics on a watermark regression — recovery only ever moves forward.
    pub fn advance_to(&mut self, to: u64) {
        assert!(to >= self.watermark, "watermark regression {} -> {to}", self.watermark);
        let skip = (to - self.watermark) as usize;
        for _ in 0..skip.min(self.held.len()) {
            if self.held.pop_front().flatten().is_some() {
                self.len -= 1;
            }
        }
        self.watermark = to;
    }
}

/// One epoch's outcome: what [`tick`](crate::server::ServerCore::tick)
/// applied.
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Updates applied across all tables.
    pub applied: usize,
    /// Batch slices executed.
    pub slices: usize,
    /// Slice capacity offered (Σ per-slice quantum) — the occupancy
    /// denominator. Tracked per slice because the quantum may change
    /// between epochs under tuning.
    pub offered: usize,
    /// SIMD vector iterations the slices ran (16 lane slots each), for
    /// utilization accounting.
    pub vectors: u64,
    /// Wall time of the tick.
    pub elapsed: Duration,
}

/// Upper bucket bounds of the epoch latency histogram, in microseconds
/// (an `+Inf` bucket is implicit).
const LATENCY_BOUNDS_US: [f64; 16] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 20000.0,
    50000.0, 100000.0,
];

/// SIMD lanes per vector (AVX-512, 32-bit elements) — the slot count a
/// vector iteration offers for utilization accounting.
const LANES: u64 = 16;

/// Service statistics as a set of handles into a per-core metric registry.
///
/// Every record-side call is lock-free (relaxed adds on the calling
/// thread's registry shard), so the admission path and the epoch executor
/// never serialize on a stats mutex; reads merge the shards on demand.
/// With the `obs` feature disabled the handles still exist but every
/// record is a no-op and reads return zero.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// `invector_serve_epochs_total`: epochs that applied ≥ 1 slice.
    epochs: Counter,
    /// `invector_serve_slices_total`: batch slices executed.
    slices: Counter,
    /// `invector_serve_applied_total`: updates applied.
    applied: Counter,
    /// `invector_serve_rejected_total`: updates refused admission.
    rejected: Counter,
    /// `invector_serve_offered_total`: slice capacity offered
    /// (slices × quantum), for occupancy.
    offered: Counter,
    /// `invector_serve_busy_ns_total`: total epoch execution time.
    busy_ns: Counter,
    /// `invector_serve_lanes_useful_total`: lane slots that applied an
    /// update.
    lanes_useful: Counter,
    /// `invector_serve_lane_slots_total`: lane slots executed.
    lane_slots: Counter,
    /// `invector_serve_utilization_ratio`: running useful / executed.
    utilization: Gauge,
    /// `invector_serve_conflict_depth`: per-vector conflict depth (D1).
    depth: Histogram,
    /// `invector_serve_epoch_latency_us`: epoch wall time.
    latency_us: Histogram,
    /// `invector_serve_wal_appends_total`: batch records appended to the
    /// write-ahead log.
    wal_appends: Counter,
    /// `invector_serve_wal_bytes_total`: framed bytes appended to the log.
    wal_bytes: Counter,
    /// `invector_serve_wal_fsyncs_total`: explicit log syncs issued.
    wal_fsyncs: Counter,
    /// `invector_serve_wal_replayed_total`: updates replayed from the log
    /// during recovery or follower tailing.
    wal_replayed: Counter,
    /// `invector_serve_wal_checkpoints_total`: snapshot checkpoints
    /// published (each truncates the log).
    wal_checkpoints: Counter,
    /// `invector_serve_follower_lag_records`: log records the follower
    /// still has to fetch, from the last `LogRecords` head.
    follower_lag: Gauge,
    /// `invector_serve_follower_epochs_verified_total`: seal checksums a
    /// follower matched against its own state.
    follower_verified: Counter,
}

impl ServeStats {
    /// Registers the service metric set on `registry` and returns the
    /// handle bundle. Registration is idempotent: two `ServeStats` on the
    /// same registry share storage.
    pub fn new(registry: &Registry) -> ServeStats {
        let depth_bounds: Vec<f64> = (0..=16).map(f64::from).collect();
        ServeStats {
            epochs: registry
                .counter("invector_serve_epochs_total", "epochs that applied at least one slice"),
            slices: registry.counter("invector_serve_slices_total", "batch slices executed"),
            applied: registry.counter("invector_serve_applied_total", "updates applied"),
            rejected: registry
                .counter("invector_serve_rejected_total", "updates refused admission"),
            offered: registry.counter(
                "invector_serve_offered_total",
                "slice capacity offered (slices x quantum)",
            ),
            busy_ns: registry
                .counter("invector_serve_busy_ns_total", "total epoch execution time (ns)"),
            lanes_useful: registry.counter(
                "invector_serve_lanes_useful_total",
                "SIMD lane slots that applied an update",
            ),
            lane_slots: registry.counter(
                "invector_serve_lane_slots_total",
                "SIMD lane slots executed (vectors x 16)",
            ),
            utilization: registry.gauge(
                "invector_serve_utilization_ratio",
                "running SIMD lane utilization (useful / executed)",
            ),
            depth: registry.histogram(
                "invector_serve_conflict_depth",
                "conflict depth (D1) per vector iteration",
                &depth_bounds,
            ),
            latency_us: registry.histogram(
                "invector_serve_epoch_latency_us",
                "epoch wall time (microseconds)",
                &LATENCY_BOUNDS_US,
            ),
            wal_appends: registry
                .counter("invector_serve_wal_appends_total", "batch records appended to the WAL"),
            wal_bytes: registry
                .counter("invector_serve_wal_bytes_total", "framed bytes appended to the WAL"),
            wal_fsyncs: registry
                .counter("invector_serve_wal_fsyncs_total", "explicit WAL syncs issued"),
            wal_replayed: registry.counter(
                "invector_serve_wal_replayed_total",
                "updates replayed from the WAL (recovery or follower tail)",
            ),
            wal_checkpoints: registry.counter(
                "invector_serve_wal_checkpoints_total",
                "snapshot checkpoints published (each truncates the WAL)",
            ),
            follower_lag: registry.gauge(
                "invector_serve_follower_lag_records",
                "log records the follower still has to fetch",
            ),
            follower_verified: registry.counter(
                "invector_serve_follower_epochs_verified_total",
                "seal checksums a follower matched against its own state",
            ),
        }
    }

    /// Records one WAL append of `bytes` framed bytes. Lock-free.
    pub fn record_wal_append(&self, bytes: u64) {
        self.wal_appends.inc();
        self.wal_bytes.add(bytes);
    }

    /// Records one explicit WAL sync. Lock-free.
    pub fn record_wal_fsync(&self) {
        self.wal_fsyncs.inc();
    }

    /// Records `updates` replayed from the log. Lock-free.
    pub fn record_wal_replayed(&self, updates: u64) {
        self.wal_replayed.add(updates);
    }

    /// Records one published checkpoint. Lock-free.
    pub fn record_wal_checkpoint(&self) {
        self.wal_checkpoints.inc();
    }

    /// Publishes the follower's current fetch lag in log records.
    pub fn set_follower_lag(&self, records: u64) {
        self.follower_lag.set(records as f64);
    }

    /// Records one seal checksum a follower verified. Lock-free.
    pub fn record_follower_verified(&self) {
        self.follower_verified.inc();
    }

    /// Records one executed epoch. Lock-free on the record side; the
    /// utilization gauge refresh merges shards, which is fine at epoch
    /// granularity.
    pub fn record_epoch(&self, report: &EpochReport, depth: &DepthHistogram) {
        if report.slices == 0 {
            return;
        }
        self.epochs.inc();
        self.slices.add(report.slices as u64);
        self.applied.add(report.applied as u64);
        self.offered.add(report.offered as u64);
        self.busy_ns.add(report.elapsed.as_nanos() as u64);
        self.latency_us.observe(report.elapsed.as_secs_f64() * 1e6);
        for d in 0..=16u32 {
            self.depth.observe_n(f64::from(d), depth.bucket(d));
        }
        self.lanes_useful.add(report.applied as u64);
        self.lane_slots.add(report.vectors * LANES);
        let slots = self.lane_slots.value();
        if slots > 0 {
            self.utilization.set(self.lanes_useful.value() as f64 / slots as f64);
        }
    }

    /// Records refused admissions. Lock-free.
    pub fn record_rejects(&self, n: u64) {
        self.rejected.add(n);
    }

    /// Condenses the registry counters into the wire summary.
    pub fn summarize(&self, duplicates: u64) -> StatsSummary {
        let applied = self.applied.value();
        let offered = self.offered.value();
        let busy = self.busy_ns.value() as f64 / 1e9;
        StatsSummary {
            epochs: self.epochs.value(),
            slices: self.slices.value(),
            applied,
            rejected: self.rejected.value(),
            duplicates,
            occupancy: if offered == 0 { 0.0 } else { applied as f64 / offered as f64 },
            conflict_depth: self.depth.snapshot().mean(),
            updates_per_sec: if busy > 0.0 { applied as f64 / busy } else { 0.0 },
            p50_epoch_us: self.latency_us.quantile(0.50),
            p99_epoch_us: self.latency_us.quantile(0.99),
        }
    }

    /// Builds the structured per-epoch observation the tuning controller
    /// consumes — the registry's pull API at epoch granularity.
    ///
    /// The throughput fields come from the epoch report itself (real on
    /// every feature leg); the latency quantiles and the process-wide
    /// instruction total are registry enrichment that read zero with the
    /// `obs` / `count` features compiled out.
    pub fn frame(
        &self,
        epoch: u64,
        report: &EpochReport,
        depth: &DepthHistogram,
        queue_depth: u64,
        policy: EpochPolicy,
    ) -> MetricFrame {
        let iterations = depth.invocations();
        let deep: u64 = (2..=16).map(|d| depth.bucket(d)).sum();
        MetricFrame {
            epoch,
            applied: report.applied as u64,
            offered: report.offered as u64,
            busy_ns: report.elapsed.as_nanos() as u64,
            queue_depth,
            conflict_depth: depth.mean(),
            deep_frac: if iterations == 0 { 0.0 } else { deep as f64 / iterations as f64 },
            p50_epoch_us: self.latency_us.quantile(0.50),
            p99_epoch_us: self.latency_us.quantile(0.99),
            instructions: invector_simd::count::global_total(),
            policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_buffer_releases_only_the_contiguous_prefix() {
        let mut b = ReorderBuffer::new();
        for seq in [3u64, 0, 5, 1] {
            assert!(b.insert(Update::i32(seq, 0, 1)));
        }
        assert_eq!(b.contiguous_len(), 2, "0 and 1 are contiguous; 3 and 5 wait");
        let mut out = Vec::new();
        b.pop_run(2, &mut out);
        assert_eq!(out.iter().map(|u| u.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(b.watermark(), 2);
        assert_eq!(b.contiguous_len(), 0, "gap at 2");
        b.insert(Update::i32(2, 0, 1));
        b.insert(Update::i32(4, 0, 1));
        assert_eq!(b.contiguous_len(), 4, "2..=5 now contiguous");
    }

    #[test]
    fn stale_and_double_insertions_count_as_duplicates() {
        let mut b = ReorderBuffer::new();
        assert!(b.insert(Update::i32(0, 0, 1)));
        assert!(!b.insert(Update::i32(0, 9, 9)));
        let mut out = Vec::new();
        b.pop_run(1, &mut out);
        assert!(!b.insert(Update::i32(0, 0, 1)), "below watermark");
        assert_eq!(b.duplicates(), 2);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn stats_summary_reports_occupancy_and_percentiles() {
        let s = ServeStats::new(&Registry::new());
        let mut depth = DepthHistogram::new();
        depth.record(2);
        for i in 0..10 {
            let report = EpochReport {
                applied: 96,
                slices: 1,
                offered: 128,
                vectors: 6,
                elapsed: Duration::from_micros(100 + i * 10),
            };
            s.record_epoch(&report, &depth);
        }
        s.record_rejects(7);
        let sum = s.summarize(3);
        assert_eq!(sum.epochs, 10);
        assert_eq!(sum.applied, 960);
        assert_eq!(sum.rejected, 7);
        assert_eq!(sum.duplicates, 3);
        assert!((sum.occupancy - 0.75).abs() < 1e-9);
        // Latencies 100..=190µs land in the (50, 100] and (100, 200]
        // histogram buckets; the interpolated percentiles must stay inside
        // that envelope and be ordered.
        assert!(sum.p50_epoch_us >= 50.0 && sum.p50_epoch_us <= 200.0, "{}", sum.p50_epoch_us);
        assert!(sum.p99_epoch_us >= sum.p50_epoch_us);
        assert!((sum.conflict_depth - 2.0).abs() < 1e-9);
        assert!(sum.updates_per_sec > 0.0);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn stats_record_lane_utilization() {
        let s = ServeStats::new(&Registry::new());
        let report = EpochReport {
            applied: 96,
            slices: 1,
            offered: 128,
            vectors: 8,
            elapsed: Duration::from_micros(10),
        };
        s.record_epoch(&report, &DepthHistogram::new());
        // 96 useful lanes over 8 × 16 slots = 0.75.
        assert!((s.utilization.value() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_epochs_do_not_skew_statistics() {
        let s = ServeStats::new(&Registry::new());
        s.record_epoch(&EpochReport::default(), &DepthHistogram::new());
        let sum = s.summarize(0);
        assert_eq!(sum.epochs, 0);
        assert_eq!(sum.p50_epoch_us, 0.0);
    }
}
