//! The wire protocol: length-prefixed binary frames over any byte stream.
//!
//! Every frame is `u32` little-endian body length followed by the body;
//! the first body byte is the opcode. Values travel as raw 32-bit patterns
//! (`f32::to_bits` / `i32 as u32`), so a snapshot round-trips bitwise —
//! the determinism contract of the serving layer is checkable over the
//! wire, not just in process.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! frame    := len:u32 body
//! body     := opcode:u8 payload
//!
//! requests
//!   0x01 Hello    version:u16
//!   0x02 Update   table:u16 count:u32 count x (seq:u64 idx:u32 bits:u32)
//!   0x03 Flush
//!   0x04 Snapshot table:u16
//!   0x05 Stats
//!   0x06 Shutdown
//!   0x07 Metrics
//!
//! replies
//!   0x81 Hello    version:u16 shards:u16 quantum:u32 tables:u16
//!                 tables x (kind:u8 op:u8 len:u32 name_len:u16 name:utf8)
//!   0x82 Ack      accepted:u32 watermark:u64
//!   0x83 Reject   accepted:u32 retry_after_ms:u32 reason:u8
//!   0x84 Snapshot table:u16 watermark:u64 len:u32 len x bits:u32
//!   0x85 Stats    5 x u64 then 5 x f64 (see [`StatsSummary`])
//!   0x86 Bye      tables:u16 tables x watermark:u64
//!   0x87 Metrics  text_len:u32 text:utf8
//!   0xFF Error    msg_len:u16 msg:utf8
//! ```

use std::io::{Read, Write};

use crate::table::{OpKind, TableSpec, ValueKind};

/// Protocol version spoken by this build. Bumped on any frame layout
/// change; the server rejects mismatched clients at `Hello`.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on one frame body, protecting the decoder from hostile or
/// corrupt length prefixes. Large snapshots are the biggest frames; 64 MiB
/// covers a 16M-slot table.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// One associative update: apply `value` (a raw 32-bit pattern) to
/// `target[idx]` with the table's operator, ordered by `seq`.
///
/// `seq` is assigned by the producer of the logical stream and must be
/// unique per table; the server applies updates in contiguous `seq` order
/// regardless of which connection delivered them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Update {
    /// Position in the logical update stream (per table, starting at 0).
    pub seq: u64,
    /// Target slot.
    pub idx: u32,
    /// Value bit pattern (`f32::to_bits` for float tables).
    pub bits: u32,
}

impl Update {
    /// An update carrying an `f32` value.
    pub fn f32(seq: u64, idx: u32, value: f32) -> Update {
        Update { seq, idx, bits: value.to_bits() }
    }

    /// An update carrying an `i32` value.
    pub fn i32(seq: u64, idx: u32, value: i32) -> Update {
        Update { seq, idx, bits: value as u32 }
    }
}

/// Why an update batch was (partially) refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A shard ingest queue is at capacity — back off and retry.
    QueueFull,
    /// The update's `seq` is beyond the reorder window — earlier stream
    /// positions must drain first.
    WindowExceeded,
    /// The server is draining for shutdown and admits nothing new.
    Draining,
}

impl RejectReason {
    fn to_byte(self) -> u8 {
        match self {
            RejectReason::QueueFull => 0,
            RejectReason::WindowExceeded => 1,
            RejectReason::Draining => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        Ok(match b {
            0 => RejectReason::QueueFull,
            1 => RejectReason::WindowExceeded,
            2 => RejectReason::Draining,
            other => return Err(ProtoError::Malformed(format!("unknown reject reason {other}"))),
        })
    }
}

/// Aggregate service statistics, as served by a `Stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSummary {
    /// Epochs executed (ticks that applied at least one slice).
    pub epochs: u64,
    /// Batch slices executed across all epochs.
    pub slices: u64,
    /// Updates applied to tables.
    pub applied: u64,
    /// Updates refused admission (client must retry).
    pub rejected: u64,
    /// Duplicate sequence numbers dropped.
    pub duplicates: u64,
    /// Mean batch occupancy: applied updates per slice relative to the
    /// epoch quantum, in `[0, 1]`.
    pub occupancy: f64,
    /// Mean in-vector conflict depth (D1) across applied slices.
    pub conflict_depth: f64,
    /// Applied updates per second of epoch execution time.
    pub updates_per_sec: f64,
    /// Median epoch latency, microseconds.
    pub p50_epoch_us: f64,
    /// 99th-percentile epoch latency, microseconds.
    pub p99_epoch_us: f64,
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake; must be the first frame on a connection.
    Hello {
        /// Client protocol version.
        version: u16,
    },
    /// A batch of updates for one table.
    Update {
        /// Table id (position in the server's table list).
        table: u16,
        /// The updates, in the client's stream order.
        updates: Vec<Update>,
    },
    /// Force an epoch that drains every contiguous pending update,
    /// including a final partial batch.
    Flush,
    /// Request the current values of one table.
    Snapshot {
        /// Table id.
        table: u16,
    },
    /// Request aggregate service statistics.
    Stats,
    /// Drain everything and stop the server.
    Shutdown,
    /// Request the Prometheus text exposition of the server's metric
    /// registries (additive in protocol version 1).
    Metrics,
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Handshake answer: server configuration and table registry.
    Hello {
        /// Server protocol version.
        version: u16,
        /// Ingest shard count.
        shards: u16,
        /// Epoch batch quantum.
        quantum: u32,
        /// Registered tables, in id order.
        tables: Vec<TableSpec>,
    },
    /// Whole batch admitted.
    Ack {
        /// Updates admitted (the full batch).
        accepted: u32,
        /// The table's applied watermark at reply time.
        watermark: u64,
    },
    /// Batch admitted only up to `accepted`; retry the rest later.
    Reject {
        /// Updates admitted before the refusal point.
        accepted: u32,
        /// Suggested client backoff.
        retry_after_ms: u32,
        /// Why admission stopped.
        reason: RejectReason,
    },
    /// One table's values.
    Snapshot {
        /// Table id.
        table: u16,
        /// Stream positions applied (`seq < watermark` are folded in).
        watermark: u64,
        /// Value bit patterns, one per slot.
        values: Vec<u32>,
    },
    /// Aggregate statistics.
    Stats(StatsSummary),
    /// Prometheus text exposition of the server's metric registries.
    Metrics(String),
    /// Shutdown acknowledged; final per-table watermarks after the drain.
    Bye {
        /// Applied watermark per table, in id order.
        watermarks: Vec<u64>,
    },
    /// The request could not be served.
    Error(String),
}

/// Decode/transport failure.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying stream failure.
    Io(std::io::Error),
    /// Structurally invalid frame.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

// --- encoding helpers ------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over one frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "frame truncated: wanted {n} bytes at offset {}, body is {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// A borrowed view of an `Update` batch, straight over the wire bytes.
///
/// The reactor's zero-copy decode path hands the 16-byte-per-update
/// payload region of an `Update` frame to admission without ever copying
/// it into an intermediate `Vec<Update>`: each update is materialized
/// lazily, one register-sized record at a time, as the admission loop
/// walks the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdatesView<'a> {
    bytes: &'a [u8],
}

/// Wire size of one encoded update (`seq:u64 idx:u32 bits:u32`).
pub const UPDATE_WIRE_LEN: usize = 16;

impl<'a> UpdatesView<'a> {
    /// Wraps a payload region; `bytes.len()` must be a multiple of
    /// [`UPDATE_WIRE_LEN`].
    fn new(bytes: &'a [u8]) -> UpdatesView<'a> {
        debug_assert_eq!(bytes.len() % UPDATE_WIRE_LEN, 0);
        UpdatesView { bytes }
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.bytes.len() / UPDATE_WIRE_LEN
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Materializes the `i`-th update.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Update {
        let r = &self.bytes[i * UPDATE_WIRE_LEN..(i + 1) * UPDATE_WIRE_LEN];
        Update {
            seq: u64::from_le_bytes(r[0..8].try_into().expect("8 bytes")),
            idx: u32::from_le_bytes(r[8..12].try_into().expect("4 bytes")),
            bits: u32::from_le_bytes(r[12..16].try_into().expect("4 bytes")),
        }
    }

    /// Iterates the batch in wire order, materializing lazily.
    pub fn iter(&self) -> impl Iterator<Item = Update> + 'a {
        let view = *self;
        (0..view.len()).map(move |i| view.get(i))
    }

    /// Copies the batch into an owned vector (the non-zero-copy path).
    pub fn to_vec(&self) -> Vec<Update> {
        self.iter().collect()
    }
}

/// A borrowed decode of one request frame body: the zero-copy twin of
/// [`Request`]. Payload bytes of an `Update` batch are *not* copied out of
/// `body`; everything else is register-sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestView<'a> {
    /// Version handshake.
    Hello {
        /// Client protocol version.
        version: u16,
    },
    /// A batch of updates for one table, still in wire form.
    Update {
        /// Table id.
        table: u16,
        /// Borrowed update batch.
        updates: UpdatesView<'a>,
    },
    /// Force a drain epoch.
    Flush,
    /// Request one table's values.
    Snapshot {
        /// Table id.
        table: u16,
    },
    /// Request aggregate statistics.
    Stats,
    /// Drain everything and stop.
    Shutdown,
    /// Request the Prometheus exposition.
    Metrics,
}

impl<'a> RequestView<'a> {
    /// Parses one frame body without copying payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on unknown opcodes, truncated
    /// payloads, or trailing bytes.
    pub fn decode(body: &'a [u8]) -> Result<RequestView<'a>, ProtoError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            0x01 => RequestView::Hello { version: c.u16()? },
            0x02 => {
                let table = c.u16()?;
                let count = c.u32()? as usize;
                if count > body.len() / UPDATE_WIRE_LEN + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "update count {count} exceeds frame size"
                    )));
                }
                let payload = c.take(count * UPDATE_WIRE_LEN)?;
                RequestView::Update { table, updates: UpdatesView::new(payload) }
            }
            0x03 => RequestView::Flush,
            0x04 => RequestView::Snapshot { table: c.u16()? },
            0x05 => RequestView::Stats,
            0x06 => RequestView::Shutdown,
            0x07 => RequestView::Metrics,
            op => return Err(ProtoError::Malformed(format!("unknown request opcode {op:#04x}"))),
        };
        c.finish()?;
        Ok(req)
    }

    /// Materializes the borrowed view into an owned [`Request`].
    pub fn to_owned(&self) -> Request {
        match *self {
            RequestView::Hello { version } => Request::Hello { version },
            RequestView::Update { table, updates } => {
                Request::Update { table, updates: updates.to_vec() }
            }
            RequestView::Flush => Request::Flush,
            RequestView::Snapshot { table } => Request::Snapshot { table },
            RequestView::Stats => Request::Stats,
            RequestView::Shutdown => Request::Shutdown,
            RequestView::Metrics => Request::Metrics,
        }
    }
}

impl Request {
    /// Serializes the request as one frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { version } => {
                out.push(0x01);
                put_u16(&mut out, *version);
            }
            Request::Update { table, updates } => {
                out.reserve(7 + 16 * updates.len());
                out.push(0x02);
                put_u16(&mut out, *table);
                put_u32(&mut out, updates.len() as u32);
                for u in updates {
                    put_u64(&mut out, u.seq);
                    put_u32(&mut out, u.idx);
                    put_u32(&mut out, u.bits);
                }
            }
            Request::Flush => out.push(0x03),
            Request::Snapshot { table } => {
                out.push(0x04);
                put_u16(&mut out, *table);
            }
            Request::Stats => out.push(0x05),
            Request::Shutdown => out.push(0x06),
            Request::Metrics => out.push(0x07),
        }
        out
    }

    /// Parses one frame body (by materializing the borrowing decode, so
    /// the owned and zero-copy paths cannot drift apart).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on unknown opcodes, truncated
    /// payloads, or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        RequestView::decode(body).map(|v| v.to_owned())
    }
}

fn encode_table_spec(out: &mut Vec<u8>, spec: &TableSpec) {
    out.push(spec.kind as u8);
    out.push(spec.op as u8);
    put_u32(out, spec.len as u32);
    let name = spec.name.as_bytes();
    put_u16(out, name.len() as u16);
    out.extend_from_slice(name);
}

fn decode_table_spec(c: &mut Cursor<'_>) -> Result<TableSpec, ProtoError> {
    let kind = match c.u8()? {
        0 => ValueKind::F32,
        1 => ValueKind::I32,
        other => return Err(ProtoError::Malformed(format!("unknown value kind {other}"))),
    };
    let op = match c.u8()? {
        0 => OpKind::Add,
        1 => OpKind::Min,
        2 => OpKind::Max,
        other => return Err(ProtoError::Malformed(format!("unknown op kind {other}"))),
    };
    let len = c.u32()? as usize;
    let name_len = c.u16()? as usize;
    let name = std::str::from_utf8(c.take(name_len)?)
        .map_err(|_| ProtoError::Malformed("table name is not UTF-8".into()))?
        .to_string();
    Ok(TableSpec { name, kind, op, len })
}

impl Reply {
    /// Serializes the reply as one frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Hello { version, shards, quantum, tables } => {
                out.push(0x81);
                put_u16(&mut out, *version);
                put_u16(&mut out, *shards);
                put_u32(&mut out, *quantum);
                put_u16(&mut out, tables.len() as u16);
                for t in tables {
                    encode_table_spec(&mut out, t);
                }
            }
            Reply::Ack { accepted, watermark } => {
                out.push(0x82);
                put_u32(&mut out, *accepted);
                put_u64(&mut out, *watermark);
            }
            Reply::Reject { accepted, retry_after_ms, reason } => {
                out.push(0x83);
                put_u32(&mut out, *accepted);
                put_u32(&mut out, *retry_after_ms);
                out.push(reason.to_byte());
            }
            Reply::Snapshot { table, watermark, values } => {
                out.reserve(15 + 4 * values.len());
                out.push(0x84);
                put_u16(&mut out, *table);
                put_u64(&mut out, *watermark);
                put_u32(&mut out, values.len() as u32);
                for &v in values {
                    put_u32(&mut out, v);
                }
            }
            Reply::Stats(s) => {
                out.push(0x85);
                put_u64(&mut out, s.epochs);
                put_u64(&mut out, s.slices);
                put_u64(&mut out, s.applied);
                put_u64(&mut out, s.rejected);
                put_u64(&mut out, s.duplicates);
                put_f64(&mut out, s.occupancy);
                put_f64(&mut out, s.conflict_depth);
                put_f64(&mut out, s.updates_per_sec);
                put_f64(&mut out, s.p50_epoch_us);
                put_f64(&mut out, s.p99_epoch_us);
            }
            Reply::Metrics(text) => {
                let bytes = text.as_bytes();
                out.reserve(5 + bytes.len());
                out.push(0x87);
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Reply::Bye { watermarks } => {
                out.push(0x86);
                put_u16(&mut out, watermarks.len() as u16);
                for &w in watermarks {
                    put_u64(&mut out, w);
                }
            }
            Reply::Error(msg) => {
                out.push(0xFF);
                let bytes = msg.as_bytes();
                let n = bytes.len().min(u16::MAX as usize);
                put_u16(&mut out, n as u16);
                out.extend_from_slice(&bytes[..n]);
            }
        }
        out
    }

    /// Parses one frame body.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on unknown opcodes, truncated
    /// payloads, or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Reply, ProtoError> {
        let mut c = Cursor::new(body);
        let reply = match c.u8()? {
            0x81 => {
                let version = c.u16()?;
                let shards = c.u16()?;
                let quantum = c.u32()?;
                let count = c.u16()? as usize;
                let mut tables = Vec::with_capacity(count);
                for _ in 0..count {
                    tables.push(decode_table_spec(&mut c)?);
                }
                Reply::Hello { version, shards, quantum, tables }
            }
            0x82 => Reply::Ack { accepted: c.u32()?, watermark: c.u64()? },
            0x83 => Reply::Reject {
                accepted: c.u32()?,
                retry_after_ms: c.u32()?,
                reason: RejectReason::from_byte(c.u8()?)?,
            },
            0x84 => {
                let table = c.u16()?;
                let watermark = c.u64()?;
                let len = c.u32()? as usize;
                if len > body.len() / 4 + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "snapshot length {len} exceeds frame size"
                    )));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(c.u32()?);
                }
                Reply::Snapshot { table, watermark, values }
            }
            0x85 => Reply::Stats(StatsSummary {
                epochs: c.u64()?,
                slices: c.u64()?,
                applied: c.u64()?,
                rejected: c.u64()?,
                duplicates: c.u64()?,
                occupancy: c.f64()?,
                conflict_depth: c.f64()?,
                updates_per_sec: c.f64()?,
                p50_epoch_us: c.f64()?,
                p99_epoch_us: c.f64()?,
            }),
            0x87 => {
                let n = c.u32()? as usize;
                let text = std::str::from_utf8(c.take(n)?)
                    .map_err(|_| ProtoError::Malformed("metrics text is not UTF-8".into()))?
                    .to_string();
                Reply::Metrics(text)
            }
            0x86 => {
                let count = c.u16()? as usize;
                let mut watermarks = Vec::with_capacity(count);
                for _ in 0..count {
                    watermarks.push(c.u64()?);
                }
                Reply::Bye { watermarks }
            }
            0xFF => {
                let n = c.u16()? as usize;
                let msg = std::str::from_utf8(c.take(n)?)
                    .map_err(|_| ProtoError::Malformed("error message is not UTF-8".into()))?
                    .to_string();
                Reply::Error(msg)
            }
            op => return Err(ProtoError::Malformed(format!("unknown reply opcode {op:#04x}"))),
        };
        c.finish()?;
        Ok(reply)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one length-prefixed frame body. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// Returns [`ProtoError::Malformed`] for frames over [`MAX_FRAME_LEN`] and
/// [`ProtoError::Io`] for mid-frame stream failures.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Malformed(format!("frame of {len} bytes exceeds limit")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn round_trip_reply(reply: Reply) {
        let body = reply.encode();
        assert_eq!(Reply::decode(&body).unwrap(), reply);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello { version: PROTOCOL_VERSION });
        round_trip_request(Request::Update {
            table: 3,
            updates: vec![Update::f32(0, 5, -1.5), Update::i32(1, 9, -42), Update::i32(2, 0, 7)],
        });
        round_trip_request(Request::Update { table: 0, updates: vec![] });
        round_trip_request(Request::Flush);
        round_trip_request(Request::Snapshot { table: 65535 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Metrics);
    }

    #[test]
    fn replies_round_trip() {
        round_trip_reply(Reply::Hello {
            version: 1,
            shards: 8,
            quantum: 4096,
            tables: vec![
                TableSpec { name: "ranks".into(), kind: ValueKind::F32, op: OpKind::Add, len: 64 },
                TableSpec { name: "dist".into(), kind: ValueKind::I32, op: OpKind::Min, len: 128 },
            ],
        });
        round_trip_reply(Reply::Ack { accepted: 100, watermark: 4096 });
        round_trip_reply(Reply::Reject {
            accepted: 12,
            retry_after_ms: 5,
            reason: RejectReason::QueueFull,
        });
        round_trip_reply(Reply::Reject {
            accepted: 0,
            retry_after_ms: 1,
            reason: RejectReason::Draining,
        });
        round_trip_reply(Reply::Snapshot {
            table: 1,
            watermark: 77,
            values: vec![0, u32::MAX, 0x3f80_0000],
        });
        round_trip_reply(Reply::Stats(StatsSummary {
            epochs: 10,
            slices: 40,
            applied: 163840,
            rejected: 12,
            duplicates: 1,
            occupancy: 0.96,
            conflict_depth: 1.25,
            updates_per_sec: 1.5e7,
            p50_epoch_us: 120.0,
            p99_epoch_us: 340.5,
        }));
        round_trip_reply(Reply::Bye { watermarks: vec![4096, 77] });
        round_trip_reply(Reply::Metrics(String::new()));
        round_trip_reply(Reply::Metrics(
            "# HELP invector_serve_epochs_total epochs\n\
             # TYPE invector_serve_epochs_total counter\n\
             invector_serve_epochs_total 3\n"
                .into(),
        ));
        round_trip_reply(Reply::Error("nope".into()));
    }

    #[test]
    fn decoder_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x42]).is_err());
        assert!(Reply::decode(&[0x42]).is_err());
        // Truncated update batch.
        let mut body = Request::Update { table: 0, updates: vec![Update::i32(0, 0, 1)] }.encode();
        body.truncate(body.len() - 1);
        assert!(Request::decode(&body).is_err());
        // Trailing bytes.
        let mut body = Request::Flush.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
        // Count field larger than the frame could hold.
        let mut body = vec![0x02, 0, 0];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Stats.encode()).unwrap();
        write_frame(&mut wire, &Request::Snapshot { table: 2 }.encode()).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(), Request::Stats);
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Snapshot { table: 2 }
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF at frame boundary");
    }

    #[test]
    fn oversized_frame_is_refused_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(read_frame(&mut wire.as_slice()), Err(ProtoError::Malformed(_))));
    }
}
