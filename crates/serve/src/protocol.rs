//! The wire protocol: length-prefixed binary frames over any byte stream.
//!
//! Every frame is `u32` little-endian body length followed by the body;
//! the first body byte is the opcode. Values travel as raw 32-bit patterns
//! (`f32::to_bits` / `i32 as u32`), so a snapshot round-trips bitwise —
//! the determinism contract of the serving layer is checkable over the
//! wire, not just in process.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! frame    := len:u32 body
//! body     := opcode:u8 payload
//!
//! requests
//!   0x01 Hello     version:u16
//!   0x02 Update    table:u16 count:u32 count x (seq:u64 idx:u32 bits:u32)
//!   0x03 Flush
//!   0x04 Snapshot  table:u16
//!   0x05 Stats
//!   0x06 Shutdown
//!   0x07 Metrics
//!   0x08 SnapshotBegin
//!   0x09 SnapshotChunk table:u16 chunk:u32
//!   0x0A LogTail   checkpoint:u64 index:u64 max_bytes:u32
//!   0x0B EdgeOps   table:u16 count:u32 count x (seq:u64 src:u32 dstflag:u32)
//!                  (dstflag bit 31 set = delete, low 31 bits = dst vertex)
//!   0x0C WindowQuery table:u16 bucket:u64
//!   0x0D TopK      table:u16 k:u32
//!
//! replies
//!   0x81 Hello     version:u16 shards:u16 quantum:u32 tables:u16
//!                  tables x (kind:u8 op:u8 len:u32 stream name_len:u16 name:utf8)
//!                  stream := 0x00                                  (flat)
//!                          | 0x01 vertices:u32 iters:u32           (pagerank)
//!                          | 0x02 vertices:u32                     (wcc)
//!                          | 0x03 keys:u32 buckets:u32 width:u32 timed:u8
//!   0x82 Ack       accepted:u32 watermark:u64
//!   0x83 Reject    accepted:u32 retry_after_ms:u32 reason:u8
//!   0x84 Snapshot  table:u16 watermark:u64 checksum:u32 len:u32 len x bits:u32
//!   0x85 Stats     5 x u64 then 5 x f64 (see [`StatsSummary`])
//!   0x86 Bye       tables:u16 tables x watermark:u64
//!   0x87 Metrics   text_len:u32 text:utf8
//!   0x88 SnapshotMeta checkpoint:u64 index:u64 chunk_values:u32 tables:u16
//!                  tables x (table:u16 watermark:u64 len:u64 checksum:u32)
//!   0x89 SnapshotChunk table:u16 chunk:u32 count:u32 count x bits:u32
//!   0x8A LogRecords checkpoint:u64 next_index:u64 head:u64 reset:u8
//!                  count:u32 count x (len:u32 bytes)
//!   0x8B Window    table:u16 watermark:u64 bucket:u64 expired:u64
//!                  count:u32 count x bits:u32
//!   0x8C TopK      table:u16 watermark:u64 count:u32
//!                  count x (idx:u32 bits:u32)
//!   0xFF Error     msg_len:u16 msg:utf8
//! ```
//!
//! The chunked-snapshot verbs (`SnapshotBegin` + `SnapshotChunk`) pin a
//! consistent all-table state server-side and stream it in bounded frames,
//! so a table of any size transfers without ever approaching
//! [`MAX_FRAME_LEN`]; `LogTail` streams the admitted-batch log from the
//! pinned position — together they are the follower bootstrap path.

use std::io::{Read, Write};

use invector_streamkit::StreamKind;

use crate::table::{OpKind, TableSpec, ValueKind};

/// Protocol version spoken by this build. Bumped on any frame layout
/// change; the server rejects mismatched clients at `Hello`. Version 2
/// added the `Snapshot` checksum field and the chunked-snapshot /
/// log-tail verbs; version 3 added stream table kinds to the `Hello`
/// table registry and the edge-op / window-query / top-k verbs.
pub const PROTOCOL_VERSION: u16 = 3;

/// Upper bound on one frame body, protecting the decoder from hostile or
/// corrupt length prefixes. A single-frame snapshot is bounded by this
/// (64 MiB covers a 16M-slot table); larger tables transfer through the
/// chunked verbs, which never exceed [`SNAPSHOT_CHUNK_VALUES`] values per
/// frame.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Values per `SnapshotChunk` frame (4 MiB of payload): the fixed chunk
/// geometry both sides derive chunk counts from. The last chunk of a table
/// is the only one allowed to be smaller.
pub const SNAPSHOT_CHUNK_VALUES: usize = 1 << 20;

/// Checksum of a snapshot value stream: CRC-32 over the slot bit patterns
/// in slot order, little-endian — the integrity check carried by
/// `Reply::Snapshot` and verified chunk-assembled transfers.
pub fn snapshot_checksum(values: &[u32]) -> u32 {
    let mut crc = invector_replog::Crc32::new();
    for &v in values {
        crc.update(&v.to_le_bytes());
    }
    crc.finish()
}

/// Reassembles one table's value stream from `SnapshotChunk` replies.
///
/// Chunks must arrive strictly in order (`0, 1, 2, …`): the assembler
/// rejects an out-of-order or repeated chunk id immediately rather than
/// buffering holes, so a scrambled transfer fails deterministically at the
/// first wrong frame. [`SnapshotAssembler::finish`] then verifies the total
/// length and the checksum announced in `SnapshotMeta`, making a chunked
/// transfer exactly as trustworthy as a single checksummed frame.
#[derive(Debug)]
pub struct SnapshotAssembler {
    table: u16,
    expected_len: usize,
    expected_checksum: u32,
    chunk_values: usize,
    next_chunk: u32,
    values: Vec<u32>,
}

impl SnapshotAssembler {
    /// Starts assembly for `table` from its `SnapshotMeta` row and the
    /// transfer's chunk geometry.
    pub fn new(table: u16, len: u64, checksum: u32, chunk_values: u32) -> SnapshotAssembler {
        SnapshotAssembler {
            table,
            expected_len: len as usize,
            expected_checksum: checksum,
            chunk_values: (chunk_values as usize).max(1),
            next_chunk: 0,
            values: Vec::new(),
        }
    }

    /// Number of chunks the full transfer takes (an empty table is a
    /// zero-chunk transfer).
    pub fn chunk_count(&self) -> u32 {
        (self.expected_len.div_ceil(self.chunk_values)) as u32
    }

    /// The next chunk id [`push`](Self::push) will accept.
    pub fn next_chunk(&self) -> u32 {
        self.next_chunk
    }

    /// True once every chunk has been pushed.
    pub fn complete(&self) -> bool {
        self.next_chunk == self.chunk_count()
    }

    /// Accepts the next chunk in sequence.
    ///
    /// # Errors
    ///
    /// Rejects a chunk for the wrong table, an out-of-order or repeated
    /// chunk id, a full-size chunk that is not exactly `chunk_values` long,
    /// or a final chunk that overruns the announced length.
    pub fn push(&mut self, table: u16, chunk: u32, values: &[u32]) -> Result<(), ProtoError> {
        if table != self.table {
            return Err(ProtoError::Malformed(format!(
                "snapshot chunk for table {table}, expected table {}",
                self.table
            )));
        }
        if chunk != self.next_chunk {
            return Err(ProtoError::Malformed(format!(
                "out-of-order snapshot chunk {chunk}, expected {}",
                self.next_chunk
            )));
        }
        if chunk >= self.chunk_count() {
            return Err(ProtoError::Malformed(format!(
                "snapshot chunk {chunk} beyond the {}-chunk transfer",
                self.chunk_count()
            )));
        }
        let expected = if (chunk + 1) == self.chunk_count() {
            self.expected_len - self.chunk_values * chunk as usize
        } else {
            self.chunk_values
        };
        if values.len() != expected {
            return Err(ProtoError::Malformed(format!(
                "snapshot chunk {chunk} carries {} values, expected {expected}",
                values.len()
            )));
        }
        self.values.extend_from_slice(values);
        self.next_chunk += 1;
        Ok(())
    }

    /// Verifies completeness and checksum, yielding the value stream.
    ///
    /// # Errors
    ///
    /// Fails if chunks are missing or the assembled stream's checksum does
    /// not match the one announced in `SnapshotMeta`.
    pub fn finish(self) -> Result<Vec<u32>, ProtoError> {
        if !self.complete() {
            return Err(ProtoError::Malformed(format!(
                "snapshot transfer incomplete: {} of {} chunks",
                self.next_chunk,
                self.chunk_count()
            )));
        }
        debug_assert_eq!(self.values.len(), self.expected_len);
        let got = snapshot_checksum(&self.values);
        if got != self.expected_checksum {
            return Err(ProtoError::Malformed(format!(
                "snapshot checksum mismatch for table {}: computed {got:#010x}, announced {:#010x}",
                self.table, self.expected_checksum
            )));
        }
        Ok(self.values)
    }
}

/// One associative update: apply `value` (a raw 32-bit pattern) to
/// `target[idx]` with the table's operator, ordered by `seq`.
///
/// `seq` is assigned by the producer of the logical stream and must be
/// unique per table; the server applies updates in contiguous `seq` order
/// regardless of which connection delivered them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Update {
    /// Position in the logical update stream (per table, starting at 0).
    pub seq: u64,
    /// Target slot.
    pub idx: u32,
    /// Value bit pattern (`f32::to_bits` for float tables).
    pub bits: u32,
}

impl Update {
    /// An update carrying an `f32` value.
    pub fn f32(seq: u64, idx: u32, value: f32) -> Update {
        Update { seq, idx, bits: value.to_bits() }
    }

    /// An update carrying an `i32` value.
    pub fn i32(seq: u64, idx: u32, value: i32) -> Update {
        Update { seq, idx, bits: value as u32 }
    }
}

/// One edge mutation for a graph stream table. On the wire an edge op is
/// exactly an [`Update`] record (`idx` = source vertex, `bits` = destination
/// with bit 31 flagging deletion), so edge streams share the update codec,
/// the WAL batch layout and the replication path unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeOp {
    /// Position in the table's logical stream.
    pub seq: u64,
    /// Source vertex.
    pub src: u32,
    /// Destination vertex (must be below 2^31; bit 31 is the delete flag).
    pub dst: u32,
    /// `true` to insert the edge, `false` to delete it.
    pub insert: bool,
}

impl EdgeOp {
    /// An edge insertion.
    pub fn insert(seq: u64, src: u32, dst: u32) -> EdgeOp {
        EdgeOp { seq, src, dst, insert: true }
    }

    /// An edge deletion.
    pub fn delete(seq: u64, src: u32, dst: u32) -> EdgeOp {
        EdgeOp { seq, src, dst, insert: false }
    }

    /// The op as the update record it travels (and is logged) as.
    pub fn to_update(self) -> Update {
        let (idx, bits) = invector_streamkit::edge_event(
            self.src,
            self.dst & !invector_streamkit::DELETE_BIT,
            self.insert,
        );
        Update { seq: self.seq, idx, bits }
    }

    /// Decodes an update record back into an edge op.
    pub fn from_update(u: Update) -> EdgeOp {
        EdgeOp {
            seq: u.seq,
            src: u.idx,
            dst: u.bits & !invector_streamkit::DELETE_BIT,
            insert: u.bits & invector_streamkit::DELETE_BIT == 0,
        }
    }
}

/// Why an update batch was (partially) refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A shard ingest queue is at capacity — back off and retry.
    QueueFull,
    /// The update's `seq` is beyond the reorder window — earlier stream
    /// positions must drain first.
    WindowExceeded,
    /// The server is draining for shutdown and admits nothing new.
    Draining,
}

impl RejectReason {
    fn to_byte(self) -> u8 {
        match self {
            RejectReason::QueueFull => 0,
            RejectReason::WindowExceeded => 1,
            RejectReason::Draining => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        Ok(match b {
            0 => RejectReason::QueueFull,
            1 => RejectReason::WindowExceeded,
            2 => RejectReason::Draining,
            other => return Err(ProtoError::Malformed(format!("unknown reject reason {other}"))),
        })
    }
}

/// Aggregate service statistics, as served by a `Stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSummary {
    /// Epochs executed (ticks that applied at least one slice).
    pub epochs: u64,
    /// Batch slices executed across all epochs.
    pub slices: u64,
    /// Updates applied to tables.
    pub applied: u64,
    /// Updates refused admission (client must retry).
    pub rejected: u64,
    /// Duplicate sequence numbers dropped.
    pub duplicates: u64,
    /// Mean batch occupancy: applied updates per slice relative to the
    /// epoch quantum, in `[0, 1]`.
    pub occupancy: f64,
    /// Mean in-vector conflict depth (D1) across applied slices.
    pub conflict_depth: f64,
    /// Applied updates per second of epoch execution time.
    pub updates_per_sec: f64,
    /// Median epoch latency, microseconds.
    pub p50_epoch_us: f64,
    /// 99th-percentile epoch latency, microseconds.
    pub p99_epoch_us: f64,
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake; must be the first frame on a connection.
    Hello {
        /// Client protocol version.
        version: u16,
    },
    /// A batch of updates for one table.
    Update {
        /// Table id (position in the server's table list).
        table: u16,
        /// The updates, in the client's stream order.
        updates: Vec<Update>,
    },
    /// Force an epoch that drains every contiguous pending update,
    /// including a final partial batch.
    Flush,
    /// Request the current values of one table.
    Snapshot {
        /// Table id.
        table: u16,
    },
    /// Request aggregate service statistics.
    Stats,
    /// Drain everything and stop the server.
    Shutdown,
    /// Request the Prometheus text exposition of the server's metric
    /// registries (additive in protocol version 1).
    Metrics,
    /// Pin a consistent all-table snapshot plus the matching log position
    /// for chunked transfer; answered by `SnapshotMeta`. Re-pinning
    /// releases the previous pin on the same connection.
    SnapshotBegin,
    /// Fetch one chunk of a pinned table ([`SNAPSHOT_CHUNK_VALUES`] values
    /// per chunk, the final chunk possibly smaller).
    SnapshotChunk {
        /// Table id.
        table: u16,
        /// Zero-based chunk index.
        chunk: u32,
    },
    /// Stream admitted-batch log records from `(checkpoint, index)`,
    /// bounded by `max_bytes` of payload per reply.
    LogTail {
        /// Checkpoint epoch the index counts from.
        checkpoint: u64,
        /// Record index within the checkpoint interval.
        index: u64,
        /// Soft payload budget for the reply (at least one record is
        /// returned when available).
        max_bytes: u32,
    },
    /// A batch of edge insertions/deletions for a graph stream table.
    EdgeOps {
        /// Table id (must be a graph stream table).
        table: u16,
        /// The edge ops, in the client's stream order.
        ops: Vec<EdgeOp>,
    },
    /// Read a window table's per-key aggregates: a live bucket id, the most
    /// recently retracted bucket, or `u64::MAX` for the current window.
    WindowQuery {
        /// Table id (must be a window stream table).
        table: u16,
        /// Bucket id to read.
        bucket: u64,
    },
    /// Read the `k` largest slots of a table's query region (graph values,
    /// window aggregates, or the whole table when flat).
    TopK {
        /// Table id.
        table: u16,
        /// Number of entries requested; must be in `[1, region]`.
        k: u32,
    },
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Handshake answer: server configuration and table registry.
    Hello {
        /// Server protocol version.
        version: u16,
        /// Ingest shard count.
        shards: u16,
        /// Epoch batch quantum.
        quantum: u32,
        /// Registered tables, in id order.
        tables: Vec<TableSpec>,
    },
    /// Whole batch admitted.
    Ack {
        /// Updates admitted (the full batch).
        accepted: u32,
        /// The table's applied watermark at reply time.
        watermark: u64,
    },
    /// Batch admitted only up to `accepted`; retry the rest later.
    Reject {
        /// Updates admitted before the refusal point.
        accepted: u32,
        /// Suggested client backoff.
        retry_after_ms: u32,
        /// Why admission stopped.
        reason: RejectReason,
    },
    /// One table's values.
    Snapshot {
        /// Table id.
        table: u16,
        /// Stream positions applied (`seq < watermark` are folded in).
        watermark: u64,
        /// [`snapshot_checksum`] of `values`, computed server-side under
        /// the table lock — clients verify it after decode, so transport
        /// or server-memory corruption is caught end-to-end.
        checksum: u32,
        /// Value bit patterns, one per slot.
        values: Vec<u32>,
    },
    /// Aggregate statistics.
    Stats(StatsSummary),
    /// Prometheus text exposition of the server's metric registries.
    Metrics(String),
    /// Shutdown acknowledged; final per-table watermarks after the drain.
    Bye {
        /// Applied watermark per table, in id order.
        watermarks: Vec<u64>,
    },
    /// Answer to `SnapshotBegin`: the pinned state's geometry.
    SnapshotMeta {
        /// Checkpoint epoch of the pinned log position.
        checkpoint: u64,
        /// Record index of the pinned log position (the first record a
        /// tail from this pin should fetch).
        index: u64,
        /// Chunk geometry the server will answer `SnapshotChunk` with.
        chunk_values: u32,
        /// Per-table geometry of the pinned snapshot, in id order.
        tables: Vec<SnapshotMetaTable>,
    },
    /// One chunk of a pinned table's value stream.
    SnapshotChunk {
        /// Table id.
        table: u16,
        /// Zero-based chunk index.
        chunk: u32,
        /// Value bit patterns of this chunk, in slot order.
        values: Vec<u32>,
    },
    /// Answer to `LogTail`: admitted-batch log records from the requested
    /// position.
    LogRecords {
        /// Current checkpoint epoch server-side.
        checkpoint: u64,
        /// Index of the record after the last one returned — the next
        /// `LogTail` position.
        next_index: u64,
        /// Records currently in the log (the tail head); `head -
        /// next_index` is the follower's lag.
        head: u64,
        /// `true` when the requested position predates the current
        /// checkpoint interval (the log was truncated): the records are
        /// empty and the follower must re-bootstrap from a fresh pin.
        reset: bool,
        /// Raw record payloads, in log order (empty when `reset`).
        records: Vec<Vec<u8>>,
    },
    /// Answer to `WindowQuery`: one bucket's per-key aggregates.
    Window {
        /// Table id.
        table: u16,
        /// The table's applied watermark at reply time.
        watermark: u64,
        /// The bucket the values were read from (the currently open bucket
        /// id when `u64::MAX` was queried).
        bucket: u64,
        /// Lifetime count of expired (retracted) buckets.
        expired: u64,
        /// Per-key aggregate bit patterns.
        values: Vec<u32>,
    },
    /// Answer to `TopK`: the largest slots of the query region, value
    /// descending, index ascending on ties.
    TopK {
        /// Table id.
        table: u16,
        /// The table's applied watermark at reply time.
        watermark: u64,
        /// `(slot index, value bits)` pairs.
        entries: Vec<(u32, u32)>,
    },
    /// The request could not be served.
    Error(String),
}

/// One table's entry in a `SnapshotMeta` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMetaTable {
    /// Table id.
    pub table: u16,
    /// Applied watermark of the pinned state.
    pub watermark: u64,
    /// Slot count (chunk count is `len.div_ceil(chunk_values)`).
    pub len: u64,
    /// [`snapshot_checksum`] of the table's full value stream; verified
    /// after chunk reassembly.
    pub checksum: u32,
}

/// Decode/transport failure.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying stream failure.
    Io(std::io::Error),
    /// Structurally invalid frame.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

// --- encoding helpers ------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over one frame body (also used by
/// the serve WAL record codec, which shares this module's wire layouts).
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "frame truncated: wanted {n} bytes at offset {}, body is {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn finish(self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// A borrowed view of an `Update` batch, straight over the wire bytes.
///
/// The reactor's zero-copy decode path hands the 16-byte-per-update
/// payload region of an `Update` frame to admission without ever copying
/// it into an intermediate `Vec<Update>`: each update is materialized
/// lazily, one register-sized record at a time, as the admission loop
/// walks the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdatesView<'a> {
    bytes: &'a [u8],
}

/// Wire size of one encoded update (`seq:u64 idx:u32 bits:u32`).
pub const UPDATE_WIRE_LEN: usize = 16;

/// Encodes a batch of updates in wire order (`seq:u64 idx:u32 bits:u32`
/// per record) — the payload layout [`UpdatesView`] reads back. Shared by
/// the `Update` request codec and the WAL batch-record codec, so log
/// replay and wire replay decode through the same bytes.
pub fn encode_updates(out: &mut Vec<u8>, updates: &[Update]) {
    out.reserve(UPDATE_WIRE_LEN * updates.len());
    for u in updates {
        put_u64(out, u.seq);
        put_u32(out, u.idx);
        put_u32(out, u.bits);
    }
}

impl<'a> UpdatesView<'a> {
    /// Wraps a payload region; `bytes.len()` must be a multiple of
    /// [`UPDATE_WIRE_LEN`].
    fn new(bytes: &'a [u8]) -> UpdatesView<'a> {
        debug_assert_eq!(bytes.len() % UPDATE_WIRE_LEN, 0);
        UpdatesView { bytes }
    }

    /// Wraps an encoded update region (the [`encode_updates`] layout).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] unless `bytes.len()` is a
    /// multiple of [`UPDATE_WIRE_LEN`].
    pub fn over(bytes: &'a [u8]) -> Result<UpdatesView<'a>, ProtoError> {
        if !bytes.len().is_multiple_of(UPDATE_WIRE_LEN) {
            return Err(ProtoError::Malformed(format!(
                "update region of {} bytes is not a whole number of {UPDATE_WIRE_LEN}-byte records",
                bytes.len()
            )));
        }
        Ok(UpdatesView::new(bytes))
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.bytes.len() / UPDATE_WIRE_LEN
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Materializes the `i`-th update.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Update {
        let r = &self.bytes[i * UPDATE_WIRE_LEN..(i + 1) * UPDATE_WIRE_LEN];
        Update {
            seq: u64::from_le_bytes(r[0..8].try_into().expect("8 bytes")),
            idx: u32::from_le_bytes(r[8..12].try_into().expect("4 bytes")),
            bits: u32::from_le_bytes(r[12..16].try_into().expect("4 bytes")),
        }
    }

    /// Iterates the batch in wire order, materializing lazily.
    pub fn iter(&self) -> impl Iterator<Item = Update> + Clone + 'a {
        let view = *self;
        (0..view.len()).map(move |i| view.get(i))
    }

    /// Copies the batch into an owned vector (the non-zero-copy path).
    pub fn to_vec(&self) -> Vec<Update> {
        self.iter().collect()
    }
}

/// A borrowed decode of one request frame body: the zero-copy twin of
/// [`Request`]. Payload bytes of an `Update` batch are *not* copied out of
/// `body`; everything else is register-sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestView<'a> {
    /// Version handshake.
    Hello {
        /// Client protocol version.
        version: u16,
    },
    /// A batch of updates for one table, still in wire form.
    Update {
        /// Table id.
        table: u16,
        /// Borrowed update batch.
        updates: UpdatesView<'a>,
    },
    /// Force a drain epoch.
    Flush,
    /// Request one table's values.
    Snapshot {
        /// Table id.
        table: u16,
    },
    /// Request aggregate statistics.
    Stats,
    /// Drain everything and stop.
    Shutdown,
    /// Request the Prometheus exposition.
    Metrics,
    /// Pin a consistent state for chunked transfer.
    SnapshotBegin,
    /// Fetch one chunk of a pinned table.
    SnapshotChunk {
        /// Table id.
        table: u16,
        /// Zero-based chunk index.
        chunk: u32,
    },
    /// Stream log records from a position.
    LogTail {
        /// Checkpoint epoch the index counts from.
        checkpoint: u64,
        /// Record index within the checkpoint interval.
        index: u64,
        /// Soft payload budget for the reply.
        max_bytes: u32,
    },
    /// A batch of edge ops for a graph stream table, still in wire form
    /// (edge-op records share the update record layout).
    EdgeOps {
        /// Table id.
        table: u16,
        /// Borrowed edge-op batch.
        ops: UpdatesView<'a>,
    },
    /// Read one bucket of a window table.
    WindowQuery {
        /// Table id.
        table: u16,
        /// Bucket id.
        bucket: u64,
    },
    /// Read the `k` largest slots of a table's query region.
    TopK {
        /// Table id.
        table: u16,
        /// Entries requested.
        k: u32,
    },
}

impl<'a> RequestView<'a> {
    /// Parses one frame body without copying payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on unknown opcodes, truncated
    /// payloads, or trailing bytes.
    pub fn decode(body: &'a [u8]) -> Result<RequestView<'a>, ProtoError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            0x01 => RequestView::Hello { version: c.u16()? },
            0x02 => {
                let table = c.u16()?;
                let count = c.u32()? as usize;
                if count > body.len() / UPDATE_WIRE_LEN + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "update count {count} exceeds frame size"
                    )));
                }
                let payload = c.take(count * UPDATE_WIRE_LEN)?;
                RequestView::Update { table, updates: UpdatesView::new(payload) }
            }
            0x03 => RequestView::Flush,
            0x04 => RequestView::Snapshot { table: c.u16()? },
            0x05 => RequestView::Stats,
            0x06 => RequestView::Shutdown,
            0x07 => RequestView::Metrics,
            0x08 => RequestView::SnapshotBegin,
            0x09 => RequestView::SnapshotChunk { table: c.u16()?, chunk: c.u32()? },
            0x0A => {
                RequestView::LogTail { checkpoint: c.u64()?, index: c.u64()?, max_bytes: c.u32()? }
            }
            0x0B => {
                let table = c.u16()?;
                let count = c.u32()? as usize;
                if count > body.len() / UPDATE_WIRE_LEN + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "edge op count {count} exceeds frame size"
                    )));
                }
                let payload = c.take(count * UPDATE_WIRE_LEN)?;
                RequestView::EdgeOps { table, ops: UpdatesView::new(payload) }
            }
            0x0C => RequestView::WindowQuery { table: c.u16()?, bucket: c.u64()? },
            0x0D => RequestView::TopK { table: c.u16()?, k: c.u32()? },
            op => return Err(ProtoError::Malformed(format!("unknown request opcode {op:#04x}"))),
        };
        c.finish()?;
        Ok(req)
    }

    /// Materializes the borrowed view into an owned [`Request`].
    pub fn to_owned(&self) -> Request {
        match *self {
            RequestView::Hello { version } => Request::Hello { version },
            RequestView::Update { table, updates } => {
                Request::Update { table, updates: updates.to_vec() }
            }
            RequestView::Flush => Request::Flush,
            RequestView::Snapshot { table } => Request::Snapshot { table },
            RequestView::Stats => Request::Stats,
            RequestView::Shutdown => Request::Shutdown,
            RequestView::Metrics => Request::Metrics,
            RequestView::SnapshotBegin => Request::SnapshotBegin,
            RequestView::SnapshotChunk { table, chunk } => Request::SnapshotChunk { table, chunk },
            RequestView::LogTail { checkpoint, index, max_bytes } => {
                Request::LogTail { checkpoint, index, max_bytes }
            }
            RequestView::EdgeOps { table, ops } => {
                Request::EdgeOps { table, ops: ops.iter().map(EdgeOp::from_update).collect() }
            }
            RequestView::WindowQuery { table, bucket } => Request::WindowQuery { table, bucket },
            RequestView::TopK { table, k } => Request::TopK { table, k },
        }
    }
}

impl Request {
    /// Serializes the request as one frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { version } => {
                out.push(0x01);
                put_u16(&mut out, *version);
            }
            Request::Update { table, updates } => {
                out.reserve(7 + UPDATE_WIRE_LEN * updates.len());
                out.push(0x02);
                put_u16(&mut out, *table);
                put_u32(&mut out, updates.len() as u32);
                encode_updates(&mut out, updates);
            }
            Request::Flush => out.push(0x03),
            Request::Snapshot { table } => {
                out.push(0x04);
                put_u16(&mut out, *table);
            }
            Request::Stats => out.push(0x05),
            Request::Shutdown => out.push(0x06),
            Request::Metrics => out.push(0x07),
            Request::SnapshotBegin => out.push(0x08),
            Request::SnapshotChunk { table, chunk } => {
                out.push(0x09);
                put_u16(&mut out, *table);
                put_u32(&mut out, *chunk);
            }
            Request::LogTail { checkpoint, index, max_bytes } => {
                out.push(0x0A);
                put_u64(&mut out, *checkpoint);
                put_u64(&mut out, *index);
                put_u32(&mut out, *max_bytes);
            }
            Request::EdgeOps { table, ops } => {
                out.reserve(7 + UPDATE_WIRE_LEN * ops.len());
                out.push(0x0B);
                put_u16(&mut out, *table);
                put_u32(&mut out, ops.len() as u32);
                for op in ops {
                    let u = op.to_update();
                    put_u64(&mut out, u.seq);
                    put_u32(&mut out, u.idx);
                    put_u32(&mut out, u.bits);
                }
            }
            Request::WindowQuery { table, bucket } => {
                out.push(0x0C);
                put_u16(&mut out, *table);
                put_u64(&mut out, *bucket);
            }
            Request::TopK { table, k } => {
                out.push(0x0D);
                put_u16(&mut out, *table);
                put_u32(&mut out, *k);
            }
        }
        out
    }

    /// Parses one frame body (by materializing the borrowing decode, so
    /// the owned and zero-copy paths cannot drift apart).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on unknown opcodes, truncated
    /// payloads, or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        RequestView::decode(body).map(|v| v.to_owned())
    }
}

fn encode_table_spec(out: &mut Vec<u8>, spec: &TableSpec) {
    out.push(spec.kind as u8);
    out.push(spec.op as u8);
    put_u32(out, spec.len as u32);
    match spec.stream {
        StreamKind::Flat => out.push(0x00),
        StreamKind::GraphPageRank { vertices, iters } => {
            out.push(0x01);
            put_u32(out, vertices);
            put_u32(out, iters);
        }
        StreamKind::GraphWcc { vertices } => {
            out.push(0x02);
            put_u32(out, vertices);
        }
        StreamKind::Window { keys, buckets, width, timed } => {
            out.push(0x03);
            put_u32(out, keys);
            put_u32(out, buckets);
            put_u32(out, width);
            out.push(u8::from(timed));
        }
    }
    let name = spec.name.as_bytes();
    put_u16(out, name.len() as u16);
    out.extend_from_slice(name);
}

fn decode_table_spec(c: &mut Cursor<'_>) -> Result<TableSpec, ProtoError> {
    let kind = match c.u8()? {
        0 => ValueKind::F32,
        1 => ValueKind::I32,
        other => return Err(ProtoError::Malformed(format!("unknown value kind {other}"))),
    };
    let op = match c.u8()? {
        0 => OpKind::Add,
        1 => OpKind::Min,
        2 => OpKind::Max,
        other => return Err(ProtoError::Malformed(format!("unknown op kind {other}"))),
    };
    let len = c.u32()? as usize;
    let stream = match c.u8()? {
        0x00 => StreamKind::Flat,
        0x01 => StreamKind::GraphPageRank { vertices: c.u32()?, iters: c.u32()? },
        0x02 => StreamKind::GraphWcc { vertices: c.u32()? },
        0x03 => {
            let keys = c.u32()?;
            let buckets = c.u32()?;
            let width = c.u32()?;
            let timed = match c.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(ProtoError::Malformed(format!("bad window timed flag {other}")))
                }
            };
            StreamKind::Window { keys, buckets, width, timed }
        }
        other => return Err(ProtoError::Malformed(format!("unknown stream kind {other}"))),
    };
    let name_len = c.u16()? as usize;
    let name = std::str::from_utf8(c.take(name_len)?)
        .map_err(|_| ProtoError::Malformed("table name is not UTF-8".into()))?
        .to_string();
    Ok(TableSpec { name, kind, op, len, stream })
}

impl Reply {
    /// Serializes the reply as one frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Hello { version, shards, quantum, tables } => {
                out.push(0x81);
                put_u16(&mut out, *version);
                put_u16(&mut out, *shards);
                put_u32(&mut out, *quantum);
                put_u16(&mut out, tables.len() as u16);
                for t in tables {
                    encode_table_spec(&mut out, t);
                }
            }
            Reply::Ack { accepted, watermark } => {
                out.push(0x82);
                put_u32(&mut out, *accepted);
                put_u64(&mut out, *watermark);
            }
            Reply::Reject { accepted, retry_after_ms, reason } => {
                out.push(0x83);
                put_u32(&mut out, *accepted);
                put_u32(&mut out, *retry_after_ms);
                out.push(reason.to_byte());
            }
            Reply::Snapshot { table, watermark, checksum, values } => {
                out.reserve(19 + 4 * values.len());
                out.push(0x84);
                put_u16(&mut out, *table);
                put_u64(&mut out, *watermark);
                put_u32(&mut out, *checksum);
                put_u32(&mut out, values.len() as u32);
                for &v in values {
                    put_u32(&mut out, v);
                }
            }
            Reply::Stats(s) => {
                out.push(0x85);
                put_u64(&mut out, s.epochs);
                put_u64(&mut out, s.slices);
                put_u64(&mut out, s.applied);
                put_u64(&mut out, s.rejected);
                put_u64(&mut out, s.duplicates);
                put_f64(&mut out, s.occupancy);
                put_f64(&mut out, s.conflict_depth);
                put_f64(&mut out, s.updates_per_sec);
                put_f64(&mut out, s.p50_epoch_us);
                put_f64(&mut out, s.p99_epoch_us);
            }
            Reply::Metrics(text) => {
                let bytes = text.as_bytes();
                out.reserve(5 + bytes.len());
                out.push(0x87);
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Reply::Bye { watermarks } => {
                out.push(0x86);
                put_u16(&mut out, watermarks.len() as u16);
                for &w in watermarks {
                    put_u64(&mut out, w);
                }
            }
            Reply::SnapshotMeta { checkpoint, index, chunk_values, tables } => {
                out.push(0x88);
                put_u64(&mut out, *checkpoint);
                put_u64(&mut out, *index);
                put_u32(&mut out, *chunk_values);
                put_u16(&mut out, tables.len() as u16);
                for t in tables {
                    put_u16(&mut out, t.table);
                    put_u64(&mut out, t.watermark);
                    put_u64(&mut out, t.len);
                    put_u32(&mut out, t.checksum);
                }
            }
            Reply::SnapshotChunk { table, chunk, values } => {
                out.reserve(11 + 4 * values.len());
                out.push(0x89);
                put_u16(&mut out, *table);
                put_u32(&mut out, *chunk);
                put_u32(&mut out, values.len() as u32);
                for &v in values {
                    put_u32(&mut out, v);
                }
            }
            Reply::LogRecords { checkpoint, next_index, head, reset, records } => {
                out.push(0x8A);
                put_u64(&mut out, *checkpoint);
                put_u64(&mut out, *next_index);
                put_u64(&mut out, *head);
                out.push(u8::from(*reset));
                put_u32(&mut out, records.len() as u32);
                for r in records {
                    put_u32(&mut out, r.len() as u32);
                    out.extend_from_slice(r);
                }
            }
            Reply::Window { table, watermark, bucket, expired, values } => {
                out.reserve(31 + 4 * values.len());
                out.push(0x8B);
                put_u16(&mut out, *table);
                put_u64(&mut out, *watermark);
                put_u64(&mut out, *bucket);
                put_u64(&mut out, *expired);
                put_u32(&mut out, values.len() as u32);
                for &v in values {
                    put_u32(&mut out, v);
                }
            }
            Reply::TopK { table, watermark, entries } => {
                out.reserve(15 + 8 * entries.len());
                out.push(0x8C);
                put_u16(&mut out, *table);
                put_u64(&mut out, *watermark);
                put_u32(&mut out, entries.len() as u32);
                for &(idx, bits) in entries {
                    put_u32(&mut out, idx);
                    put_u32(&mut out, bits);
                }
            }
            Reply::Error(msg) => {
                out.push(0xFF);
                let bytes = msg.as_bytes();
                let n = bytes.len().min(u16::MAX as usize);
                put_u16(&mut out, n as u16);
                out.extend_from_slice(&bytes[..n]);
            }
        }
        out
    }

    /// Parses one frame body.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on unknown opcodes, truncated
    /// payloads, or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Reply, ProtoError> {
        let mut c = Cursor::new(body);
        let reply = match c.u8()? {
            0x81 => {
                let version = c.u16()?;
                let shards = c.u16()?;
                let quantum = c.u32()?;
                let count = c.u16()? as usize;
                let mut tables = Vec::with_capacity(count);
                for _ in 0..count {
                    tables.push(decode_table_spec(&mut c)?);
                }
                Reply::Hello { version, shards, quantum, tables }
            }
            0x82 => Reply::Ack { accepted: c.u32()?, watermark: c.u64()? },
            0x83 => Reply::Reject {
                accepted: c.u32()?,
                retry_after_ms: c.u32()?,
                reason: RejectReason::from_byte(c.u8()?)?,
            },
            0x84 => {
                let table = c.u16()?;
                let watermark = c.u64()?;
                let checksum = c.u32()?;
                let len = c.u32()? as usize;
                if len > body.len() / 4 + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "snapshot length {len} exceeds frame size"
                    )));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(c.u32()?);
                }
                Reply::Snapshot { table, watermark, checksum, values }
            }
            0x85 => Reply::Stats(StatsSummary {
                epochs: c.u64()?,
                slices: c.u64()?,
                applied: c.u64()?,
                rejected: c.u64()?,
                duplicates: c.u64()?,
                occupancy: c.f64()?,
                conflict_depth: c.f64()?,
                updates_per_sec: c.f64()?,
                p50_epoch_us: c.f64()?,
                p99_epoch_us: c.f64()?,
            }),
            0x87 => {
                let n = c.u32()? as usize;
                let text = std::str::from_utf8(c.take(n)?)
                    .map_err(|_| ProtoError::Malformed("metrics text is not UTF-8".into()))?
                    .to_string();
                Reply::Metrics(text)
            }
            0x86 => {
                let count = c.u16()? as usize;
                let mut watermarks = Vec::with_capacity(count);
                for _ in 0..count {
                    watermarks.push(c.u64()?);
                }
                Reply::Bye { watermarks }
            }
            0x88 => {
                let checkpoint = c.u64()?;
                let index = c.u64()?;
                let chunk_values = c.u32()?;
                let count = c.u16()? as usize;
                let mut tables = Vec::with_capacity(count);
                for _ in 0..count {
                    tables.push(SnapshotMetaTable {
                        table: c.u16()?,
                        watermark: c.u64()?,
                        len: c.u64()?,
                        checksum: c.u32()?,
                    });
                }
                Reply::SnapshotMeta { checkpoint, index, chunk_values, tables }
            }
            0x89 => {
                let table = c.u16()?;
                let chunk = c.u32()?;
                let count = c.u32()? as usize;
                if count > body.len() / 4 + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "chunk length {count} exceeds frame size"
                    )));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(c.u32()?);
                }
                Reply::SnapshotChunk { table, chunk, values }
            }
            0x8A => {
                let checkpoint = c.u64()?;
                let next_index = c.u64()?;
                let head = c.u64()?;
                let reset = match c.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(ProtoError::Malformed(format!("bad reset flag {other}"))),
                };
                let count = c.u32()? as usize;
                if count > body.len() / 4 + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "record count {count} exceeds frame size"
                    )));
                }
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let n = c.u32()? as usize;
                    records.push(c.take(n)?.to_vec());
                }
                Reply::LogRecords { checkpoint, next_index, head, reset, records }
            }
            0x8B => {
                let table = c.u16()?;
                let watermark = c.u64()?;
                let bucket = c.u64()?;
                let expired = c.u64()?;
                let count = c.u32()? as usize;
                if count > body.len() / 4 + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "window value count {count} exceeds frame size"
                    )));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(c.u32()?);
                }
                Reply::Window { table, watermark, bucket, expired, values }
            }
            0x8C => {
                let table = c.u16()?;
                let watermark = c.u64()?;
                let count = c.u32()? as usize;
                if count > body.len() / 8 + 1 {
                    return Err(ProtoError::Malformed(format!(
                        "top-k entry count {count} exceeds frame size"
                    )));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push((c.u32()?, c.u32()?));
                }
                Reply::TopK { table, watermark, entries }
            }
            0xFF => {
                let n = c.u16()? as usize;
                let msg = std::str::from_utf8(c.take(n)?)
                    .map_err(|_| ProtoError::Malformed("error message is not UTF-8".into()))?
                    .to_string();
                Reply::Error(msg)
            }
            op => return Err(ProtoError::Malformed(format!("unknown reply opcode {op:#04x}"))),
        };
        c.finish()?;
        Ok(reply)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one length-prefixed frame body. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// Returns [`ProtoError::Malformed`] for frames over [`MAX_FRAME_LEN`] and
/// [`ProtoError::Io`] for mid-frame stream failures.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Malformed(format!("frame of {len} bytes exceeds limit")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn round_trip_reply(reply: Reply) {
        let body = reply.encode();
        assert_eq!(Reply::decode(&body).unwrap(), reply);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello { version: PROTOCOL_VERSION });
        round_trip_request(Request::Update {
            table: 3,
            updates: vec![Update::f32(0, 5, -1.5), Update::i32(1, 9, -42), Update::i32(2, 0, 7)],
        });
        round_trip_request(Request::Update { table: 0, updates: vec![] });
        round_trip_request(Request::Flush);
        round_trip_request(Request::Snapshot { table: 65535 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::SnapshotBegin);
        round_trip_request(Request::SnapshotChunk { table: 9, chunk: u32::MAX });
        round_trip_request(Request::LogTail { checkpoint: 7, index: 1 << 40, max_bytes: 65536 });
        round_trip_request(Request::EdgeOps {
            table: 4,
            ops: vec![EdgeOp::insert(0, 3, 7), EdgeOp::delete(1, 7, 3), EdgeOp::insert(2, 0, 0)],
        });
        round_trip_request(Request::EdgeOps { table: 0, ops: vec![] });
        round_trip_request(Request::WindowQuery { table: 2, bucket: u64::MAX });
        round_trip_request(Request::TopK { table: 1, k: 10 });
    }

    #[test]
    fn replies_round_trip() {
        round_trip_reply(Reply::Hello {
            version: 1,
            shards: 8,
            quantum: 4096,
            tables: vec![
                TableSpec::f32("ranks", OpKind::Add, 64),
                TableSpec::i32("dist", OpKind::Min, 128),
                TableSpec::pagerank("pr", 256, 10),
                TableSpec::wcc("cc", 512),
                TableSpec::window("mins", OpKind::Min, 32, 8, 4, true),
                TableSpec::window("adds", OpKind::Add, 16, 4, 100, false),
            ],
        });
        round_trip_reply(Reply::Ack { accepted: 100, watermark: 4096 });
        round_trip_reply(Reply::Reject {
            accepted: 12,
            retry_after_ms: 5,
            reason: RejectReason::QueueFull,
        });
        round_trip_reply(Reply::Reject {
            accepted: 0,
            retry_after_ms: 1,
            reason: RejectReason::Draining,
        });
        let values = vec![0, u32::MAX, 0x3f80_0000];
        round_trip_reply(Reply::Snapshot {
            table: 1,
            watermark: 77,
            checksum: snapshot_checksum(&values),
            values,
        });
        round_trip_reply(Reply::SnapshotMeta {
            checkpoint: 3,
            index: 41,
            chunk_values: SNAPSHOT_CHUNK_VALUES as u32,
            tables: vec![
                SnapshotMetaTable {
                    table: 0,
                    watermark: 1024,
                    len: 1 << 24,
                    checksum: 0xdead_beef,
                },
                SnapshotMetaTable { table: 1, watermark: 0, len: 0, checksum: 0 },
            ],
        });
        round_trip_reply(Reply::SnapshotChunk { table: 1, chunk: 17, values: vec![5, 0, 9] });
        round_trip_reply(Reply::LogRecords {
            checkpoint: 3,
            next_index: 44,
            head: 46,
            reset: false,
            records: vec![vec![1, 2, 3], vec![], vec![0xFF]],
        });
        round_trip_reply(Reply::LogRecords {
            checkpoint: 0,
            next_index: 0,
            head: 0,
            reset: true,
            records: vec![],
        });
        round_trip_reply(Reply::Stats(StatsSummary {
            epochs: 10,
            slices: 40,
            applied: 163840,
            rejected: 12,
            duplicates: 1,
            occupancy: 0.96,
            conflict_depth: 1.25,
            updates_per_sec: 1.5e7,
            p50_epoch_us: 120.0,
            p99_epoch_us: 340.5,
        }));
        round_trip_reply(Reply::Bye { watermarks: vec![4096, 77] });
        round_trip_reply(Reply::Metrics(String::new()));
        round_trip_reply(Reply::Metrics(
            "# HELP invector_serve_epochs_total epochs\n\
             # TYPE invector_serve_epochs_total counter\n\
             invector_serve_epochs_total 3\n"
                .into(),
        ));
        round_trip_reply(Reply::Error("nope".into()));
        round_trip_reply(Reply::Window {
            table: 2,
            watermark: 4096,
            bucket: 17,
            expired: 15,
            values: vec![0, u32::MAX, 0x3f80_0000],
        });
        round_trip_reply(Reply::Window {
            table: 0,
            watermark: 0,
            bucket: u64::MAX,
            expired: 0,
            values: vec![],
        });
        round_trip_reply(Reply::TopK {
            table: 1,
            watermark: 99,
            entries: vec![(4, u32::MAX), (0, 17), (11, 0)],
        });
        round_trip_reply(Reply::TopK { table: 0, watermark: 0, entries: vec![] });
    }

    #[test]
    fn decoder_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x42]).is_err());
        assert!(Reply::decode(&[0x42]).is_err());
        // Truncated update batch.
        let mut body = Request::Update { table: 0, updates: vec![Update::i32(0, 0, 1)] }.encode();
        body.truncate(body.len() - 1);
        assert!(Request::decode(&body).is_err());
        // Trailing bytes.
        let mut body = Request::Flush.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
        // Count field larger than the frame could hold.
        let mut body = vec![0x02, 0, 0];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Stats.encode()).unwrap();
        write_frame(&mut wire, &Request::Snapshot { table: 2 }.encode()).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(), Request::Stats);
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Snapshot { table: 2 }
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF at frame boundary");
    }

    #[test]
    fn oversized_frame_is_refused_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(read_frame(&mut wire.as_slice()), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn decoder_rejects_malformed_follower_verbs() {
        // LogRecords with a reset byte that is neither 0 nor 1.
        let mut body = Reply::LogRecords {
            checkpoint: 1,
            next_index: 2,
            head: 3,
            reset: false,
            records: vec![],
        }
        .encode();
        let reset_at = 1 + 8 + 8 + 8;
        body[reset_at] = 2;
        assert!(Reply::decode(&body).is_err());
        // SnapshotChunk whose count field exceeds what the frame holds.
        let mut body = vec![0x89, 0, 0];
        body.extend_from_slice(&7u32.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Reply::decode(&body).is_err());
        // LogRecords record length running past the frame.
        let mut body = vec![0x8A];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        body.extend_from_slice(&3u64.to_le_bytes());
        body.push(0);
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Reply::decode(&body).is_err());
    }

    #[test]
    fn snapshot_assembler_accepts_an_in_order_transfer() {
        let values: Vec<u32> = (0..10).collect();
        let mut asm = SnapshotAssembler::new(2, 10, snapshot_checksum(&values), 4);
        assert_eq!(asm.chunk_count(), 3);
        asm.push(2, 0, &values[0..4]).unwrap();
        asm.push(2, 1, &values[4..8]).unwrap();
        assert!(!asm.complete());
        asm.push(2, 2, &values[8..10]).unwrap();
        assert!(asm.complete());
        assert_eq!(asm.finish().unwrap(), values);
    }

    #[test]
    fn snapshot_assembler_rejects_out_of_order_and_corrupt_chunks() {
        let values: Vec<u32> = (0..8).collect();
        let checksum = snapshot_checksum(&values);
        // Skipped chunk id.
        let mut asm = SnapshotAssembler::new(0, 8, checksum, 4);
        assert!(asm.push(0, 1, &values[4..8]).is_err());
        // Repeated chunk id.
        asm.push(0, 0, &values[0..4]).unwrap();
        assert!(asm.push(0, 0, &values[0..4]).is_err());
        // Wrong table.
        assert!(asm.push(1, 1, &values[4..8]).is_err());
        // Wrong chunk size for a non-final chunk.
        let mut asm = SnapshotAssembler::new(0, 8, checksum, 4);
        assert!(asm.push(0, 0, &values[0..3]).is_err());
        // Chunk past the end of the transfer.
        let mut asm = SnapshotAssembler::new(0, 8, checksum, 4);
        asm.push(0, 0, &values[0..4]).unwrap();
        asm.push(0, 1, &values[4..8]).unwrap();
        assert!(asm.push(0, 2, &[]).is_err());
        // Incomplete transfer refuses to finish.
        let mut asm = SnapshotAssembler::new(0, 8, checksum, 4);
        asm.push(0, 0, &values[0..4]).unwrap();
        assert!(asm.finish().is_err());
        // Bit flip fails the final checksum, not any per-chunk step.
        let mut asm = SnapshotAssembler::new(0, 8, checksum, 4);
        let mut flipped = values.clone();
        flipped[6] ^= 1;
        asm.push(0, 0, &flipped[0..4]).unwrap();
        asm.push(0, 1, &flipped[4..8]).unwrap();
        assert!(asm.finish().is_err());
        // Empty table: zero chunks, immediate finish.
        let asm = SnapshotAssembler::new(0, 0, snapshot_checksum(&[]), 4);
        assert!(asm.complete());
        assert_eq!(asm.finish().unwrap(), Vec::<u32>::new());
    }
}
