//! `invector-serve`: a micro-batching update-stream service over the
//! in-vector reduction kernels.
//!
//! The batch tooling in this workspace answers "how fast can one kernel
//! chew through one dataset". This crate answers the serving-side question:
//! keep datasets resident, accept streams of associative updates from many
//! concurrent clients, and fold them in through the same conflict-free
//! SIMD engine — without giving up reproducibility.
//!
//! # Architecture
//!
//! ```text
//! clients ──► admission ──► shard queues ──► reorder buffer ──► epoch
//! (TCP /      (bounded,     (per-partition   (contiguous seq    executor
//!  in-proc)    reject +      Mutex<VecDeque>) order per table)   (quantum
//!              retry-after)                                      slices →
//!                                                                exec engine)
//! ```
//!
//! Three decisions carry the design:
//!
//! 1. **Replicated-log ordering.** Every update carries a producer-assigned
//!    per-table sequence number; the server folds updates in contiguous
//!    `seq` order no matter which connection delivered them or which shard
//!    queued them. Sharding is purely an ingest concern.
//! 2. **Exact-quantum batch cuts.** The epoch executor only ever applies
//!    slices of exactly `quantum` updates; partial tails wait for an
//!    explicit `Flush` or the shutdown drain. Batch boundaries therefore
//!    depend only on stream content, so replays see identical batches and
//!    the engine (deterministic mode) produces bitwise-identical tables —
//!    the snapshot determinism contract.
//! 3. **Reject, never block or drop.** Full shard queues and reorder
//!    windows refuse admission with a retry-after hint; an admitted update
//!    is never lost and a refused one is the client's to resubmit.
//!
//! # Example
//!
//! ```
//! use invector_serve::{
//!     LocalClient, OpKind, ServeClient, ServeConfig, ServerCore, TableSpec, Update,
//! };
//!
//! let mut config = ServeConfig::new(vec![TableSpec::i32("degree", OpKind::Add, 1 << 10)]);
//! config.quantum = 256;
//! let core = ServerCore::new(config).unwrap();
//! let mut client = LocalClient::new(core);
//!
//! let updates: Vec<Update> =
//!     (0..1000).map(|seq| Update::i32(seq, (seq % 1024) as u32, 1)).collect();
//! client.submit_all(0, &updates).unwrap();
//! client.flush().unwrap();
//! assert_eq!(client.snapshot(0).unwrap().watermark, 1000);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod epoch;
pub mod follower;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod table;
pub mod wal;

pub use client::{LocalClient, ServeClient, SnapshotPlan, TcpClient};
pub use epoch::{EpochReport, ReorderBuffer, ServeStats};
pub use follower::{FollowStatus, Follower};
pub use invector_core::tune::{
    EpochPolicy, MetricFrame, PolicyHandle, PolicyTrace, TraceEntry, TuneConfig,
};
pub use invector_replog::SyncPolicy;
pub use invector_streamkit::{AggOp, StreamKind};
pub use protocol::{
    snapshot_checksum, EdgeOp, RejectReason, RequestView, SnapshotAssembler, StatsSummary, Update,
    UpdatesView, PROTOCOL_VERSION, SNAPSHOT_CHUNK_VALUES,
};
pub use reactor::{ReactorKind, Ring};
pub use server::{
    LogTailPage, PinnedState, PinnedTable, ServeConfig, Server, ServerCore, Snapshot,
    SubmitOutcome, TopKPage, TuneMode, WindowSnapshot,
};
pub use table::{OpKind, SliceReport, TableData, TableSpec, ValueKind};
pub use wal::{ManifestEntry, WalOptions, WalRecord, WalState};
