//! The service core and its TCP front end.
//!
//! [`ServerCore`] is the transport-independent heart: sharded bounded
//! ingest queues, per-table reorder buffers, and the epoch executor that
//! drains micro-batches through the reduction engine. The in-process
//! client and the TCP connection handlers call the same core entry points
//! ([`submit`](ServerCore::submit), [`tick`](ServerCore::tick),
//! [`snapshot`](ServerCore::snapshot)), so behavior over the wire and in
//! process is identical by construction.
//!
//! [`Server`] wraps a core with the readiness-based reactor front end
//! ([`crate::reactor`]: nonblocking listener, a small fixed set of I/O
//! threads, zero-copy frame decode) and a background epoch thread cutting
//! batches on a timer (or as soon as a full quantum is queued).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use invector_core::exec::{ExecPolicy, ExecVariant, Partition};
use invector_core::stats::DepthHistogram;
use invector_core::tune::{Controller, EpochPolicy, PolicyHandle, PolicyTrace, TraceEntry};
use invector_core::{BackendChoice, TuneConfig};
use invector_obs::Registry;

use invector_streamkit::{StreamKind, ValueRepr};

use crate::epoch::{EpochReport, ServeStats};
use crate::protocol::{EdgeOp, RejectReason, StatsSummary, Update, UpdatesView};
use crate::reactor::{self, ReactorKind};
use crate::table::{TableData, TableSpec, TableState, ValueKind};
use crate::wal::{ManifestEntry, WalOptions, WalRecord, WalState};

/// Server configuration: the resident tables plus sizing/batching knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The resident tables, addressed by position.
    pub tables: Vec<TableSpec>,
    /// Ingest shard count (per-partition queues; admission locks only the
    /// shard an update routes to).
    pub shards: usize,
    /// Epoch batch quantum: micro-batches are exactly this many updates.
    /// A smaller final batch runs only on an explicit flush or the
    /// shutdown drain, which keeps batch cut positions — and therefore
    /// snapshots — independent of arrival timing.
    pub quantum: usize,
    /// Per-shard ingest queue capacity; a full queue rejects with
    /// retry-after instead of blocking or dropping.
    pub queue_capacity: usize,
    /// Reorder window: an update whose `seq` is this far beyond the
    /// table's watermark is rejected (bounds the reorder buffer).
    pub window: u64,
    /// Worker threads for the reduction engine.
    pub threads: usize,
    /// Reduction backend request.
    pub backend: BackendChoice,
    /// Epoch timer period for the background executor thread.
    pub epoch_interval: Duration,
    /// Backoff suggested to rejected clients.
    pub retry_after_ms: u32,
    /// Reactor I/O threads multiplexing every TCP connection.
    pub io_threads: usize,
    /// Open-connection ceiling; accepts beyond it are refused (and
    /// counted) rather than queued.
    pub max_connections: usize,
    /// Per-readiness-event socket read budget per connection (bytes); also
    /// sizes read-ring growth. Bounds how long one chatty connection can
    /// monopolize an I/O thread.
    pub read_buffer_cap: usize,
    /// Write-ring backpressure cap (bytes): past this, the reactor stops
    /// reading from the connection until its replies drain — a slow reader
    /// cannot balloon server memory.
    pub write_buffer_cap: usize,
    /// Readiness backend (`auto` picks epoll on Linux).
    pub reactor: ReactorKind,
    /// Epoch-level self-tuning mode (off, online controller, or trace
    /// replay).
    pub tune: TuneMode,
    /// Durability: log admitted slices to a write-ahead log and publish
    /// periodic snapshot checkpoints (`--wal-dir`). `None` keeps the
    /// server purely in-memory.
    pub wal: Option<WalOptions>,
}

/// How the core manages its execution policy across epochs.
#[derive(Debug, Clone, Default)]
pub enum TuneMode {
    /// The startup policy and quantum stay fixed for the server's life.
    #[default]
    Off,
    /// An online [`Controller`] adapts the policy and quantum between
    /// epochs from completed-epoch metrics; its decisions are recorded as
    /// a [`PolicyTrace`] ([`ServerCore::policy_trace`]).
    Auto(TuneConfig),
    /// Replays a recorded trace: each entry's policy takes effect at the
    /// recorded per-table watermarks, reproducing the tuned run's slice
    /// boundaries — and snapshots — bitwise, without a controller.
    Replay(PolicyTrace),
}

impl ServeConfig {
    /// A configuration with serving defaults for the given tables.
    pub fn new(tables: Vec<TableSpec>) -> ServeConfig {
        ServeConfig {
            tables,
            shards: 4,
            quantum: 4096,
            queue_capacity: 1 << 16,
            window: 1 << 20,
            threads: 1,
            backend: BackendChoice::Auto,
            epoch_interval: Duration::from_millis(1),
            retry_after_ms: 2,
            io_threads: 2,
            max_connections: 4096,
            read_buffer_cap: 64 << 10,
            write_buffer_cap: 256 << 10,
            reactor: ReactorKind::Auto,
            tune: TuneMode::Off,
            wal: None,
        }
    }

    /// The engine policy epochs start under: in-vector reduction,
    /// owner-computes partitioning, deterministic fold — the combination
    /// whose results are a pure function of (batch content, thread count,
    /// quantum), which is what the snapshot contract leans on. Under
    /// tuning this is the controller's starting cell; the variant and
    /// thread count may change between epochs, but partitioning,
    /// determinism, and the backend request are held fixed.
    pub fn policy(&self) -> ExecPolicy {
        ExecPolicy::with_threads(self.threads)
            .variant(ExecVariant::Invec)
            .partition(Partition::OwnerComputes)
            .deterministic(true)
            .backend(self.backend)
    }

    /// The initial epoch policy pair ([`policy`](Self::policy) at the
    /// configured quantum) — what the core's [`PolicyHandle`] starts at.
    pub fn initial_policy(&self) -> EpochPolicy {
        EpochPolicy::new(self.policy(), self.quantum)
    }

    fn validate(&self) -> Result<(), String> {
        if self.tables.is_empty() {
            return Err("at least one table is required".into());
        }
        if self.tables.len() > u16::MAX as usize {
            return Err("table ids are u16".into());
        }
        if let Some(t) = self.tables.iter().find(|t| t.len == 0) {
            return Err(format!("table '{}' has zero slots", t.name));
        }
        for t in &self.tables {
            t.validate_stream().map_err(|e| format!("table '{}': {e}", t.name))?;
        }
        if self.shards == 0 || self.quantum == 0 || self.queue_capacity == 0 || self.threads == 0 {
            return Err("shards, quantum, queue_capacity, and threads must be >= 1".into());
        }
        if self.window == 0 {
            return Err("reorder window must be >= 1".into());
        }
        if self.io_threads == 0 || self.max_connections == 0 {
            return Err("io_threads and max_connections must be >= 1".into());
        }
        if self.read_buffer_cap < 1024 || self.write_buffer_cap < 1024 {
            return Err("read/write buffer caps must be >= 1 KiB".into());
        }
        if self.wal.is_some() && matches!(self.tune, TuneMode::Auto(_)) {
            // Online tuning decisions are not captured in batch records, so
            // replaying the log could cut different slice boundaries and
            // recover different bits. Record a trace and use Replay.
            return Err("a WAL cannot be combined with online tuning (TuneMode::Auto); \
                        record a policy trace and use TuneMode::Replay"
                .into());
        }
        Ok(())
    }
}

/// Outcome of one [`ServerCore::submit`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Every update was admitted.
    Accepted {
        /// Updates admitted (the whole batch).
        accepted: u32,
        /// The table's applied watermark when the batch was admitted.
        watermark: u64,
    },
    /// Admission stopped early; retry the remainder after the backoff.
    Rejected {
        /// Updates admitted before the refusal point (a prefix of the
        /// batch — nothing after it was admitted, preserving per-client
        /// submission order).
        accepted: u32,
        /// Suggested backoff.
        retry_after_ms: u32,
        /// Why admission stopped.
        reason: RejectReason,
    },
    /// Client error (unknown table, index out of range); nothing admitted
    /// beyond `accepted` and the batch must not be retried as-is.
    Failed(String),
}

/// One table snapshot: applied watermark plus the slot bit patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Table id.
    pub table: u16,
    /// Stream positions folded in (`seq < watermark`).
    pub watermark: u64,
    /// CRC-32 over the slot bit patterns ([`snapshot_checksum`]), computed
    /// under the table lock so it always matches `data`.
    pub checksum: u32,
    /// Typed table contents.
    pub data: TableData,
}

impl Snapshot {
    /// Raw slot bit patterns — the unit of bitwise comparison.
    pub fn bits(&self) -> Vec<u32> {
        self.data.to_bits()
    }
}

/// One window-bucket read ([`ServerCore::window_query`]): the bucket's
/// per-key aggregate values, tagged with the table watermark they were
/// consistent at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Table id.
    pub table: u16,
    /// Stream positions folded in when the bucket was read.
    pub watermark: u64,
    /// Bucket id the values belong to.
    pub bucket: u64,
    /// Buckets retracted so far.
    pub expired: u64,
    /// Per-key aggregate bit patterns.
    pub values: Vec<u32>,
}

/// One top-k read ([`ServerCore::top_k`]): the k largest slots of the
/// table's query region, value-descending with index-ascending ties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKPage {
    /// Table id.
    pub table: u16,
    /// Stream positions folded in when the page was read.
    pub watermark: u64,
    /// `(slot index, value bit pattern)` pairs, largest value first.
    pub entries: Vec<(u32, u32)>,
}

/// A consistent all-table state pinned for chunked transfer
/// ([`ServerCore::pin_state`]): every table at the same epoch boundary,
/// plus the log position the tables correspond to — the follower
/// bootstrap point.
#[derive(Debug)]
pub struct PinnedState {
    /// Checkpoint generation of the pinned log position.
    pub checkpoint: u64,
    /// Log index within the generation (records before it are already
    /// folded into the pinned tables).
    pub index: u64,
    /// Per-table pinned contents, in id order.
    pub tables: Vec<PinnedTable>,
}

/// One table inside a [`PinnedState`].
#[derive(Debug)]
pub struct PinnedTable {
    /// Applied watermark at the pin point.
    pub watermark: u64,
    /// CRC-32 over `bits` ([`crate::protocol::snapshot_checksum`]).
    pub checksum: u32,
    /// Slot bit patterns at the pin point.
    pub bits: Vec<u32>,
}

/// A follower's log-tail fetch result ([`ServerCore::log_tail`]).
#[derive(Debug)]
pub struct LogTailPage {
    /// The server's current checkpoint generation.
    pub checkpoint: u64,
    /// Index to request next.
    pub next_index: u64,
    /// Records currently in the generation (fetch lag = `head - next`).
    pub head: u64,
    /// True when the requested generation is gone (a checkpoint
    /// truncated it) — the follower must re-bootstrap.
    pub reset: bool,
    /// Framed record payloads `[index, next_index)`.
    pub records: Vec<Vec<u8>>,
}

/// An update staged in a shard queue (table id + update).
#[derive(Debug, Clone, Copy)]
struct Staged {
    table: u16,
    update: Update,
}

/// The transport-independent service: ingest, epoch execution, snapshots.
#[derive(Debug)]
pub struct ServerCore {
    config: ServeConfig,
    /// The one swappable route to the active policy/quantum pair: the
    /// admission threshold reads it per batch, the tuning hook installs
    /// into it between epochs.
    policy: PolicyHandle,
    /// Per-shard bounded ingest queues.
    shards: Vec<Mutex<VecDeque<Staged>>>,
    /// Per-table state (values + reorder buffer), locked independently.
    tables: Vec<Mutex<TableState>>,
    /// Published per-table watermarks (read by admission without taking
    /// table locks).
    watermarks: Vec<AtomicU64>,
    /// Updates sitting in shard queues (not yet stolen by an epoch).
    queued: AtomicUsize,
    /// Serializes epoch execution.
    tick_lock: Mutex<()>,
    /// Per-core metric registry the stats handles point into (also the
    /// scrape source for the `Metrics` verb).
    registry: Registry,
    /// Registry-backed service statistics. Record-side calls are
    /// lock-free, so admission and the epoch executor never serialize on
    /// a stats mutex.
    stats: ServeStats,
    /// Durability state, present when the config names a WAL directory.
    /// Lock order: tick lock → WAL → table locks.
    wal: Option<Mutex<WalState>>,
    /// A read-only core (follower mode) fails every submit; epochs are
    /// driven by replica application instead of the ingest path.
    read_only: AtomicBool,
    draining: AtomicBool,
    /// Signals the background epoch thread that a full quantum is queued.
    wake: Condvar,
    wake_lock: Mutex<bool>,
    /// Tuning state: the optional controller, the recorded decision
    /// trace, and the completed-non-empty-epoch count. Touched only under
    /// the tick lock (plus trace reads), so the admission path never sees
    /// it.
    tuning: Mutex<TuneState>,
}

/// The core's tuning state, behind one mutex.
#[derive(Debug, Default)]
struct TuneState {
    /// The online controller (`TuneMode::Auto` only).
    controller: Option<Controller>,
    /// Every policy install, keyed by per-table watermarks.
    trace: Vec<TraceEntry>,
    /// Completed epochs that applied at least one slice.
    epochs: u64,
    /// When the previous non-empty epoch completed, for end-to-end frame
    /// cost attribution (see [`ServerCore::tune_observe`]).
    last_epoch: Option<Instant>,
}

/// Cap on how much inter-epoch wall time an epoch frame may report,
/// as a multiple of its in-epoch execution time. Under saturating load
/// the admission path costs a small multiple of execution; anything far
/// beyond that is client idle time, which would otherwise be billed to
/// whatever policy happens to be active.
const TUNE_IDLE_CLAMP: u64 = 64;

impl ServerCore {
    /// Builds a core from `config`.
    ///
    /// # Errors
    ///
    /// Returns a message for structurally invalid configurations (no
    /// tables, zero-sized knobs).
    pub fn new(config: ServeConfig) -> Result<Arc<ServerCore>, String> {
        config.validate()?;
        let initial = config.initial_policy();
        let policy = PolicyHandle::new(initial);
        let shards = (0..config.shards)
            .map(|_| Mutex::new(VecDeque::with_capacity(config.queue_capacity.min(1024))))
            .collect();
        let mut tables: Vec<Mutex<TableState>> = config
            .tables
            .iter()
            .map(|spec| Mutex::new(TableState::new(spec.clone(), initial)))
            .collect();
        let controller = match &config.tune {
            TuneMode::Off => None,
            TuneMode::Auto(tc) => Some(Controller::new(tc.clone(), initial)?),
            TuneMode::Replay(trace) => {
                // Preload every table's schedule up front: replay needs no
                // per-epoch decisions, only the recorded cut boundaries.
                for (i, entry) in trace.iter().enumerate() {
                    if entry.at.len() != tables.len() {
                        return Err(format!(
                            "trace entry {i} records {} table watermarks, server has {}",
                            entry.at.len(),
                            tables.len()
                        ));
                    }
                }
                for (t, table) in tables.iter_mut().enumerate() {
                    let state = table.get_mut().expect("table lock");
                    for entry in trace {
                        state.push_policy(entry.at[t], entry.policy);
                    }
                }
                None
            }
        };
        // Durable mode: load the latest checkpoint and replay the log tail
        // through the normal slice path before serving a single request.
        // Any integrity failure is a refusal to serve, never a silent
        // fresh start over data that existed.
        let mut replayed_updates = 0u64;
        let wal = match config.wal.clone() {
            None => None,
            Some(options) => {
                let (state, recovery) = WalState::open(options, &config.tables)?;
                for (t, (data, watermark)) in recovery.installed.into_iter().enumerate() {
                    tables[t].get_mut().expect("table lock").install(data, watermark)?;
                }
                for (i, record) in recovery.replay.iter().enumerate() {
                    match record {
                        WalRecord::Batch { table, updates } => {
                            let state = tables
                                .get_mut(*table as usize)
                                .ok_or_else(|| {
                                    format!("WAL record {i} names unknown table {table}")
                                })?
                                .get_mut()
                                .expect("table lock");
                            state
                                .apply_logged(updates)
                                .map_err(|e| format!("WAL record {i}: {e}"))?;
                            replayed_updates += updates.len() as u64;
                        }
                        WalRecord::Seal { table, watermark, crc } => {
                            let state = tables
                                .get_mut(*table as usize)
                                .ok_or_else(|| {
                                    format!("WAL record {i} names unknown table {table}")
                                })?
                                .get_mut()
                                .expect("table lock");
                            if state.watermark() != *watermark {
                                return Err(format!(
                                    "WAL seal {i}: table {table} replayed to watermark {}, \
                                     seal says {watermark}",
                                    state.watermark()
                                ));
                            }
                            let got = state.checksum();
                            if got != *crc {
                                return Err(format!(
                                    "WAL seal {i}: table {table} state checksum {got:#010x} \
                                     != sealed {crc:#010x} — refusing to serve diverged state",
                                ));
                            }
                        }
                    }
                }
                Some(Mutex::new(state))
            }
        };
        let watermarks = tables
            .iter_mut()
            .map(|t| AtomicU64::new(t.get_mut().expect("table lock").watermark()))
            .collect();
        let registry = Registry::new();
        let stats = ServeStats::new(&registry);
        stats.record_wal_replayed(replayed_updates);
        let core = Arc::new(ServerCore {
            config,
            policy,
            shards,
            tables,
            watermarks,
            queued: AtomicUsize::new(0),
            tick_lock: Mutex::new(()),
            registry,
            stats,
            wal,
            read_only: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            wake: Condvar::new(),
            wake_lock: Mutex::new(false),
            tuning: Mutex::new(TuneState { controller, ..TuneState::default() }),
        });
        // Duplicates live in the tables' reorder buffers; bridge them into
        // the scrape as a pull collector (table locks are only taken at
        // scrape/summary time, never on the hot path).
        let weak = Arc::downgrade(&core);
        core.registry.register_collector(
            "invector_serve_duplicates_total",
            "duplicate sequence numbers dropped by the reorder buffers",
            move || {
                weak.upgrade().map_or(0, |core| {
                    core.tables.iter().map(|t| t.lock().expect("table lock").duplicates()).sum()
                })
            },
        );
        Ok(core)
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Which ingest shard an update for `table` routes to: contiguous
    /// index ranges, so a shard is a partition of the key space.
    fn shard_of(&self, table: u16, idx: u32) -> usize {
        let len = self.config.tables[table as usize].len as u64;
        ((u64::from(idx) * self.config.shards as u64) / len) as usize
    }

    /// Admits a batch of updates for `table` into the ingest queues.
    ///
    /// Admission is all-or-prefix: updates are considered in order and the
    /// first refusal (full shard queue, reorder window, drain mode) stops
    /// the batch, returning how many were admitted. Nothing is ever
    /// silently dropped — a refused update is the client's to retry.
    pub fn submit(&self, table: u16, updates: &[Update]) -> SubmitOutcome {
        self.submit_stream(table, updates.len(), updates.iter().copied())
    }

    /// Admits a borrowed wire-format batch — the reactor's zero-copy path.
    ///
    /// Each update is materialized from the frame bytes one record at a
    /// time as the admission loop reaches it; the batch never exists as an
    /// intermediate `Vec<Update>`. Semantics are identical to
    /// [`submit`](ServerCore::submit) by construction (both are the same
    /// streaming loop).
    pub fn submit_view(&self, table: u16, updates: &UpdatesView<'_>) -> SubmitOutcome {
        self.submit_stream(table, updates.len(), updates.iter())
    }

    /// The shared all-or-prefix admission loop over any update stream.
    fn submit_stream(
        &self,
        table: u16,
        total: usize,
        updates: impl Iterator<Item = Update>,
    ) -> SubmitOutcome {
        if table as usize >= self.tables.len() {
            return SubmitOutcome::Failed(format!(
                "unknown table {table} ({} registered)",
                self.tables.len()
            ));
        }
        if self.read_only.load(Ordering::Acquire) {
            return SubmitOutcome::Failed("read-only follower: submit to the leader".into());
        }
        let spec = &self.config.tables[table as usize];
        let mut accepted = 0u32;
        for u in updates {
            if self.draining.load(Ordering::Acquire) {
                return self.reject(table, accepted, total, RejectReason::Draining);
            }
            if (u.idx as usize) >= spec.len {
                self.stats.record_rejects((total - accepted as usize) as u64);
                return SubmitOutcome::Failed(format!(
                    "index {} out of range for table '{}' ({} slots); {} admitted",
                    u.idx, spec.name, spec.len, accepted
                ));
            }
            let watermark = self.watermarks[table as usize].load(Ordering::Acquire);
            if u.seq >= watermark.saturating_add(self.config.window) {
                return self.reject(table, accepted, total, RejectReason::WindowExceeded);
            }
            let shard = self.shard_of(table, u.idx);
            {
                let mut q = self.shards[shard].lock().expect("shard lock");
                if q.len() >= self.config.queue_capacity {
                    drop(q);
                    return self.reject(table, accepted, total, RejectReason::QueueFull);
                }
                q.push_back(Staged { table, update: u });
            }
            accepted += 1;
            self.queued.fetch_add(1, Ordering::AcqRel);
        }
        if self.queued.load(Ordering::Acquire) >= self.policy.quantum() {
            self.notify_epoch_thread();
        }
        SubmitOutcome::Accepted {
            accepted,
            watermark: self.watermarks[table as usize].load(Ordering::Acquire),
        }
    }

    fn reject(
        &self,
        _table: u16,
        accepted: u32,
        batch: usize,
        reason: RejectReason,
    ) -> SubmitOutcome {
        self.stats.record_rejects((batch - accepted as usize) as u64);
        // Any queued full quantum should get cut promptly so the retry
        // succeeds.
        self.notify_epoch_thread();
        SubmitOutcome::Rejected {
            accepted,
            retry_after_ms: self.config.retry_after_ms.max(1),
            reason,
        }
    }

    /// Runs one epoch: steals every shard queue, buffers the stolen
    /// updates in their tables' reorder buffers, and applies full-quantum
    /// batch slices (plus, with `drain`, each table's final partial
    /// slice) through the reduction engine.
    ///
    /// Ticks are serialized; concurrent callers line up. Safe to call from
    /// any thread — tests and the in-process client drive it directly,
    /// the background epoch thread drives it in a live server.
    pub fn tick(&self, drain: bool) -> EpochReport {
        let _epoch = self.tick_lock.lock().expect("tick lock");
        let start = Instant::now();

        // Steal arrivals shard by shard; admission only ever appends, so
        // holding each lock briefly is enough.
        let mut stolen: Vec<Staged> = Vec::new();
        for shard in &self.shards {
            let mut q = shard.lock().expect("shard lock");
            stolen.extend(q.drain(..));
        }
        self.queued.fetch_sub(stolen.len(), Ordering::AcqRel);

        // Route to reorder buffers and cut batches, one table at a time.
        // Each table cuts under its own watermark-keyed policy schedule.
        // With a WAL, the log is held across the whole cut (lock order:
        // tick → WAL → table) and every slice is appended *before* it is
        // applied — the write-ahead point. A WAL I/O failure is a
        // deliberate panic: continuing would apply unlogged slices, and a
        // crash here is exactly what recovery is built for.
        let mut wal = self.wal.as_ref().map(|w| w.lock().expect("wal lock"));
        let mut report = EpochReport::default();
        let mut depth = DepthHistogram::new();
        for (t, table) in self.tables.iter().enumerate() {
            let mut state = table.lock().expect("table lock");
            for s in stolen.iter().filter(|s| s.table as usize == t) {
                state.absorb(s.update);
            }
            let before = state.watermark();
            let slices = match wal.as_deref_mut() {
                None => state.cut_scheduled(drain),
                Some(wal) => state.cut_scheduled_logged(drain, &mut |chunk| {
                    let record = WalRecord::Batch { table: t as u16, updates: chunk.to_vec() };
                    let bytes = wal.append(&record).expect("WAL append failed");
                    self.stats.record_wal_append(bytes);
                }),
            };
            for slice in &slices {
                report.applied += slice.applied;
                report.slices += 1;
                report.offered += slice.offered;
                report.vectors += slice.vectors;
                depth.merge(&slice.depth);
            }
            if let Some(wal) = wal.as_deref_mut() {
                if state.watermark() != before {
                    // Seal the table's epoch: watermark + post-apply state
                    // CRC, the per-epoch checksum recovery verifies and
                    // followers compare.
                    let record = WalRecord::Seal {
                        table: t as u16,
                        watermark: state.watermark(),
                        crc: state.checksum(),
                    };
                    let bytes = wal.append(&record).expect("WAL append failed");
                    self.stats.record_wal_append(bytes);
                }
            }
            self.watermarks[t].store(state.watermark(), Ordering::Release);
        }
        if let Some(wal) = wal.as_deref_mut() {
            if report.slices > 0 {
                if wal.sync_epoch().expect("WAL sync failed") {
                    self.stats.record_wal_fsync();
                }
                if wal.note_epoch() {
                    self.checkpoint_locked(wal);
                }
            }
        }
        drop(wal);
        report.elapsed = start.elapsed();
        self.stats.record_epoch(&report, &depth);
        self.tune_observe(&report, &depth);
        report
    }

    /// Publishes a snapshot checkpoint (caller holds the tick lock and the
    /// WAL lock): every table's state goes to the snapshot store under a
    /// manifest of per-table checksums, then the log truncates.
    fn checkpoint_locked(&self, wal: &mut WalState) {
        let mut entries = Vec::with_capacity(self.tables.len());
        let mut records = Vec::with_capacity(self.tables.len());
        for (t, (table, spec)) in self.tables.iter().zip(&self.config.tables).enumerate() {
            let state = table.lock().expect("table lock");
            entries.push(ManifestEntry {
                table: t as u16,
                kind: spec.kind,
                op: spec.op,
                len: spec.len as u64,
                watermark: state.watermark(),
                checksum: state.checksum(),
            });
            records.push(crate::wal::encode_checkpoint_table(
                t as u16,
                state.watermark(),
                state.data(),
            ));
        }
        wal.publish_checkpoint(&entries, &records).expect("WAL checkpoint publish failed");
        self.stats.record_wal_checkpoint();
    }

    /// The epoch-boundary tuning hook, still under the tick lock.
    ///
    /// Feeds the completed epoch's metric frame to the controller; an
    /// accepted decision is scheduled on every table at its **current
    /// watermark** — an exact slice boundary, since all cutting for this
    /// epoch is done and admission never advances watermarks. Decisions
    /// therefore depend only on completed-epoch metrics and take effect
    /// only at recorded boundaries, which is what keeps tuned snapshots
    /// replayable bitwise from the trace.
    fn tune_observe(&self, report: &EpochReport, depth: &DepthHistogram) {
        if report.slices == 0 {
            return;
        }
        let mut tuning = self.tuning.lock().expect("tune lock");
        tuning.epochs += 1;
        let epoch = tuning.epochs;
        if tuning.controller.is_none() {
            return;
        }
        let mut frame = self.stats.frame(
            epoch,
            report,
            depth,
            self.queued.load(Ordering::Acquire) as u64,
            self.policy.current(),
        );
        // Score end-to-end, not just in-epoch: the updates applied this
        // epoch cost everything since the last non-empty epoch — admission,
        // reorder-buffer residency, and execution. In-epoch time alone
        // would reward huge quanta whose cost hides on the submit path.
        // Clamped so client idle time is not billed to the active policy.
        let now = Instant::now();
        if let Some(prev) = tuning.last_epoch {
            let delta = now.duration_since(prev).as_nanos() as u64;
            let floor = frame.busy_ns.max(1);
            frame.busy_ns = delta.clamp(floor, floor.saturating_mul(TUNE_IDLE_CLAMP));
        }
        tuning.last_epoch = Some(now);
        let controller = tuning.controller.as_mut().expect("checked above");
        if let Some(next) = controller.observe(&frame) {
            let mut at = Vec::with_capacity(self.tables.len());
            for table in &self.tables {
                let mut state = table.lock().expect("table lock");
                let wm = state.watermark();
                state.push_policy(wm, next);
                at.push(wm);
            }
            self.policy.install(next);
            tuning.trace.push(TraceEntry { epoch, policy: next, at });
        }
    }

    /// Forces a full drain of every contiguous pending update (including
    /// partial batches) — the `Flush` request. Returns the epoch report.
    pub fn flush(&self) -> EpochReport {
        self.tick(true)
    }

    /// Snapshots one table: watermark plus a copy of the slot values.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown table ids.
    pub fn snapshot(&self, table: u16) -> Result<Snapshot, String> {
        let state = self
            .tables
            .get(table as usize)
            .ok_or_else(|| format!("unknown table {table}"))?
            .lock()
            .expect("table lock");
        let data = state.data().clone();
        let checksum = state.checksum();
        Ok(Snapshot { table, watermark: state.watermark(), checksum, data })
    }

    /// Admits a batch of edge ops for a graph stream table (the `EdgeOps`
    /// verb). Endpoints are validated against the table's vertex range up
    /// front, then the batch goes through the ordinary all-or-prefix
    /// admission loop — on the wire, in the WAL and in replication an edge
    /// op *is* an update record.
    pub fn submit_edge_ops(&self, table: u16, ops: &[EdgeOp]) -> SubmitOutcome {
        self.submit_edge_stream(table, ops.len(), ops.iter().copied())
    }

    /// Admits a borrowed wire-format edge-op batch — the reactor's
    /// zero-copy path for the `EdgeOps` verb.
    pub fn submit_edge_ops_view(&self, table: u16, ops: &UpdatesView<'_>) -> SubmitOutcome {
        self.submit_edge_stream(table, ops.len(), ops.iter().map(EdgeOp::from_update))
    }

    fn submit_edge_stream(
        &self,
        table: u16,
        total: usize,
        ops: impl Iterator<Item = EdgeOp> + Clone,
    ) -> SubmitOutcome {
        let Some(spec) = self.config.tables.get(table as usize) else {
            return SubmitOutcome::Failed(format!(
                "unknown table {table} ({} registered)",
                self.tables.len()
            ));
        };
        let vertices = match spec.stream {
            StreamKind::GraphPageRank { vertices, .. } | StreamKind::GraphWcc { vertices } => {
                vertices
            }
            _ => {
                return SubmitOutcome::Failed(format!(
                    "table '{}' is not a graph stream table",
                    spec.name
                ))
            }
        };
        for op in ops.clone() {
            if op.src >= vertices || op.dst >= vertices {
                self.stats.record_rejects(total as u64);
                return SubmitOutcome::Failed(format!(
                    "edge ({}, {}) out of range for table '{}' of {vertices} vertices",
                    op.src, op.dst, spec.name
                ));
            }
        }
        self.submit_stream(table, total, ops.map(EdgeOp::to_update))
    }

    /// Reads one bucket of a window stream table (the `WindowQuery` verb):
    /// a live bucket id, the most recently retracted bucket, or `u64::MAX`
    /// for the current window aggregate.
    ///
    /// # Errors
    ///
    /// Fails on unknown tables, non-window tables, and bucket ids that are
    /// neither live nor the last retracted.
    pub fn window_query(&self, table: u16, bucket: u64) -> Result<WindowSnapshot, String> {
        let state = self
            .tables
            .get(table as usize)
            .ok_or_else(|| format!("unknown table {table}"))?
            .lock()
            .expect("table lock");
        let engine = state
            .engine()
            .ok_or_else(|| format!("table '{}' is not a stream table", state.spec().name))?;
        let TableData::I32(slots) = state.data() else {
            return Err(format!("table '{}' is not a stream table", state.spec().name));
        };
        let read = engine
            .window_query(slots, bucket)
            .map_err(|e| format!("table '{}': {e}", state.spec().name))?;
        Ok(WindowSnapshot {
            table,
            watermark: state.watermark(),
            bucket: read.bucket,
            expired: read.expired,
            values: read.values,
        })
    }

    /// Reads the `k` largest slots of a table's query region (the `TopK`
    /// verb): graph per-vertex values, window per-key aggregates, or the
    /// whole table when flat. Entries come back value-descending with ties
    /// broken by ascending slot index.
    ///
    /// # Errors
    ///
    /// Fails on unknown tables and `k` outside `[1, region]`.
    pub fn top_k(&self, table: u16, k: u32) -> Result<TopKPage, String> {
        let state = self
            .tables
            .get(table as usize)
            .ok_or_else(|| format!("unknown table {table}"))?
            .lock()
            .expect("table lock");
        let bits = state.data().to_bits();
        let (region, repr) = match state.engine() {
            Some(engine) => engine.value_region(),
            None => (
                bits.len(),
                match state.spec().kind {
                    ValueKind::F32 => ValueRepr::F32Bits,
                    ValueKind::I32 => ValueRepr::I32,
                },
            ),
        };
        if k == 0 || k as usize > region {
            return Err(format!(
                "top-k of {k} out of range for table '{}' with a query region of {region} slots",
                state.spec().name
            ));
        }
        let mut entries: Vec<(u32, u32)> =
            bits[..region].iter().enumerate().map(|(i, &b)| (i as u32, b)).collect();
        entries.sort_by(|a, b| {
            let ord = match repr {
                ValueRepr::F32Bits => f32::from_bits(b.1).total_cmp(&f32::from_bits(a.1)),
                ValueRepr::I32 => (b.1 as i32).cmp(&(a.1 as i32)),
            };
            ord.then(a.0.cmp(&b.0))
        });
        entries.truncate(k as usize);
        Ok(TopKPage { table, watermark: state.watermark(), entries })
    }

    /// Pins a consistent all-table state for chunked transfer: every
    /// table's bits at one epoch boundary, plus the log position they
    /// correspond to (generation 0, index 0 without a WAL). Runs under
    /// the tick lock so no epoch can interleave between tables.
    pub fn pin_state(&self) -> Arc<PinnedState> {
        let _epoch = self.tick_lock.lock().expect("tick lock");
        let wal = self.wal.as_ref().map(|w| w.lock().expect("wal lock"));
        let (checkpoint, index) = wal.as_ref().map_or((0, 0), |w| (w.checkpoint(), w.head()));
        let tables = self
            .tables
            .iter()
            .map(|table| {
                let state = table.lock().expect("table lock");
                PinnedTable {
                    watermark: state.watermark(),
                    checksum: state.checksum(),
                    bits: state.data().to_bits(),
                }
            })
            .collect();
        Arc::new(PinnedState { checkpoint, index, tables })
    }

    /// Serves a follower's log fetch from `index` within `checkpoint`.
    ///
    /// # Errors
    ///
    /// Fails when the server has no WAL, or `index` is beyond the head.
    pub fn log_tail(
        &self,
        checkpoint: u64,
        index: u64,
        max_bytes: u32,
    ) -> Result<LogTailPage, String> {
        let wal = self
            .wal
            .as_ref()
            .ok_or("server has no WAL; start the leader with --wal-dir to replicate")?
            .lock()
            .expect("wal lock");
        if checkpoint != wal.checkpoint() {
            // The requested generation was truncated by a checkpoint (or
            // never existed): the follower must re-bootstrap.
            return Ok(LogTailPage {
                checkpoint: wal.checkpoint(),
                next_index: 0,
                head: wal.head(),
                reset: true,
                records: Vec::new(),
            });
        }
        if index > wal.head() {
            return Err(format!("log index {index} beyond head {}", wal.head()));
        }
        let records = wal.records_from(index, max_bytes);
        Ok(LogTailPage {
            checkpoint: wal.checkpoint(),
            next_index: index + records.len() as u64,
            head: wal.head(),
            reset: false,
            records,
        })
    }

    /// Marks the core read-only (follower mode): every submit fails and
    /// state advances only through [`apply_replica`](Self::apply_replica).
    pub fn set_read_only(&self, read_only: bool) {
        self.read_only.store(read_only, Ordering::Release);
    }

    /// `true` for a follower core.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Installs bootstrap state on a fresh follower core: every table's
    /// bits and watermark from an assembled snapshot transfer.
    ///
    /// # Errors
    ///
    /// Fails if the table count mismatches or any table is not fresh.
    pub fn install_snapshot(&self, installs: Vec<(TableData, u64)>) -> Result<(), String> {
        let _epoch = self.tick_lock.lock().expect("tick lock");
        if installs.len() != self.tables.len() {
            return Err(format!(
                "snapshot has {} tables, core has {}",
                installs.len(),
                self.tables.len()
            ));
        }
        for (t, (data, watermark)) in installs.into_iter().enumerate() {
            let mut state = self.tables[t].lock().expect("table lock");
            state.install(data, watermark)?;
            self.watermarks[t].store(watermark, Ordering::Release);
        }
        Ok(())
    }

    /// Applies one replicated log record — the follower's epoch path.
    /// `Batch` records replay a logged slice; `Seal` records verify the
    /// table's watermark and state checksum against the leader's, so any
    /// divergence surfaces exactly at the epoch that introduced it.
    ///
    /// # Errors
    ///
    /// Fails on a malformed record, a non-contiguous slice, or a seal
    /// mismatch (divergence).
    pub fn apply_replica(&self, record: &WalRecord) -> Result<(), String> {
        let _epoch = self.tick_lock.lock().expect("tick lock");
        match record {
            WalRecord::Batch { table, updates } => {
                let mut state = self
                    .tables
                    .get(*table as usize)
                    .ok_or_else(|| format!("replica batch for unknown table {table}"))?
                    .lock()
                    .expect("table lock");
                state.apply_logged(updates)?;
                self.watermarks[*table as usize].store(state.watermark(), Ordering::Release);
                self.stats.record_wal_replayed(updates.len() as u64);
                Ok(())
            }
            WalRecord::Seal { table, watermark, crc } => {
                let state = self
                    .tables
                    .get(*table as usize)
                    .ok_or_else(|| format!("replica seal for unknown table {table}"))?
                    .lock()
                    .expect("table lock");
                if state.watermark() != *watermark {
                    return Err(format!(
                        "divergence: table {table} at watermark {}, leader sealed {watermark}",
                        state.watermark()
                    ));
                }
                let got = state.checksum();
                if got != *crc {
                    return Err(format!(
                        "divergence: table {table} state checksum {got:#010x} != leader's \
                         {crc:#010x} at watermark {watermark}",
                    ));
                }
                self.stats.record_follower_verified();
                Ok(())
            }
        }
    }

    /// The follower-lag gauge hook (records still to fetch).
    pub fn note_follower_lag(&self, records: u64) {
        self.stats.set_follower_lag(records);
    }

    /// Current aggregate statistics.
    pub fn stats_summary(&self) -> StatsSummary {
        let duplicates =
            self.tables.iter().map(|t| t.lock().expect("table lock").duplicates()).sum();
        self.stats.summarize(duplicates)
    }

    /// The per-core metric registry (service counters, histograms, and
    /// the duplicates collector).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Prometheus text exposition: this core's service metrics followed by
    /// the process-wide registry (SIMD instruction accounting, engine and
    /// pool counters). The two registries use disjoint name prefixes
    /// (`invector_serve_` vs `invector_simd_` / `invector_exec_`), so the
    /// concatenation is a valid single exposition.
    pub fn metrics_text(&self) -> String {
        let mut text = invector_obs::prometheus(&self.registry);
        text.push_str(&invector_obs::prometheus(Registry::global()));
        text
    }

    /// The active epoch policy (the tuned values under `TuneMode::Auto`).
    pub fn current_policy(&self) -> EpochPolicy {
        self.policy.current()
    }

    /// The core's policy handle (shared; installs take effect from the
    /// next epoch — prefer `TuneMode` over manual installs in servers,
    /// which records the trace for replay).
    pub fn policy_handle(&self) -> &PolicyHandle {
        &self.policy
    }

    /// Every policy install so far, keyed by per-table watermarks —
    /// feed it to `TuneMode::Replay` to reproduce this run's snapshots
    /// bitwise without a controller.
    pub fn policy_trace(&self) -> PolicyTrace {
        self.tuning.lock().expect("tune lock").trace.clone()
    }

    /// Completed epochs that applied at least one slice.
    pub fn epochs_completed(&self) -> u64 {
        self.tuning.lock().expect("tune lock").epochs
    }

    /// Applied watermark per table, in id order.
    pub fn watermarks(&self) -> Vec<u64> {
        self.watermarks.iter().map(|w| w.load(Ordering::Acquire)).collect()
    }

    /// `true` once shutdown has begun (admission refuses new updates).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Begins shutdown: admission switches to reject-with-`Draining`, then
    /// every contiguous pending update is applied. Returns the final
    /// per-table watermarks.
    pub fn begin_shutdown(&self) -> Vec<u64> {
        self.draining.store(true, Ordering::Release);
        self.flush();
        self.notify_epoch_thread();
        self.watermarks()
    }

    fn notify_epoch_thread(&self) {
        let mut pending = self.wake_lock.lock().expect("wake lock");
        *pending = true;
        self.wake.notify_all();
    }

    /// The background epoch loop: cut batches when a quantum is ready or
    /// the interval elapses, until shutdown.
    fn epoch_loop(&self) {
        let mut guard = self.wake_lock.lock().expect("wake lock");
        loop {
            let (g, _timeout) = self
                .wake
                .wait_timeout(guard, self.config.epoch_interval)
                .expect("wake lock poisoned");
            guard = g;
            *guard = false;
            if self.draining.load(Ordering::Acquire) {
                return;
            }
            drop(guard);
            self.tick(false);
            guard = self.wake_lock.lock().expect("wake lock");
        }
    }
}

/// A live TCP server: a [`ServerCore`] plus the readiness-based reactor
/// ([`crate::reactor`]) and a background epoch thread.
#[derive(Debug)]
pub struct Server {
    core: Arc<ServerCore>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the reactor I/O threads and the epoch thread.
    ///
    /// # Errors
    ///
    /// Returns bind failures and invalid configurations.
    pub fn bind(config: ServeConfig, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let core = ServerCore::new(config).map_err(std::io::Error::other)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let mut threads = reactor::spawn(Arc::clone(&core), listener, Arc::clone(&stop))?;

        let epoch_core = Arc::clone(&core);
        let epoch = std::thread::Builder::new()
            .name("invector-serve-epoch".into())
            .spawn(move || epoch_core.epoch_loop())
            .expect("spawn epoch thread");
        threads.push(epoch);

        Ok(Server { core, addr, stop, threads })
    }

    /// Binds `addr` over an existing core without starting an epoch
    /// thread — the front end for a follower, whose core is advanced by
    /// log replay rather than by local ticks.
    ///
    /// # Errors
    ///
    /// Returns bind failures.
    pub fn serve_core(core: Arc<ServerCore>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let threads = reactor::spawn(Arc::clone(&core), listener, Arc::clone(&stop))?;
        Ok(Server { core, addr, stop, threads })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared core, for in-process clients.
    pub fn core(&self) -> Arc<ServerCore> {
        Arc::clone(&self.core)
    }

    /// Programmatic shutdown: drains and stops the worker threads (the
    /// same path a `Shutdown` frame takes).
    pub fn shutdown(&self) -> Vec<u64> {
        let watermarks = self.core.begin_shutdown();
        self.stop.store(true, Ordering::Release);
        watermarks
    }

    /// Waits for the accept and epoch threads to finish (after a
    /// `Shutdown` frame or [`shutdown`](Server::shutdown)).
    pub fn join(mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::OpKind;

    fn config() -> ServeConfig {
        ServeConfig {
            quantum: 8,
            shards: 2,
            queue_capacity: 64,
            ..ServeConfig::new(vec![
                TableSpec::i32("counts", OpKind::Add, 32),
                TableSpec::f32("mins", OpKind::Min, 16),
            ])
        }
    }

    #[test]
    fn invalid_configs_are_refused() {
        assert!(ServerCore::new(ServeConfig::new(vec![])).is_err());
        let mut c = config();
        c.quantum = 0;
        assert!(ServerCore::new(c).is_err());
        let mut c = config();
        c.tables[0].len = 0;
        assert!(ServerCore::new(c).is_err());
    }

    #[test]
    fn submit_tick_snapshot_round_trip() {
        let core = ServerCore::new(config()).unwrap();
        let updates: Vec<Update> = (0..20).map(|i| Update::i32(i, (i % 32) as u32, 2)).collect();
        match core.submit(0, &updates) {
            SubmitOutcome::Accepted { accepted, watermark } => {
                assert_eq!(accepted, 20);
                assert_eq!(watermark, 0, "nothing applied before a tick");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Quantum 8: a plain tick applies 16 of 20.
        let report = core.tick(false);
        assert_eq!(report.applied, 16);
        assert_eq!(report.slices, 2);
        assert_eq!(core.snapshot(0).unwrap().watermark, 16);
        // Flush drains the partial tail.
        let report = core.flush();
        assert_eq!(report.applied, 4);
        let snap = core.snapshot(0).unwrap();
        assert_eq!(snap.watermark, 20);
        let TableData::I32(v) = &snap.data else { panic!("i32 table") };
        assert_eq!(v.iter().sum::<i32>(), 40);
        assert!(core.snapshot(7).is_err());
    }

    #[test]
    fn unknown_table_and_bad_index_fail_without_retry() {
        let core = ServerCore::new(config()).unwrap();
        assert!(matches!(core.submit(9, &[Update::i32(0, 0, 1)]), SubmitOutcome::Failed(_)));
        match core.submit(1, &[Update::f32(0, 0, 1.0), Update::f32(1, 99, 1.0)]) {
            SubmitOutcome::Failed(m) => assert!(m.contains("1 admitted"), "{m}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_shard_queue_rejects_the_suffix_with_retry_after() {
        let mut c = config();
        c.queue_capacity = 4;
        c.shards = 1;
        let core = ServerCore::new(c).unwrap();
        let updates: Vec<Update> = (0..10).map(|i| Update::i32(i, 0, 1)).collect();
        match core.submit(0, &updates) {
            SubmitOutcome::Rejected { accepted, retry_after_ms, reason } => {
                assert_eq!(accepted, 4);
                assert!(retry_after_ms >= 1);
                assert_eq!(reason, RejectReason::QueueFull);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Ticks free the queue; retrying the refused suffix admits it all.
        let mut rest = &updates[4..];
        while !rest.is_empty() {
            core.tick(true);
            match core.submit(0, rest) {
                SubmitOutcome::Accepted { .. } => break,
                SubmitOutcome::Rejected { accepted, .. } => rest = &rest[accepted as usize..],
                other => panic!("unexpected {other:?}"),
            }
        }
        core.flush();
        #[cfg(feature = "obs")]
        assert!(core.stats_summary().rejected >= 6);
        assert_eq!(
            core.snapshot(0).unwrap().watermark,
            10,
            "rejected updates were retried, not lost"
        );
    }

    #[test]
    fn reorder_window_bounds_how_far_ahead_clients_may_run() {
        let mut c = config();
        c.window = 16;
        let core = ServerCore::new(c).unwrap();
        match core.submit(0, &[Update::i32(99, 0, 1)]) {
            SubmitOutcome::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::WindowExceeded);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn draining_server_rejects_new_updates_but_serves_snapshots() {
        let core = ServerCore::new(config()).unwrap();
        core.submit(0, &[Update::i32(0, 5, 7)]);
        let watermarks = core.begin_shutdown();
        assert_eq!(watermarks, vec![1, 0]);
        match core.submit(0, &[Update::i32(1, 5, 7)]) {
            SubmitOutcome::Rejected { reason, .. } => assert_eq!(reason, RejectReason::Draining),
            other => panic!("unexpected {other:?}"),
        }
        let TableData::I32(v) = &core.snapshot(0).unwrap().data else { panic!("i32") };
        assert_eq!(v[5], 7);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn stats_track_applied_occupancy_and_conflict_depth() {
        let core = ServerCore::new(config()).unwrap();
        // All-conflict stream: every update hits slot 0.
        let updates: Vec<Update> = (0..16).map(|i| Update::i32(i, 0, 1)).collect();
        core.submit(0, &updates);
        core.tick(false);
        let s = core.stats_summary();
        assert_eq!(s.applied, 16);
        assert_eq!(s.slices, 2);
        assert!((s.occupancy - 1.0).abs() < 1e-9);
        assert!(s.conflict_depth > 0.0, "all-conflict batches must show depth");
        assert!(s.updates_per_sec > 0.0);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn metrics_text_exposes_service_series() {
        let core = ServerCore::new(config()).unwrap();
        let updates: Vec<Update> = (0..16).map(|i| Update::i32(i, 0, 1)).collect();
        core.submit(0, &updates);
        core.tick(false);
        let text = core.metrics_text();
        for series in [
            "invector_serve_epochs_total",
            "invector_serve_applied_total",
            "invector_serve_conflict_depth",
            "invector_serve_epoch_latency_us",
            "invector_serve_utilization_ratio",
            "invector_serve_duplicates_total",
        ] {
            assert!(text.contains(series), "exposition missing {series}:\n{text}");
        }
        assert!(text.contains("invector_serve_epochs_total 1"), "{text}");
        assert!(text.contains("invector_serve_applied_total 16"), "{text}");
    }

    #[test]
    fn metrics_text_is_never_poisoned_by_a_dropped_core() {
        // The duplicates collector holds a Weak to the core; after the core
        // drops, a scrape of the global registry must not panic.
        let core = ServerCore::new(config()).unwrap();
        let registry = core.registry().clone();
        drop(core);
        let _ = invector_obs::prometheus(&registry);
    }
}
