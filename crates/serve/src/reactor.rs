//! Readiness-based TCP front end: the event-driven replacement for the
//! thread-per-connection accept loop.
//!
//! A small fixed set of I/O threads multiplexes every connection through a
//! readiness poller — epoll on Linux (direct FFI, std-only), `poll(2)` as a
//! forced fallback, and a portable scan poller everywhere else. Each
//! connection owns growable read/write [`Ring`] buffers; request frames are
//! decoded **zero-copy** straight out of the read ring via
//! [`RequestView`](crate::protocol::RequestView) (a frame that happens to
//! wrap the ring edge is linearized into a per-connection scratch buffer,
//! never per-update allocations), and decoded batches feed the exact same
//! [`ServerCore`] admission path the blocking front end used — which is the
//! determinism argument: the core folds updates in contiguous `seq` order
//! per table, so snapshot bytes are a pure function of stream content, not
//! of readiness interleaving.
//!
//! Backpressure is two-sided. A partial socket write parks the remainder in
//! the write ring and arms write interest (resumed on the next writable
//! event). When a connection's write ring exceeds the configured cap — a
//! slow reader — the reactor *stops reading* from that connection (drops
//! read interest) until the ring drains, so one slow consumer cannot balloon
//! server memory. Both stall kinds, plus wakeups, readiness batches, open
//! connections, and accept overflow, are exported through the core's metric
//! registry.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use invector_obs::{Counter, Registry};

use crate::protocol::{
    ProtoError, Reply, RequestView, SnapshotMetaTable, MAX_FRAME_LEN, PROTOCOL_VERSION,
    SNAPSHOT_CHUNK_VALUES,
};
use crate::server::{PinnedState, ServerCore, SubmitOutcome};

/// Which readiness backend the reactor drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorKind {
    /// epoll on Linux, the portable scan poller elsewhere.
    #[default]
    Auto,
    /// Force epoll (Linux only; falls back to scan elsewhere).
    Epoll,
    /// Force the `poll(2)` set (Linux; scan elsewhere). Useful for
    /// differential tests: the two backends must produce identical
    /// snapshots.
    Poll,
}

impl std::str::FromStr for ReactorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<ReactorKind, String> {
        match s {
            "auto" => Ok(ReactorKind::Auto),
            "epoll" => Ok(ReactorKind::Epoll),
            "poll" => Ok(ReactorKind::Poll),
            other => Err(format!("unknown reactor '{other}' (auto|epoll|poll)")),
        }
    }
}

impl std::fmt::Display for ReactorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReactorKind::Auto => "auto",
            ReactorKind::Epoll => "epoll",
            ReactorKind::Poll => "poll",
        })
    }
}

/// Poll timeout. The reactor has no wake-fd; stop flags and the
/// cross-thread connection inboxes are checked every wakeup, so this bounds
/// both shutdown latency and new-connection registration latency.
const WAIT_MS: i32 = 5;

/// Per-readiness-event socket read budget multiplier is the configured
/// read-buffer cap; individual `read` calls use this chunk size.
const READ_CHUNK: usize = 16 << 10;

/// Grace period for flushing pending replies (`Bye`, final acks) once
/// shutdown begins.
const CLOSE_GRACE: Duration = Duration::from_millis(250);

/// Token reserved for the listener in thread 0's poller.
const LISTENER_TOKEN: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

/// A growable power-of-two circular byte buffer.
///
/// Both per-connection buffers use this: the read side appends socket bytes
/// at the tail and decodes frames from the head (borrowing the bytes in
/// place when the frame is contiguous), the write side appends encoded
/// replies and drains from the head into the socket.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<u8>,
    head: usize,
    len: usize,
}

impl Ring {
    /// An empty ring with a small initial capacity.
    pub fn new() -> Ring {
        Ring::with_capacity(4096)
    }

    /// An empty ring with at least `cap` bytes of capacity (rounded up to a
    /// power of two).
    pub fn with_capacity(cap: usize) -> Ring {
        let cap = cap.max(64).next_power_of_two();
        Ring { buf: vec![0; cap], head: 0, len: 0 }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    fn mask(&self) -> usize {
        self.buf.len() - 1
    }

    /// Byte at logical offset `i` from the head.
    fn at(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        self.buf[(self.head + i) & self.mask()]
    }

    /// Grows (linearizing) so at least `additional` more bytes fit.
    fn reserve(&mut self, additional: usize) {
        let needed = self.len + additional;
        if needed <= self.buf.len() {
            return;
        }
        let new_cap = needed.next_power_of_two();
        let mut new_buf = vec![0; new_cap];
        let (a, b) = self.front_slices();
        new_buf[..a.len()].copy_from_slice(a);
        new_buf[a.len()..a.len() + b.len()].copy_from_slice(b);
        self.head = 0;
        self.buf = new_buf;
    }

    /// The buffered bytes as (at most) two contiguous slices, head first.
    pub fn front_slices(&self) -> (&[u8], &[u8]) {
        let start = self.head & self.mask();
        let end = start + self.len;
        if end <= self.buf.len() {
            (&self.buf[start..end], &[])
        } else {
            (&self.buf[start..], &self.buf[..end - self.buf.len()])
        }
    }

    /// Appends `bytes`, growing as needed.
    pub fn push(&mut self, bytes: &[u8]) {
        self.reserve(bytes.len());
        let mask = self.mask();
        let tail = (self.head + self.len) & mask;
        let first = bytes.len().min(self.buf.len() - tail);
        self.buf[tail..tail + first].copy_from_slice(&bytes[..first]);
        self.buf[..bytes.len() - first].copy_from_slice(&bytes[first..]);
        self.len += bytes.len();
    }

    /// Drops `n` bytes from the head.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.head = (self.head + n) & self.mask();
        self.len -= n;
    }

    /// Reads up to `max` bytes from `r` into the tail. Returns the byte
    /// count (0 on EOF), like `Read::read`.
    pub fn read_from(&mut self, r: &mut impl Read, max: usize) -> std::io::Result<usize> {
        self.reserve(max.min(READ_CHUNK));
        let mask = self.mask();
        let tail = (self.head + self.len) & mask;
        let room = (self.buf.len() - self.len).min(self.buf.len() - tail).min(max);
        let n = r.read(&mut self.buf[tail..tail + room])?;
        self.len += n;
        Ok(n)
    }

    /// Writes buffered bytes to `w` until empty or `WouldBlock`. Returns
    /// `Ok(true)` when fully drained, `Ok(false)` when the socket stalled.
    pub fn write_to(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while self.len > 0 {
            let (a, _) = self.front_slices();
            match w.write(a) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.consume(n),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Pops the next complete length-prefixed frame, if one is buffered.
    ///
    /// The returned slice borrows the ring directly when the frame body is
    /// contiguous in memory — the zero-copy hot path — and `scratch` (whose
    /// allocation is reused across calls) when the body wraps the ring
    /// edge. Either way no per-frame heap allocation happens in steady
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] for frames over
    /// [`MAX_FRAME_LEN`](crate::protocol::MAX_FRAME_LEN).
    pub fn pop_frame<'s>(
        &'s mut self,
        scratch: &'s mut Vec<u8>,
    ) -> Result<Option<&'s [u8]>, ProtoError> {
        if self.len < 4 {
            return Ok(None);
        }
        let frame_len =
            u32::from_le_bytes([self.at(0), self.at(1), self.at(2), self.at(3)]) as usize;
        if frame_len > MAX_FRAME_LEN {
            return Err(ProtoError::Malformed(format!(
                "frame length {frame_len} exceeds {MAX_FRAME_LEN}"
            )));
        }
        if self.len < 4 + frame_len {
            return Ok(None);
        }
        self.consume(4);
        let start = self.head & self.mask();
        if start + frame_len <= self.buf.len() {
            self.consume(frame_len);
            Ok(Some(&self.buf[start..start + frame_len]))
        } else {
            scratch.clear();
            scratch.extend_from_slice(&self.buf[start..]);
            scratch.extend_from_slice(&self.buf[..frame_len - (self.buf.len() - start)]);
            self.consume(frame_len);
            Ok(Some(&scratch[..]))
        }
    }

    /// Whether a complete length-prefixed frame is buffered. A frame whose
    /// declared length exceeds the protocol cap also counts: popping it is
    /// how the malformed-frame error surfaces.
    pub fn has_complete_frame(&self) -> bool {
        if self.len < 4 {
            return false;
        }
        let n = u32::from_le_bytes([self.at(0), self.at(1), self.at(2), self.at(3)]) as usize;
        n > MAX_FRAME_LEN || self.len >= 4 + n
    }
}

impl Default for Ring {
    fn default() -> Ring {
        Ring::new()
    }
}

// ---------------------------------------------------------------------------
// Readiness pollers
// ---------------------------------------------------------------------------

/// Interest bit: readable.
const INTEREST_READ: u8 = 0b01;
/// Interest bit: writable.
const INTEREST_WRITE: u8 = 0b10;

/// One readiness event: slab token plus what fired. A writable-only event
/// carries `readable: false`; [`drive`] then only flushes.
#[derive(Debug, Clone, Copy)]
struct Event {
    token: usize,
    readable: bool,
    error: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Direct syscall declarations for epoll and poll. std already links
    //! libc, so these resolve without any new dependency.
    use std::os::raw::{c_int, c_ulong};

    /// Mirrors `struct epoll_event`; the kernel ABI packs it on x86-64.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Mirrors `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;
    pub const POLLNVAL: i16 = 0x20;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout_ms: c_int) -> c_int;
    }
}

#[cfg(target_os = "linux")]
struct EpollPoller {
    /// Owned epoll fd; closed on drop.
    epfd: std::os::fd::OwnedFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> std::io::Result<EpollPoller> {
        use std::os::fd::FromRawFd;
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let epfd = unsafe { std::os::fd::OwnedFd::from_raw_fd(fd) };
        Ok(EpollPoller { epfd, buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256] })
    }

    fn mask(interest: u8) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest & INTEREST_READ != 0 {
            m |= sys::EPOLLIN;
        }
        if interest & INTEREST_WRITE != 0 {
            m |= sys::EPOLLOUT;
        }
        m
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: i32,
        token: usize,
        interest: u8,
    ) -> std::io::Result<()> {
        use std::os::fd::AsRawFd;
        let mut ev = sys::EpollEvent { events: Self::mask(interest), data: token as u64 };
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> std::io::Result<()> {
        use std::os::fd::AsRawFd;
        let n = unsafe {
            sys::epoll_wait(
                self.epfd.as_raw_fd(),
                self.buf.as_mut_ptr(),
                self.buf.len() as std::os::raw::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in &self.buf[..n as usize] {
            // Copy packed fields to locals before forming any reference.
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data as usize,
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                error: events & sys::EPOLLERR != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
#[derive(Default)]
struct PollSet {
    fds: Vec<sys::PollFd>,
    tokens: Vec<usize>,
}

#[cfg(target_os = "linux")]
impl PollSet {
    fn events(interest: u8) -> i16 {
        let mut e = 0i16;
        if interest & INTEREST_READ != 0 {
            e |= sys::POLLIN;
        }
        if interest & INTEREST_WRITE != 0 {
            e |= sys::POLLOUT;
        }
        e
    }

    fn register(&mut self, fd: i32, token: usize, interest: u8) {
        self.fds.push(sys::PollFd { fd, events: Self::events(interest), revents: 0 });
        self.tokens.push(token);
    }

    fn modify(&mut self, fd: i32, interest: u8) {
        if let Some(p) = self.fds.iter_mut().find(|p| p.fd == fd) {
            p.events = Self::events(interest);
        }
    }

    fn deregister(&mut self, fd: i32) {
        if let Some(i) = self.fds.iter().position(|p| p.fd == fd) {
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
        }
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> std::io::Result<()> {
        let n = unsafe {
            sys::poll(self.fds.as_mut_ptr(), self.fds.len() as std::os::raw::c_ulong, timeout_ms)
        };
        if n < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for (p, &token) in self.fds.iter().zip(&self.tokens) {
            let r = p.revents;
            if r == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: r & (sys::POLLIN | sys::POLLHUP) != 0,
                error: r & (sys::POLLERR | sys::POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

/// Portable fallback: every registered descriptor is reported ready for its
/// current interest each wait (with a sleep to avoid spinning). Nonblocking
/// sockets turn the spurious readiness into cheap `WouldBlock`s, so this is
/// correct — just not efficient. Only used off-Linux.
#[cfg(not(target_os = "linux"))]
#[derive(Default)]
struct ScanPoller {
    entries: Vec<(i32, usize, u8)>,
}

#[cfg(not(target_os = "linux"))]
impl ScanPoller {
    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> std::io::Result<()> {
        std::thread::sleep(Duration::from_millis(timeout_ms.max(1) as u64));
        for &(_, token, interest) in &self.entries {
            let _ = interest & INTEREST_WRITE;
            out.push(Event { token, readable: interest & INTEREST_READ != 0, error: false });
        }
        Ok(())
    }
}

/// A readiness poller: epoll, `poll(2)`, or the portable scan fallback.
enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    #[cfg(target_os = "linux")]
    Poll(PollSet),
    #[cfg(not(target_os = "linux"))]
    Scan(ScanPoller),
}

impl Poller {
    fn new(kind: ReactorKind) -> std::io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            match kind {
                ReactorKind::Auto | ReactorKind::Epoll => Ok(Poller::Epoll(EpollPoller::new()?)),
                ReactorKind::Poll => Ok(Poller::Poll(PollSet::default())),
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = kind;
            Ok(Poller::Scan(ScanPoller::default()))
        }
    }

    fn register(&mut self, fd: i32, token: usize, interest: u8) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_ADD, fd, token, interest),
            #[cfg(target_os = "linux")]
            Poller::Poll(p) => {
                p.register(fd, token, interest);
                Ok(())
            }
            #[cfg(not(target_os = "linux"))]
            Poller::Scan(p) => {
                p.entries.push((fd, token, interest));
                Ok(())
            }
        }
    }

    fn modify(&mut self, fd: i32, token: usize, interest: u8) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_MOD, fd, token, interest),
            #[cfg(target_os = "linux")]
            Poller::Poll(p) => {
                p.modify(fd, interest);
                Ok(())
            }
            #[cfg(not(target_os = "linux"))]
            Poller::Scan(p) => {
                if let Some(e) = p.entries.iter_mut().find(|e| e.0 == fd) {
                    e.2 = interest;
                }
                Ok(())
            }
        }
    }

    fn deregister(&mut self, fd: i32) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0),
            #[cfg(target_os = "linux")]
            Poller::Poll(p) => {
                p.deregister(fd);
                Ok(())
            }
            #[cfg(not(target_os = "linux"))]
            Poller::Scan(p) => {
                p.entries.retain(|e| e.0 != fd);
                Ok(())
            }
        }
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> std::io::Result<()> {
        out.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(out, timeout_ms),
            #[cfg(target_os = "linux")]
            Poller::Poll(p) => p.wait(out, timeout_ms),
            #[cfg(not(target_os = "linux"))]
            Poller::Scan(p) => p.wait(out, timeout_ms),
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor metrics
// ---------------------------------------------------------------------------

/// Registry-backed reactor counters. Handles are lock-free on record and
/// compile to no-ops when the `obs` feature is off; the open-connection
/// count additionally lives in a plain atomic because admission control
/// (`max_connections`) needs the number even with obs compiled out.
#[derive(Debug)]
struct ReactorStats {
    /// Live accepted connections (source of truth for `max_connections`).
    open: AtomicU64,
    /// Poller wakeups (including empty timeouts).
    wakeups: Counter,
    /// Wakeups that delivered at least one readiness event.
    readiness_batches: Counter,
    /// Readiness events across all wakeups.
    readiness_events: Counter,
    /// Connections accepted.
    accepted: Counter,
    /// Connections refused because `max_connections` was reached.
    accept_overflow: Counter,
    /// Times a connection's read interest was dropped because its write
    /// ring exceeded the cap (slow reader).
    read_stalls: Counter,
    /// Partial socket writes that armed write interest.
    write_stalls: Counter,
}

impl ReactorStats {
    fn new(registry: &Registry) -> Arc<ReactorStats> {
        let stats = Arc::new(ReactorStats {
            open: AtomicU64::new(0),
            wakeups: registry.counter(
                "invector_serve_wakeups_total",
                "reactor poller wakeups (including empty timeouts)",
            ),
            readiness_batches: registry.counter(
                "invector_serve_readiness_batches_total",
                "poller wakeups that delivered at least one readiness event",
            ),
            readiness_events: registry.counter(
                "invector_serve_readiness_events_total",
                "readiness events delivered across all wakeups",
            ),
            accepted: registry.counter(
                "invector_serve_accepted_total",
                "TCP connections accepted by the reactor",
            ),
            accept_overflow: registry.counter(
                "invector_serve_accept_overflow_total",
                "connections refused because max_connections was reached",
            ),
            read_stalls: registry.counter(
                "invector_serve_read_stalls_total",
                "reads paused by write-ring backpressure (slow reader)",
            ),
            write_stalls: registry.counter(
                "invector_serve_write_stalls_total",
                "partial socket writes that armed write interest",
            ),
        });
        let gauge_src = Arc::clone(&stats);
        registry.register_collector(
            "invector_serve_open_connections",
            "currently open reactor connections",
            move || gauge_src.open.load(Ordering::Relaxed),
        );
        stats
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    fd: i32,
    rbuf: Ring,
    wbuf: Ring,
    /// Reused linearization buffer for frames that wrap the read ring.
    scratch: Vec<u8>,
    /// `Hello` handshake completed.
    greeted: bool,
    /// Flush the write ring, then close; no further reads.
    closing: bool,
    /// Peer half-closed its write side (read returned EOF).
    peer_eof: bool,
    /// Read interest dropped due to write-ring backpressure.
    read_paused: bool,
    /// Interest bits currently registered with the poller.
    interest: u8,
    /// State pinned by `SnapshotBegin` for chunked transfer; replaced by
    /// the next `SnapshotBegin`, dropped with the connection.
    pinned: Option<std::sync::Arc<crate::server::PinnedState>>,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Conn {
        Conn {
            stream,
            fd,
            rbuf: Ring::new(),
            wbuf: Ring::new(),
            scratch: Vec::new(),
            greeted: false,
            closing: false,
            peer_eof: false,
            read_paused: false,
            interest: INTEREST_READ,
            pinned: None,
        }
    }

    /// The interest this connection should have registered right now.
    fn desired_interest(&self) -> u8 {
        let mut want = 0u8;
        if !self.closing && !self.peer_eof && !self.read_paused {
            want |= INTEREST_READ;
        }
        if !self.wbuf.is_empty() {
            want |= INTEREST_WRITE;
        }
        want
    }
}

/// Encodes `reply` as a length-prefixed frame into a write ring.
fn queue_reply(wbuf: &mut Ring, reply: &Reply) {
    let body = reply.encode();
    wbuf.push(&(body.len() as u32).to_le_bytes());
    wbuf.push(&body);
}

/// State shared by every reactor thread.
struct Shared {
    core: Arc<ServerCore>,
    stop: Arc<AtomicBool>,
    stats: Arc<ReactorStats>,
    /// Per-thread handoff queues: the accept path (thread 0) pushes fresh
    /// streams here; the owning thread adopts them on its next wakeup.
    inboxes: Vec<Mutex<Vec<TcpStream>>>,
    /// Round-robin assignment cursor.
    next_thread: AtomicUsize,
}

/// Spawns the reactor: `io_threads` event-loop threads, thread 0 owning the
/// (nonblocking) listener. Returns the join handles.
pub(crate) fn spawn(
    core: Arc<ServerCore>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> std::io::Result<Vec<std::thread::JoinHandle<()>>> {
    let config = core.config();
    let io_threads = config.io_threads.max(1);
    let kind = config.reactor;
    let stats = ReactorStats::new(core.registry());
    let shared = Arc::new(Shared {
        core,
        stop,
        stats,
        inboxes: (0..io_threads).map(|_| Mutex::new(Vec::new())).collect(),
        next_thread: AtomicUsize::new(0),
    });
    let mut handles = Vec::with_capacity(io_threads);
    for t in 0..io_threads {
        let shared = Arc::clone(&shared);
        let listener = if t == 0 { Some(listener.try_clone()?) } else { None };
        handles.push(
            std::thread::Builder::new()
                .name(format!("invector-serve-io{t}"))
                .spawn(move || io_loop(t, &shared, listener, kind))
                .expect("spawn reactor thread"),
        );
    }
    Ok(handles)
}

/// One event-loop thread: poll, adopt handed-off connections, accept (thread
/// 0), and drive per-connection state machines.
fn io_loop(thread_idx: usize, shared: &Shared, listener: Option<TcpListener>, kind: ReactorKind) {
    use std::os::fd::AsRawFd;
    let mut poller = match Poller::new(kind) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("invector-serve: reactor poller init failed: {e}");
            return;
        }
    };
    if let Some(l) = &listener {
        let _ = poller.register(l.as_raw_fd(), LISTENER_TOKEN, INTEREST_READ);
    }
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut open_here = 0usize;

    loop {
        if poller.wait(&mut events, WAIT_MS).is_err() {
            break;
        }
        shared.stats.wakeups.inc();
        if !events.is_empty() {
            shared.stats.readiness_batches.inc();
            shared.stats.readiness_events.add(events.len() as u64);
        }

        // Adopt connections handed off by the accept path.
        let handoff: Vec<TcpStream> =
            shared.inboxes[thread_idx].lock().expect("inbox lock").drain(..).collect();
        for stream in handoff {
            let fd = stream.as_raw_fd();
            let token = free.pop().unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
            let conn = Conn::new(stream, fd);
            if poller.register(fd, token, conn.interest).is_ok() {
                conns[token] = Some(conn);
                open_here += 1;
            } else {
                free.push(token);
                shared.stats.open.fetch_sub(1, Ordering::Relaxed);
            }
        }

        let stopping = shared.stop.load(Ordering::Acquire);

        // The scan poller reports every connection ready each pass; epoll
        // and poll report only what fired. Either way, drive what's listed.
        for ev in events.iter().copied() {
            if ev.token == LISTENER_TOKEN {
                if let Some(l) = &listener {
                    accept_ready(l, shared, stopping);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(ev.token).and_then(Option::as_mut) else {
                continue;
            };
            let dead = ev.error || drive(conn, shared, stopping, ev.readable).is_err();
            if dead || (conn.closing && conn.wbuf.is_empty()) {
                let _ = poller.deregister(conn.fd);
                let _ = conn.stream.shutdown(Shutdown::Both);
                conns[ev.token] = None;
                free.push(ev.token);
                open_here -= 1;
                shared.stats.open.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let want = conn.desired_interest();
            if want != conn.interest {
                conn.interest = want;
                let _ = poller.modify(conn.fd, ev.token, want);
            }
        }

        // The scan poller never lists the listener; accept opportunistically.
        #[cfg(not(target_os = "linux"))]
        if let Some(l) = &listener {
            accept_ready(l, shared, stopping);
        }

        if stopping {
            // Graceful close: stop reading everywhere, flush what's queued
            // (Bye replies in particular) within the grace window, then bail.
            let deadline = Instant::now() + CLOSE_GRACE;
            for conn in conns.iter_mut().flatten() {
                conn.closing = true;
            }
            while Instant::now() < deadline {
                let mut pending = false;
                for conn in conns.iter_mut().flatten() {
                    let _ = conn.wbuf.write_to(&mut conn.stream);
                    pending |= !conn.wbuf.is_empty();
                }
                if !pending {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            for conn in conns.iter_mut().flatten() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            shared.stats.open.fetch_sub(open_here as u64, Ordering::Relaxed);
            return;
        }
    }
}

/// Accepts every pending connection, enforcing `max_connections` and
/// handing fresh streams to io threads round-robin.
fn accept_ready(listener: &TcpListener, shared: &Shared, stopping: bool) {
    let config = shared.core.config();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stopping {
                    continue;
                }
                let open = shared.stats.open.load(Ordering::Relaxed);
                if open as usize >= config.max_connections {
                    shared.stats.accept_overflow.inc();
                    continue;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                shared.stats.open.fetch_add(1, Ordering::Relaxed);
                shared.stats.accepted.inc();
                let t = shared.next_thread.fetch_add(1, Ordering::Relaxed) % shared.inboxes.len();
                shared.inboxes[t].lock().expect("inbox lock").push(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Drives one connection through a readiness event: flush pending writes,
/// read while the socket has bytes and backpressure allows, decode and
/// process complete frames, and re-attempt the flush.
///
/// `Err(())` means the connection died (I/O error or protocol violation
/// with nothing left to flush).
fn drive(conn: &mut Conn, shared: &Shared, stopping: bool, readable: bool) -> Result<(), ()> {
    let config = shared.core.config();
    let write_cap = config.write_buffer_cap;

    // Writable first: draining the ring may lift read backpressure.
    flush(conn, shared)?;
    if conn.read_paused && conn.wbuf.len() < write_cap {
        conn.read_paused = false;
    }

    // Frames may already be complete in the ring from a paused round.
    process(conn, shared, stopping)?;

    // Read until the socket drains, the per-event budget is spent, or
    // backpressure pauses the connection.
    let mut budget = if readable { config.read_buffer_cap.max(READ_CHUNK) } else { 0 };
    while !conn.closing && !conn.peer_eof && budget > 0 {
        if conn.wbuf.len() >= write_cap {
            flush(conn, shared)?;
            if conn.wbuf.len() >= write_cap {
                if !conn.read_paused {
                    conn.read_paused = true;
                    shared.stats.read_stalls.inc();
                }
                break;
            }
            conn.read_paused = false;
        }
        let chunk = budget.min(READ_CHUNK);
        match conn.rbuf.read_from(&mut conn.stream, chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                budget -= n;
                process(conn, shared, stopping)?;
                if n < chunk {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }

    // Serve remaining buffered frames as the socket accepts replies. Without
    // this pump a drained write ring plus a quiet peer leaves complete
    // frames stranded in the read ring with no future readiness event to
    // revisit them. Stop when no complete frame is left, or when the write
    // ring stays over the cap — write interest then guarantees a wakeup.
    loop {
        flush(conn, shared)?;
        if conn.read_paused && conn.wbuf.len() < write_cap {
            conn.read_paused = false;
        }
        if conn.closing || conn.wbuf.len() >= write_cap || !conn.rbuf.has_complete_frame() {
            break;
        }
        process(conn, shared, stopping)?;
    }

    // A half-closed peer winds down once every decodable frame is served;
    // an EOF-truncated partial frame is discarded.
    if conn.peer_eof && !conn.closing && !conn.rbuf.has_complete_frame() {
        conn.closing = true;
        flush(conn, shared)?;
    }
    Ok(())
}

/// Attempts to drain the write ring; a partial write arms write interest
/// via the stall counter + desired-interest settle in the caller.
fn flush(conn: &mut Conn, shared: &Shared) -> Result<(), ()> {
    match conn.wbuf.write_to(&mut conn.stream) {
        Ok(true) => Ok(()),
        Ok(false) => {
            shared.stats.write_stalls.inc();
            Ok(())
        }
        Err(_) => Err(()),
    }
}

/// Decodes and serves every complete frame currently in the read ring.
/// Stops early (leaving frames buffered) when the write ring crosses the
/// backpressure cap.
fn process(conn: &mut Conn, shared: &Shared, _stopping: bool) -> Result<(), ()> {
    let write_cap = shared.core.config().write_buffer_cap;
    // Disjoint field borrows: the decoded frame borrows rbuf/scratch while
    // the reply path mutates wbuf/greeted/closing.
    let Conn { rbuf, scratch, wbuf, greeted, closing, pinned, .. } = conn;
    loop {
        if *closing || wbuf.len() >= write_cap {
            return Ok(());
        }
        let frame = match rbuf.pop_frame(scratch) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()),
            Err(ProtoError::Malformed(m)) => {
                queue_reply(wbuf, &Reply::Error(m));
                *closing = true;
                return Ok(());
            }
            Err(ProtoError::Io(_)) => return Err(()),
        };
        let request = match RequestView::decode(frame) {
            Ok(r) => r,
            Err(ProtoError::Malformed(m)) => {
                queue_reply(wbuf, &Reply::Error(m));
                *closing = true;
                return Ok(());
            }
            Err(ProtoError::Io(_)) => return Err(()),
        };
        respond(greeted, closing, pinned, wbuf, shared, request);
    }
}

/// Serves one decoded request, queueing the reply. The update path hands
/// the borrowed view straight to core admission — updates never exist as an
/// intermediate `Vec` between the socket and the shard queues.
fn respond(
    greeted: &mut bool,
    closing: &mut bool,
    pinned: &mut Option<std::sync::Arc<crate::server::PinnedState>>,
    wbuf: &mut Ring,
    shared: &Shared,
    request: RequestView<'_>,
) {
    let core = &shared.core;
    let reply = match (*greeted, request) {
        (false, RequestView::Hello { version }) if version == PROTOCOL_VERSION => {
            *greeted = true;
            Reply::Hello {
                version: PROTOCOL_VERSION,
                shards: core.config().shards as u16,
                quantum: core.config().quantum as u32,
                tables: core.config().tables.clone(),
            }
        }
        (false, RequestView::Hello { version }) => {
            *closing = true;
            Reply::Error(format!("protocol version {version} != {PROTOCOL_VERSION}"))
        }
        (false, _) => {
            *closing = true;
            Reply::Error("expected Hello".into())
        }
        (true, RequestView::Hello { .. }) => Reply::Error("already said hello".into()),
        (true, RequestView::Update { table, updates }) => match core.submit_view(table, &updates) {
            SubmitOutcome::Accepted { accepted, watermark } => Reply::Ack { accepted, watermark },
            SubmitOutcome::Rejected { accepted, retry_after_ms, reason } => {
                Reply::Reject { accepted, retry_after_ms, reason }
            }
            SubmitOutcome::Failed(m) => Reply::Error(m),
        },
        (true, RequestView::EdgeOps { table, ops }) => match core.submit_edge_ops_view(table, &ops)
        {
            SubmitOutcome::Accepted { accepted, watermark } => Reply::Ack { accepted, watermark },
            SubmitOutcome::Rejected { accepted, retry_after_ms, reason } => {
                Reply::Reject { accepted, retry_after_ms, reason }
            }
            SubmitOutcome::Failed(m) => Reply::Error(m),
        },
        (true, RequestView::WindowQuery { table, bucket }) => {
            match core.window_query(table, bucket) {
                Ok(w) => Reply::Window {
                    table: w.table,
                    watermark: w.watermark,
                    bucket: w.bucket,
                    expired: w.expired,
                    values: w.values,
                },
                Err(m) => Reply::Error(m),
            }
        }
        (true, RequestView::TopK { table, k }) => match core.top_k(table, k) {
            Ok(p) => Reply::TopK { table: p.table, watermark: p.watermark, entries: p.entries },
            Err(m) => Reply::Error(m),
        },
        (true, RequestView::Flush) => {
            let report = core.flush();
            Reply::Ack {
                accepted: report.applied as u32,
                watermark: core.watermarks().iter().sum(),
            }
        }
        (true, RequestView::Snapshot { table }) => match core.snapshot(table) {
            Ok(s) => Reply::Snapshot {
                table,
                watermark: s.watermark,
                checksum: s.checksum,
                values: s.bits(),
            },
            Err(m) => Reply::Error(m),
        },
        (true, RequestView::SnapshotBegin) => {
            let pin = core.pin_state();
            let tables = pin
                .tables
                .iter()
                .enumerate()
                .map(|(t, p)| SnapshotMetaTable {
                    table: t as u16,
                    watermark: p.watermark,
                    len: p.bits.len() as u64,
                    checksum: p.checksum,
                })
                .collect();
            let reply = Reply::SnapshotMeta {
                checkpoint: pin.checkpoint,
                index: pin.index,
                chunk_values: SNAPSHOT_CHUNK_VALUES as u32,
                tables,
            };
            *pinned = Some(pin);
            reply
        }
        (true, RequestView::SnapshotChunk { table, chunk }) => match pinned.as_deref() {
            None => Reply::Error("SnapshotChunk before SnapshotBegin".into()),
            Some(pin) => match chunk_of(pin, table, chunk) {
                Ok(values) => Reply::SnapshotChunk { table, chunk, values },
                Err(m) => Reply::Error(m),
            },
        },
        (true, RequestView::LogTail { checkpoint, index, max_bytes }) => {
            match core.log_tail(checkpoint, index, max_bytes) {
                Ok(page) => Reply::LogRecords {
                    checkpoint: page.checkpoint,
                    next_index: page.next_index,
                    head: page.head,
                    reset: page.reset,
                    records: page.records,
                },
                Err(m) => Reply::Error(m),
            }
        }
        (true, RequestView::Stats) => Reply::Stats(core.stats_summary()),
        (true, RequestView::Metrics) => Reply::Metrics(core.metrics_text()),
        (true, RequestView::Shutdown) => {
            let watermarks = core.begin_shutdown();
            *closing = true;
            shared.stop.store(true, Ordering::Release);
            Reply::Bye { watermarks }
        }
    };
    queue_reply(wbuf, &reply);
}

/// One chunk of a pinned table's bit stream, by fixed
/// [`SNAPSHOT_CHUNK_VALUES`] geometry.
fn chunk_of(pin: &PinnedState, table: u16, chunk: u32) -> Result<Vec<u32>, String> {
    let bits = &pin
        .tables
        .get(table as usize)
        .ok_or_else(|| format!("unknown table {table} in pinned state"))?
        .bits;
    let start = (chunk as usize) * SNAPSHOT_CHUNK_VALUES;
    if start >= bits.len() && !(bits.is_empty() && chunk == 0) {
        return Err(format!("chunk {chunk} beyond table {table} of {} values", bits.len()));
    }
    let end = (start + SNAPSHOT_CHUNK_VALUES).min(bits.len());
    Ok(bits[start..end.max(start)].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_push_consume_round_trip() {
        let mut r = Ring::with_capacity(64);
        r.push(b"hello");
        assert_eq!(r.len(), 5);
        let (a, b) = r.front_slices();
        assert_eq!(a, b"hello");
        assert!(b.is_empty());
        r.consume(2);
        let (a, _) = r.front_slices();
        assert_eq!(a, b"llo");
        r.consume(3);
        assert!(r.is_empty());
    }

    #[test]
    fn ring_grows_and_wraps() {
        let mut r = Ring::with_capacity(64);
        // Rotate the head so pushes wrap the physical edge.
        r.push(&[0u8; 48]);
        r.consume(48);
        let payload: Vec<u8> = (0..40u8).collect();
        r.push(&payload);
        let (a, b) = r.front_slices();
        assert_eq!(a.len() + b.len(), 40);
        let mut got = a.to_vec();
        got.extend_from_slice(b);
        assert_eq!(got, payload);
        // Growth linearizes.
        let big: Vec<u8> = (0..200u8).collect();
        r.push(&big);
        assert!(r.capacity() >= 240);
        let (a, b) = r.front_slices();
        let mut got = a.to_vec();
        got.extend_from_slice(b);
        assert_eq!(&got[..40], &payload[..]);
        assert_eq!(&got[40..], &big[..]);
    }

    #[test]
    fn pop_frame_borrows_contiguous_and_spills_wrapped() {
        let mut r = Ring::with_capacity(32);
        let mut scratch = Vec::new();
        // Contiguous frame at the front.
        let body = b"abcdef";
        r.push(&(body.len() as u32).to_le_bytes());
        r.push(body);
        let frame = r.pop_frame(&mut scratch).unwrap().unwrap();
        assert_eq!(frame, body);
        assert!(scratch.is_empty(), "contiguous frame must not touch scratch");

        // Rotate so the next frame wraps the edge of the 32-byte buffer.
        r.push(&[0u8; 24]);
        r.consume(24);
        let body2 = b"0123456789abcdef";
        r.push(&(body2.len() as u32).to_le_bytes());
        r.push(body2);
        let frame = r.pop_frame(&mut scratch).unwrap().unwrap();
        assert_eq!(frame, body2);
    }

    #[test]
    fn pop_frame_waits_for_completion_and_rejects_oversize() {
        let mut r = Ring::new();
        let mut scratch = Vec::new();
        r.push(&8u32.to_le_bytes());
        r.push(b"1234");
        assert!(r.pop_frame(&mut scratch).unwrap().is_none(), "frame incomplete");
        r.push(b"5678");
        assert_eq!(r.pop_frame(&mut scratch).unwrap().unwrap(), b"12345678");

        let mut r = Ring::new();
        r.push(&(u32::MAX).to_le_bytes());
        assert!(r.pop_frame(&mut scratch).is_err(), "oversize length must refuse");
    }

    #[test]
    fn reactor_kind_parses() {
        assert_eq!("auto".parse::<ReactorKind>().unwrap(), ReactorKind::Auto);
        assert_eq!("epoll".parse::<ReactorKind>().unwrap(), ReactorKind::Epoll);
        assert_eq!("poll".parse::<ReactorKind>().unwrap(), ReactorKind::Poll);
        assert!("uring".parse::<ReactorKind>().is_err());
        assert_eq!(ReactorKind::Poll.to_string(), "poll");
    }
}
