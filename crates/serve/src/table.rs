//! Resident tables: the datasets the service folds update streams into.
//!
//! A table is a dense array of `f32` or `i32` slots under one associative
//! operator. Every supported `(type, operator)` pair maps onto an engine
//! driver that the native AVX-512 backend fuses (`accumulate_{add,min,max}`
//! over `f32`/`i32`), so the serving hot path is exactly the paper's
//! in-vector reduction.

use invector_core::exec::{execute_epoch, EpochScratch, ExecPolicy, ExecReport};
use invector_core::ops::{Max, Min, ReduceOp, Sum};
use invector_core::stats::DepthHistogram;
use invector_core::tune::{EpochPolicy, PolicySchedule};
use invector_streamkit::{AggOp, Engine, StreamKind};

use crate::epoch::ReorderBuffer;
use crate::protocol::Update;

/// Element type of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ValueKind {
    /// IEEE-754 single-precision slots.
    F32 = 0,
    /// 32-bit signed integer slots.
    I32 = 1,
}

/// Associative operator of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Accumulation (`invec_add`); slots start at 0.
    Add = 0,
    /// Relaxation toward the minimum (`invec_min`); slots start at the
    /// type's maximum (`+∞` / `i32::MAX`).
    Min = 1,
    /// Relaxation toward the maximum (`invec_max`); slots start at the
    /// type's minimum (`-∞` / `i32::MIN`).
    Max = 2,
}

impl OpKind {
    /// Short operator name, matching the paper's `invec_*` interface.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Min => "min",
            OpKind::Max => "max",
        }
    }
}

impl ValueKind {
    /// Short type name.
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::F32 => "f32",
            ValueKind::I32 => "i32",
        }
    }
}

/// Static description of one table, fixed at server construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Table name (diagnostics only; requests address tables by id).
    pub name: String,
    /// Element type.
    pub kind: ValueKind,
    /// Associative operator.
    pub op: OpKind,
    /// Number of slots.
    pub len: usize,
    /// What the table computes over its stream: a flat associative fold
    /// (the default), or one of the stateful streamkit engines. Stream
    /// tables are always `i32` (graph ranks ride as f32 bit patterns) and
    /// their length is fixed by the kind's geometry.
    pub stream: StreamKind,
}

impl TableSpec {
    /// An `f32` table under `op`.
    pub fn f32(name: &str, op: OpKind, len: usize) -> TableSpec {
        TableSpec {
            name: name.to_string(),
            kind: ValueKind::F32,
            op,
            len,
            stream: StreamKind::Flat,
        }
    }

    /// An `i32` table under `op`.
    pub fn i32(name: &str, op: OpKind, len: usize) -> TableSpec {
        TableSpec {
            name: name.to_string(),
            kind: ValueKind::I32,
            op,
            len,
            stream: StreamKind::Flat,
        }
    }

    /// An incremental-PageRank graph table over an evolving edge stream.
    pub fn pagerank(name: &str, vertices: u32, iters: u32) -> TableSpec {
        Self::stream_table(name, OpKind::Add, StreamKind::GraphPageRank { vertices, iters })
    }

    /// An incremental weakly-connected-components graph table.
    pub fn wcc(name: &str, vertices: u32) -> TableSpec {
        Self::stream_table(name, OpKind::Min, StreamKind::GraphWcc { vertices })
    }

    /// A window-bucketed aggregation table under `op`.
    pub fn window(
        name: &str,
        op: OpKind,
        keys: u32,
        buckets: u32,
        width: u32,
        timed: bool,
    ) -> TableSpec {
        Self::stream_table(name, op, StreamKind::Window { keys, buckets, width, timed })
    }

    fn stream_table(name: &str, op: OpKind, stream: StreamKind) -> TableSpec {
        TableSpec {
            name: name.to_string(),
            kind: ValueKind::I32,
            op,
            len: stream.required_len().unwrap_or(0),
            stream,
        }
    }

    /// Validates the spec's stream geometry (parameter ranges, value kind,
    /// slot count). Flat tables always pass.
    pub fn validate_stream(&self) -> Result<(), String> {
        self.stream.validate().map_err(|e| format!("table '{}': {e}", self.name))?;
        if let Some(required) = self.stream.required_len() {
            if self.kind != ValueKind::I32 {
                return Err(format!("table '{}': stream tables must be i32", self.name));
            }
            if self.len != required {
                return Err(format!(
                    "table '{}': stream geometry requires {required} slots, spec has {}",
                    self.name, self.len
                ));
            }
        }
        Ok(())
    }

    /// The streamkit operator equivalent of the table's [`OpKind`].
    pub(crate) fn agg_op(&self) -> AggOp {
        match self.op {
            OpKind::Add => AggOp::Add,
            OpKind::Min => AggOp::Min,
            OpKind::Max => AggOp::Max,
        }
    }
}

/// Typed table contents.
#[derive(Debug, Clone, PartialEq)]
pub enum TableData {
    /// `f32` slots.
    F32(Vec<f32>),
    /// `i32` slots.
    I32(Vec<i32>),
}

impl TableData {
    fn identity(spec: &TableSpec) -> TableData {
        match spec.kind {
            ValueKind::F32 => {
                let id = match spec.op {
                    OpKind::Add => 0.0f32,
                    OpKind::Min => f32::INFINITY,
                    OpKind::Max => f32::NEG_INFINITY,
                };
                TableData::F32(vec![id; spec.len])
            }
            ValueKind::I32 => {
                let id = match spec.op {
                    OpKind::Add => 0i32,
                    OpKind::Min => i32::MAX,
                    OpKind::Max => i32::MIN,
                };
                TableData::I32(vec![id; spec.len])
            }
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            TableData::F32(v) => v.len(),
            TableData::I32(v) => v.len(),
        }
    }

    /// `true` for a zero-slot table.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw bit patterns of every slot, in order — the wire representation,
    /// and the unit of the bitwise determinism contract.
    pub fn to_bits(&self) -> Vec<u32> {
        match self {
            TableData::F32(v) => v.iter().map(|x| x.to_bits()).collect(),
            TableData::I32(v) => v.iter().map(|&x| x as u32).collect(),
        }
    }

    /// Slots widened to `f64` (exact for both kinds), for harness records.
    pub fn to_f64(&self) -> Vec<f64> {
        match self {
            TableData::F32(v) => v.iter().map(|&x| f64::from(x)).collect(),
            TableData::I32(v) => v.iter().map(|&x| f64::from(x)).collect(),
        }
    }
}

/// Outcome of applying one batch slice.
#[derive(Debug, Clone, Default)]
pub struct SliceReport {
    /// Updates in the slice.
    pub applied: usize,
    /// Slice capacity under the quantum the slice was cut at (the
    /// occupancy denominator; `applied < offered` only for drain tails
    /// and scheduled-boundary cuts).
    pub offered: usize,
    /// SIMD vector iterations the slice ran (16 lane slots each).
    pub vectors: u64,
    /// Conflict-depth histogram of the slice's in-vector reduction.
    pub depth: DepthHistogram,
}

/// One resident table plus its ingest bookkeeping: the seq-ordered reorder
/// buffer and the reusable engine scratch.
#[derive(Debug)]
pub struct TableState {
    spec: TableSpec,
    data: TableData,
    pending: ReorderBuffer,
    /// Watermark-keyed policy schedule the scheduled cut path follows —
    /// the per-table half of the tuning determinism contract.
    schedule: PolicySchedule,
    chunk: Vec<Update>,
    scratch_f32: EpochScratch<f32>,
    scratch_i32: EpochScratch<i32>,
    /// The streamkit engine for stream tables (`None` for flat folds). Its
    /// caches are a pure function of the slot array, rebuilt on install.
    engine: Option<Engine>,
    /// Memoized `(watermark, crc)` of the current state: snapshots and WAL
    /// seals both checksum the full table, and between applies the answer
    /// cannot change, so repeated reads cost one cache probe instead of a
    /// multi-megabyte CRC pass.
    checksum_cache: std::cell::Cell<Option<(u64, u32)>>,
}

impl TableState {
    /// A fresh table with every slot at the operator's identity, cutting
    /// under `initial` until a policy change is scheduled.
    pub fn new(spec: TableSpec, initial: EpochPolicy) -> TableState {
        let mut data = TableData::identity(&spec);
        let mut engine = Engine::for_kind(&spec.stream, spec.agg_op());
        if let (Some(engine), TableData::I32(slots)) = (engine.as_mut(), &mut data) {
            engine.init(slots);
        }
        let state = TableState {
            spec,
            data,
            pending: ReorderBuffer::new(),
            schedule: PolicySchedule::fixed(initial),
            chunk: Vec::new(),
            scratch_f32: EpochScratch::new(),
            scratch_i32: EpochScratch::new(),
            engine,
            checksum_cache: std::cell::Cell::new(None),
        };
        // Warm the memo at construction: the first snapshot/seal of a large
        // table should not pay a full-table CRC on the serving path.
        state.checksum();
        state
    }

    /// The table's static description.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// The applied watermark: updates with `seq < watermark` are folded in.
    pub fn watermark(&self) -> u64 {
        self.pending.watermark()
    }

    /// Buffered updates not yet applied (contiguous or not).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Duplicate sequence numbers dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.pending.duplicates()
    }

    /// Current table contents.
    pub fn data(&self) -> &TableData {
        &self.data
    }

    /// Buffers one update for ordered application. Returns `false` when the
    /// sequence number was already seen (dropped as a duplicate).
    pub fn absorb(&mut self, update: Update) -> bool {
        debug_assert!(
            (update.idx as usize) < self.spec.len,
            "index {} out of bounds for table '{}' of {} slots",
            update.idx,
            self.spec.name,
            self.spec.len
        );
        self.pending.insert(update)
    }

    /// Schedules `policy` for every slice starting at watermark `from` or
    /// beyond — the tuning install point (and the trace replay loader).
    ///
    /// # Panics
    ///
    /// Panics if `from` precedes an already-scheduled change; installs
    /// happen in watermark order by construction.
    pub fn push_policy(&mut self, from: u64, policy: EpochPolicy) {
        self.schedule.push(from, policy);
    }

    /// The table's watermark-keyed policy schedule.
    pub fn schedule(&self) -> &PolicySchedule {
        &self.schedule
    }

    /// Applies pending updates under the table's own policy schedule —
    /// the serving epoch path. See [`cut_with`](Self::cut_with) for the
    /// cut rules.
    pub fn cut_scheduled(&mut self, drain: bool) -> Vec<SliceReport> {
        self.cut_scheduled_logged(drain, &mut |_| {})
    }

    /// [`cut_scheduled`](Self::cut_scheduled) with a write-ahead hook:
    /// `log` sees every slice exactly as cut, after it is removed from the
    /// reorder buffer and before it is applied — the durability point. A
    /// slice that reaches `log` is already admitted, so replaying logged
    /// slices in order through [`apply_logged`](Self::apply_logged)
    /// reproduces the same cuts, and therefore the same bits.
    pub fn cut_scheduled_logged(
        &mut self,
        drain: bool,
        log: &mut dyn FnMut(&[Update]),
    ) -> Vec<SliceReport> {
        let schedule = std::mem::take(&mut self.schedule);
        let slices = self.cut_with(&schedule, drain, log);
        self.schedule = schedule;
        slices
    }

    /// Applies pending updates in contiguous `seq` order as fixed-size
    /// batch slices of exactly `quantum` updates; with `drain`, a final
    /// partial slice empties the contiguous run. The static-policy
    /// convenience over [`cut_with`](Self::cut_with) (the table's own
    /// schedule is untouched).
    pub fn cut_and_apply(
        &mut self,
        quantum: usize,
        drain: bool,
        policy: &ExecPolicy,
    ) -> Vec<SliceReport> {
        self.cut_with(
            &PolicySchedule::fixed(EpochPolicy::new(*policy, quantum)),
            drain,
            &mut |_| {},
        )
    }

    /// The cut loop: each slice starts at the current watermark `wm` and
    /// runs under `schedule.at(wm)` — exactly `quantum` updates, or the
    /// contiguous remainder when `drain`ing.
    ///
    /// Cut positions are what make snapshots reproducible: under a fixed
    /// schedule they depend only on the stream itself (and on explicitly
    /// client-requested drains), never on arrival timing. A scheduled
    /// policy change is a hard cut point — a slice never spans one — so a
    /// changing quantum keeps the same property: boundaries are a pure
    /// function of (stream content, schedule), and replaying a recorded
    /// schedule reproduces every slice (and every table bit) of the
    /// original run.
    fn cut_with(
        &mut self,
        schedule: &PolicySchedule,
        drain: bool,
        log: &mut dyn FnMut(&[Update]),
    ) -> Vec<SliceReport> {
        let mut slices = Vec::new();
        loop {
            let wm = self.pending.watermark();
            let policy = schedule.at(wm);
            let quantum = policy.quantum;
            let run = self.pending.contiguous_len();
            let mut take = if run >= quantum {
                quantum
            } else if drain && run > 0 {
                run
            } else {
                break;
            };
            if let Some(next) = schedule.next_change_after(wm) {
                take = take.min((next - wm) as usize);
            }
            self.pending.pop_run(take, &mut self.chunk);
            log(&self.chunk);
            let report = self.apply_chunk(&policy.exec);
            slices.push(SliceReport {
                applied: take,
                offered: quantum,
                vectors: report.stats.vectors,
                depth: report.stats.depth,
            });
        }
        slices
    }

    /// Replays one logged slice: the updates must start exactly at the
    /// current watermark and be `seq`-contiguous (they were cut that way).
    /// The slice bypasses the reorder buffer and is applied as a single
    /// chunk under the schedule's policy at its watermark — the same
    /// execution the original cut ran, so the result is bitwise identical.
    ///
    /// # Errors
    ///
    /// Rejects a slice that is empty, does not start at the watermark, is
    /// not contiguous, or indexes out of the table's bounds.
    pub fn apply_logged(&mut self, updates: &[Update]) -> Result<SliceReport, String> {
        let wm = self.pending.watermark();
        let first = updates.first().ok_or("empty logged slice")?;
        if first.seq != wm {
            return Err(format!(
                "logged slice for table '{}' starts at seq {}, watermark is {wm}",
                self.spec.name, first.seq
            ));
        }
        for (i, u) in updates.iter().enumerate() {
            if u.seq != wm + i as u64 {
                return Err(format!(
                    "logged slice for table '{}' is not seq-contiguous at offset {i}",
                    self.spec.name
                ));
            }
            if (u.idx as usize) >= self.spec.len {
                return Err(format!(
                    "logged update indexes slot {} beyond table '{}' of {} slots",
                    u.idx, self.spec.name, self.spec.len
                ));
            }
        }
        let policy = self.schedule.at(wm);
        self.chunk.clear();
        self.chunk.extend_from_slice(updates);
        self.pending.advance_to(wm + updates.len() as u64);
        let report = self.apply_chunk(&policy.exec);
        Ok(SliceReport {
            applied: updates.len(),
            offered: policy.quantum,
            vectors: report.stats.vectors,
            depth: report.stats.depth,
        })
    }

    /// Installs externally recovered contents (checkpoint load, follower
    /// bootstrap or re-bootstrap): replaces the slot values and
    /// fast-forwards the watermark. The watermark may only advance, and
    /// nothing may be buffered — installs happen on fresh cores and on
    /// caught-up read-only followers, never mid-ingest.
    ///
    /// # Errors
    ///
    /// Rejects data of the wrong kind or length, buffered updates, or a
    /// watermark regression.
    pub fn install(&mut self, data: TableData, watermark: u64) -> Result<(), String> {
        if self.pending_len() != 0 {
            return Err(format!(
                "table '{}' has buffered updates; cannot install a snapshot",
                self.spec.name
            ));
        }
        if watermark < self.watermark() {
            return Err(format!(
                "snapshot watermark {watermark} regresses table '{}' at {}",
                self.spec.name,
                self.watermark()
            ));
        }
        let kind_ok = matches!(
            (&data, self.spec.kind),
            (TableData::F32(_), ValueKind::F32) | (TableData::I32(_), ValueKind::I32)
        );
        if !kind_ok {
            return Err(format!("snapshot kind mismatch for table '{}'", self.spec.name));
        }
        if data.len() != self.spec.len {
            return Err(format!(
                "snapshot of {} slots for table '{}' of {} slots",
                data.len(),
                self.spec.name,
                self.spec.len
            ));
        }
        self.data = data;
        if let (Some(engine), TableData::I32(slots)) = (self.engine.as_mut(), &self.data) {
            engine.rebuild(slots);
        }
        self.pending.advance_to(watermark);
        self.checksum_cache.set(None);
        Ok(())
    }

    /// The table's streamkit engine, for stream-table queries.
    pub fn engine(&self) -> Option<&Engine> {
        self.engine.as_ref()
    }

    /// CRC-32 over the current slot bit patterns, little-endian — the
    /// per-epoch state checksum sealed into the WAL and compared across
    /// leader/follower. Matches [`crate::protocol::snapshot_checksum`]
    /// without materializing the bit vector.
    ///
    /// Memoized per watermark: state only changes when updates apply, and
    /// every apply advances the watermark, so a hit is always exact.
    pub fn checksum(&self) -> u32 {
        let wm = self.watermark();
        if let Some((at, crc)) = self.checksum_cache.get() {
            if at == wm {
                return crc;
            }
        }
        // Stage slots through a fixed buffer so the CRC core sees long runs
        // of bytes (its slicing-by-8 fast path) instead of 4-byte calls.
        fn fold(crc: &mut invector_replog::Crc32, slots: impl Iterator<Item = u32>) {
            let mut buf = [0u8; 4096];
            let mut fill = 0;
            for bits in slots {
                buf[fill..fill + 4].copy_from_slice(&bits.to_le_bytes());
                fill += 4;
                if fill == buf.len() {
                    crc.update(&buf);
                    fill = 0;
                }
            }
            crc.update(&buf[..fill]);
        }
        let mut crc = invector_replog::Crc32::new();
        match &self.data {
            TableData::F32(v) => fold(&mut crc, v.iter().map(|x| x.to_bits())),
            TableData::I32(v) => fold(&mut crc, v.iter().map(|&x| x as u32)),
        }
        let out = crc.finish();
        self.checksum_cache.set(Some((wm, out)));
        out
    }

    /// Runs the engine on the updates currently staged in `self.chunk`.
    fn apply_chunk(&mut self, policy: &ExecPolicy) -> ExecReport {
        fn run<T, Op>(
            target: &mut [T],
            chunk: &[Update],
            scratch: &mut EpochScratch<T>,
            policy: &ExecPolicy,
            from_bits: impl Fn(u32) -> T,
        ) -> ExecReport
        where
            T: invector_simd::SimdElement,
            Op: ReduceOp<T>,
        {
            execute_epoch::<T, Op>(
                target,
                chunk.iter().map(|u| (u.idx as i32, from_bits(u.bits))),
                scratch,
                policy,
            )
        }

        // Stream tables route the slice through their engine: the events
        // are the same logged updates, so WAL replay and replication take
        // this exact path too.
        if let Some(engine) = self.engine.as_mut() {
            let TableData::I32(slots) = &mut self.data else {
                unreachable!("stream tables are validated to be i32")
            };
            let events: Vec<(u32, u32)> = self.chunk.iter().map(|u| (u.idx, u.bits)).collect();
            let stats = engine.apply(slots, &events, policy);
            return ExecReport { stats, workers: Vec::new() };
        }

        let chunk = &self.chunk;
        match (&mut self.data, self.spec.op) {
            (TableData::F32(v), OpKind::Add) => {
                run::<f32, Sum>(v, chunk, &mut self.scratch_f32, policy, f32::from_bits)
            }
            (TableData::F32(v), OpKind::Min) => {
                run::<f32, Min>(v, chunk, &mut self.scratch_f32, policy, f32::from_bits)
            }
            (TableData::F32(v), OpKind::Max) => {
                run::<f32, Max>(v, chunk, &mut self.scratch_f32, policy, f32::from_bits)
            }
            (TableData::I32(v), OpKind::Add) => {
                run::<i32, Sum>(v, chunk, &mut self.scratch_i32, policy, |b| b as i32)
            }
            (TableData::I32(v), OpKind::Min) => {
                run::<i32, Min>(v, chunk, &mut self.scratch_i32, policy, |b| b as i32)
            }
            (TableData::I32(v), OpKind::Max) => {
                run::<i32, Max>(v, chunk, &mut self.scratch_i32, policy, |b| b as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ExecPolicy {
        ExecPolicy::default().deterministic(true)
    }

    fn state(spec: TableSpec) -> TableState {
        TableState::new(spec, EpochPolicy::new(policy(), 4096))
    }

    #[test]
    fn identity_initialization_per_op() {
        let t = state(TableSpec::f32("m", OpKind::Min, 3));
        assert_eq!(t.data(), &TableData::F32(vec![f32::INFINITY; 3]));
        let t = state(TableSpec::i32("c", OpKind::Add, 2));
        assert_eq!(t.data(), &TableData::I32(vec![0; 2]));
        let t = state(TableSpec::i32("x", OpKind::Max, 1));
        assert_eq!(t.data(), &TableData::I32(vec![i32::MIN]));
    }

    #[test]
    fn quantum_slices_apply_only_full_batches_until_drained() {
        let mut t = state(TableSpec::i32("c", OpKind::Add, 8));
        for seq in 0..10u64 {
            assert!(t.absorb(Update::i32(seq, (seq % 8) as u32, 1)));
        }
        // Quantum 4: two full slices apply, two updates stay pending.
        let slices = t.cut_and_apply(4, false, &policy());
        assert_eq!(slices.len(), 2);
        assert_eq!(t.watermark(), 8);
        assert_eq!(t.pending_len(), 2);
        // Drain cuts the partial tail.
        let slices = t.cut_and_apply(4, true, &policy());
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].applied, 2);
        assert_eq!(t.watermark(), 10);
        let TableData::I32(v) = t.data() else { panic!("i32 table") };
        assert_eq!(v.iter().sum::<i32>(), 10);
    }

    #[test]
    fn scheduled_policy_changes_cut_on_their_watermark() {
        let mut t =
            TableState::new(TableSpec::i32("c", OpKind::Add, 8), EpochPolicy::new(policy(), 4));
        for seq in 0..20u64 {
            t.absorb(Update::i32(seq, (seq % 8) as u32, 1));
        }
        // Quantum 4 until watermark 8, then quantum 8.
        t.push_policy(8, EpochPolicy::new(policy(), 8));
        let slices = t.cut_scheduled(false);
        let sizes: Vec<(usize, usize)> = slices.iter().map(|s| (s.applied, s.offered)).collect();
        assert_eq!(sizes, vec![(4, 4), (4, 4), (8, 8)], "4+4 under q=4, then one q=8 slice");
        assert_eq!(t.watermark(), 16);
        assert_eq!(t.pending_len(), 4, "partial q=8 tail waits for a drain");
        // A change scheduled mid-run acts as a hard cut point.
        t.push_policy(18, EpochPolicy::new(policy(), 2));
        let slices = t.cut_scheduled(true);
        let sizes: Vec<usize> = slices.iter().map(|s| s.applied).collect();
        assert_eq!(sizes, vec![2, 2], "drain stops at the boundary, then cuts under q=2");
        assert_eq!(t.watermark(), 20);
        assert_eq!(t.schedule().len(), 3);
    }

    #[test]
    fn out_of_order_arrival_is_held_back_until_contiguous() {
        let mut t = state(TableSpec::i32("c", OpKind::Add, 4));
        t.absorb(Update::i32(2, 0, 1));
        t.absorb(Update::i32(1, 0, 1));
        assert!(t.cut_and_apply(1, true, &policy()).is_empty(), "gap at seq 0 blocks");
        t.absorb(Update::i32(0, 0, 1));
        let slices = t.cut_and_apply(1, true, &policy());
        assert_eq!(slices.len(), 3);
        assert_eq!(t.watermark(), 3);
    }

    #[test]
    fn duplicates_are_dropped_and_counted() {
        let mut t = state(TableSpec::f32("m", OpKind::Min, 4));
        assert!(t.absorb(Update::f32(0, 1, 5.0)));
        assert!(!t.absorb(Update::f32(0, 1, 9.0)), "same seq again");
        t.cut_and_apply(1, true, &policy());
        assert!(!t.absorb(Update::f32(0, 2, 1.0)), "seq below watermark");
        assert_eq!(t.duplicates(), 2);
        let TableData::F32(v) = t.data() else { panic!("f32 table") };
        assert_eq!(v[1], 5.0, "first arrival wins");
    }

    #[test]
    fn every_op_kind_folds_through_the_engine() {
        let cases = [
            (TableSpec::f32("a", OpKind::Add, 4), [2.0f32, 3.0], 5.0f32),
            (TableSpec::f32("b", OpKind::Min, 4), [2.0, 3.0], 2.0),
            (TableSpec::f32("c", OpKind::Max, 4), [2.0, 3.0], 3.0),
        ];
        for (spec, vals, expect) in cases {
            let mut t = state(spec);
            t.absorb(Update::f32(0, 1, vals[0]));
            t.absorb(Update::f32(1, 1, vals[1]));
            t.cut_and_apply(16, true, &policy());
            let TableData::F32(v) = t.data() else { panic!("f32 table") };
            assert_eq!(v[1], expect);
        }
        for (op, vals, expect) in
            [(OpKind::Add, [2, 3], 5i32), (OpKind::Min, [2, 3], 2), (OpKind::Max, [2, 3], 3)]
        {
            let mut t = state(TableSpec::i32("t", op, 4));
            t.absorb(Update::i32(0, 1, vals[0]));
            t.absorb(Update::i32(1, 1, vals[1]));
            t.cut_and_apply(16, true, &policy());
            let TableData::I32(v) = t.data() else { panic!("i32 table") };
            assert_eq!(v[1], expect);
        }
    }
}
