//! Follower mode: replication by determinism.
//!
//! A follower is an ordinary [`ServerCore`] marked read-only, fed not by
//! client submits but by the leader's admitted-batch log. Because slice
//! cuts and slice results are pure functions of the logged stream, a
//! follower that replays the log holds bitwise-identical tables — and the
//! leader's `Seal` records let it *prove* that, epoch by epoch, with an
//! exact checksum compare instead of probabilistic spot checks.
//!
//! The lifecycle:
//!
//! 1. **Bootstrap**: `SnapshotBegin` pins a consistent all-table state on
//!    the leader plus the log position it corresponds to; the tables
//!    stream over in bounded `SnapshotChunk` frames (so no table size ever
//!    approaches the single-frame cap) and each is verified against the
//!    announced checksum before install.
//! 2. **Tail**: `LogTail` pages admitted-batch records from the pinned
//!    position; each `Batch` replays through the normal epoch path and
//!    each `Seal` is verified against the follower's own state checksum.
//! 3. **Reset**: if the leader checkpoints past the follower's position,
//!    the fetch comes back `reset` and the follower re-bootstraps.
//!
//! Any integrity failure — a scrambled chunk, a checksum mismatch, a seal
//! that disagrees with replayed state — parks the follower in
//! [`FollowStatus::Diverged`] with the reason; it never serves silently
//! drifted data.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::client::TcpClient;
use crate::server::{ServeConfig, ServerCore};
use crate::table::{TableData, ValueKind};
use crate::wal::WalRecord;

/// Where a follower is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FollowStatus {
    /// Fetching the bootstrap snapshot.
    Bootstrapping,
    /// Tailing the leader's log.
    Tailing,
    /// Stopped on an exact divergence or integrity failure; the reason is
    /// the full error message.
    Diverged(String),
    /// Stopped cleanly ([`Follower::stop`] or leader shutdown).
    Stopped,
}

/// A running follower: a read-only core kept converged with a leader.
#[derive(Debug)]
pub struct Follower {
    core: Arc<ServerCore>,
    status: Arc<Mutex<FollowStatus>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// How much log payload one `LogTail` fetch asks for.
const TAIL_PAGE_BYTES: u32 = 1 << 20;

/// Idle poll interval while the follower is caught up.
const TAIL_IDLE: Duration = Duration::from_millis(2);

impl Follower {
    /// Connects to a leader at `addr`, builds a read-only core mirroring
    /// the leader's announced tables, bootstraps it from a pinned
    /// snapshot, and starts the tail thread.
    ///
    /// `config` supplies local knobs (threads, backend, quantum is taken
    /// from the leader); its table list is replaced by the leader's.
    ///
    /// # Errors
    ///
    /// Returns a message for connection, bootstrap, or core-construction
    /// failures.
    pub fn start(addr: &str, mut config: ServeConfig) -> Result<Follower, String> {
        let mut client = TcpClient::connect(addr)?;
        config.tables = client.tables().to_vec();
        config.quantum = client.quantum() as usize;
        config.wal = None;
        let core = ServerCore::new(config)?;
        core.set_read_only(true);

        let status = Arc::new(Mutex::new(FollowStatus::Bootstrapping));
        let stop = Arc::new(AtomicBool::new(false));

        let (plan_checkpoint, plan_index) = bootstrap(&mut client, &core)?;
        *status.lock().expect("status lock") = FollowStatus::Tailing;

        let thread = {
            let core = Arc::clone(&core);
            let status = Arc::clone(&status);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("invector-serve-follow".into())
                .spawn(move || {
                    if let Err(m) = tail(&mut client, &core, &stop, plan_checkpoint, plan_index) {
                        *status.lock().expect("status lock") = FollowStatus::Diverged(m);
                        return;
                    }
                    let mut s = status.lock().expect("status lock");
                    if !matches!(*s, FollowStatus::Diverged(_)) {
                        *s = FollowStatus::Stopped;
                    }
                })
                .map_err(|e| format!("spawn follower thread: {e}"))?
        };

        Ok(Follower { core, status, stop, thread: Some(thread) })
    }

    /// The follower's read-only core (serve snapshots from it).
    pub fn core(&self) -> Arc<ServerCore> {
        Arc::clone(&self.core)
    }

    /// Current lifecycle status.
    pub fn status(&self) -> FollowStatus {
        self.status.lock().expect("status lock").clone()
    }

    /// Signals the tail thread to stop and waits for it.
    pub fn stop(mut self) -> FollowStatus {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.status()
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Pins and downloads the leader's state, verifying each table's checksum,
/// and installs it into the fresh core. Returns the pinned log position.
fn bootstrap(client: &mut TcpClient, core: &ServerCore) -> Result<(u64, u64), String> {
    let plan = client.snapshot_begin()?;
    let specs = client.tables().to_vec();
    if plan.tables.len() != specs.len() {
        return Err(format!(
            "snapshot plan covers {} tables, leader announced {}",
            plan.tables.len(),
            specs.len()
        ));
    }
    let mut installs = Vec::with_capacity(plan.tables.len());
    for (t, spec) in specs.iter().enumerate() {
        let meta = plan.tables[t];
        // The assembler verifies chunk order, total length, and checksum.
        let bits = client.fetch_pinned_table(&plan, t as u16)?;
        let data = match spec.kind {
            ValueKind::F32 => TableData::F32(bits.iter().map(|&b| f32::from_bits(b)).collect()),
            ValueKind::I32 => TableData::I32(bits.iter().map(|&b| b as i32).collect()),
        };
        installs.push((data, meta.watermark));
    }
    core.install_snapshot(installs)?;
    Ok((plan.checkpoint, plan.index))
}

/// The tail loop: fetch → decode → replay → verify, re-bootstrapping on a
/// checkpoint reset, until stopped or diverged.
fn tail(
    client: &mut TcpClient,
    core: &Arc<ServerCore>,
    stop: &AtomicBool,
    mut checkpoint: u64,
    mut index: u64,
) -> Result<(), String> {
    while !stop.load(Ordering::Acquire) {
        let page = client.log_tail(checkpoint, index, TAIL_PAGE_BYTES)?;
        if page.reset {
            // The leader checkpointed past us; our state is still exact
            // (every seal so far verified), but the log we were reading
            // is gone. Re-pin a fresh snapshot and install it — the
            // installed checksums are the leader's, so the follower is
            // bitwise-equal by construction and seal verification resumes
            // from the new position.
            let (c, i) = bootstrap(client, core)?;
            checkpoint = c;
            index = i;
            continue;
        }
        core.note_follower_lag(page.head.saturating_sub(page.next_index));
        if page.records.is_empty() {
            std::thread::sleep(TAIL_IDLE);
            continue;
        }
        for payload in &page.records {
            let record = WalRecord::decode(payload)
                .map_err(|e| format!("log record {index} from leader is malformed: {e}"))?;
            core.apply_replica(&record)?;
            index += 1;
        }
        checkpoint = page.checkpoint;
    }
    Ok(())
}
