//! Clients: in-process (sharing the [`ServerCore`]) and TCP.
//!
//! Both speak through the same [`ServeClient`] trait so harness smoke
//! drivers and benchmarks can mix transports. `submit_all` implements the
//! backpressure contract from the client side: on a `Reject`, honor the
//! retry-after backoff and resubmit the refused suffix — nothing is lost,
//! the stream just slows down.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, EdgeOp, ProtoError, Reply, Request, SnapshotAssembler,
    SnapshotMetaTable, StatsSummary, Update, PROTOCOL_VERSION,
};
use crate::server::{LogTailPage, ServerCore, Snapshot, SubmitOutcome, TopKPage, WindowSnapshot};
use crate::table::{TableData, TableSpec, ValueKind};

/// A pinned chunked-snapshot transfer plan, as announced by
/// `SnapshotMeta`: what to fetch and what it must hash to.
#[derive(Debug, Clone)]
pub struct SnapshotPlan {
    /// Checkpoint generation of the pinned log position.
    pub checkpoint: u64,
    /// Log index the pinned tables correspond to.
    pub index: u64,
    /// Values per chunk frame.
    pub chunk_values: u32,
    /// Per-table watermark, length, and checksum.
    pub tables: Vec<SnapshotMetaTable>,
}

/// Transport-independent client surface.
pub trait ServeClient {
    /// Submits one batch of updates for `table`.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures or server-side errors.
    fn submit(&mut self, table: u16, updates: &[Update]) -> Result<SubmitOutcome, String>;

    /// Submits one batch of edge insertions/deletions for a graph stream
    /// table.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures or server-side errors.
    fn edge_ops(&mut self, table: u16, ops: &[EdgeOp]) -> Result<SubmitOutcome, String>;

    /// Reads one bucket of a window stream table (`u64::MAX` for the
    /// current window aggregate).
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures, non-window tables, or
    /// bucket ids that are neither live nor the last retracted.
    fn window_query(&mut self, table: u16, bucket: u64) -> Result<WindowSnapshot, String>;

    /// Reads the `k` largest slots of a table's query region.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures or `k` outside the region.
    fn top_k(&mut self, table: u16, k: u32) -> Result<TopKPage, String>;

    /// Forces a drain epoch (applies partial batches).
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures.
    fn flush(&mut self) -> Result<(), String>;

    /// Fetches one table's snapshot.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures or unknown tables.
    fn snapshot(&mut self, table: u16) -> Result<Snapshot, String>;

    /// Fetches aggregate service statistics.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures.
    fn stats(&mut self) -> Result<StatsSummary, String>;

    /// Fetches the server's Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures.
    fn metrics(&mut self) -> Result<String, String>;

    /// Waits out a rejection before retrying.
    fn backoff(&mut self, retry_after_ms: u32);

    /// Submits a batch, retrying rejected suffixes until everything is
    /// admitted. Returns the number of reject round-trips taken.
    ///
    /// # Errors
    ///
    /// Propagates [`submit`](Self::submit) failures and gives up if the
    /// server starts draining.
    fn submit_all(&mut self, table: u16, updates: &[Update]) -> Result<u32, String> {
        let mut rest = updates;
        let mut retries = 0u32;
        while !rest.is_empty() {
            match self.submit(table, rest)? {
                SubmitOutcome::Accepted { .. } => break,
                SubmitOutcome::Rejected { accepted, retry_after_ms, reason } => {
                    if reason == crate::protocol::RejectReason::Draining {
                        return Err(format!(
                            "server is draining with {} updates unsubmitted",
                            rest.len() - accepted as usize
                        ));
                    }
                    rest = &rest[accepted as usize..];
                    retries += 1;
                    self.backoff(retry_after_ms);
                }
                SubmitOutcome::Failed(m) => return Err(m),
            }
        }
        Ok(retries)
    }
}

/// In-process client: calls straight into a shared [`ServerCore`].
///
/// Used by the harness serving workload and the throughput benchmark,
/// where the protocol round-trip would only add noise. On backoff it runs
/// an epoch itself instead of sleeping, so single-threaded drivers make
/// progress against a full queue.
#[derive(Debug, Clone)]
pub struct LocalClient {
    core: Arc<ServerCore>,
}

impl LocalClient {
    /// A client sharing `core`.
    pub fn new(core: Arc<ServerCore>) -> LocalClient {
        LocalClient { core }
    }

    /// The shared core.
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }
}

impl ServeClient for LocalClient {
    fn submit(&mut self, table: u16, updates: &[Update]) -> Result<SubmitOutcome, String> {
        Ok(self.core.submit(table, updates))
    }

    fn edge_ops(&mut self, table: u16, ops: &[EdgeOp]) -> Result<SubmitOutcome, String> {
        Ok(self.core.submit_edge_ops(table, ops))
    }

    fn window_query(&mut self, table: u16, bucket: u64) -> Result<WindowSnapshot, String> {
        self.core.window_query(table, bucket)
    }

    fn top_k(&mut self, table: u16, k: u32) -> Result<TopKPage, String> {
        self.core.top_k(table, k)
    }

    fn flush(&mut self) -> Result<(), String> {
        self.core.flush();
        Ok(())
    }

    fn snapshot(&mut self, table: u16) -> Result<Snapshot, String> {
        let snap = self.core.snapshot(table)?;
        // Same verification the TCP path performs on received bytes: the
        // checksum the server stamped must match the data it handed over.
        let computed = crate::protocol::snapshot_checksum(&snap.bits());
        if computed != snap.checksum {
            return Err(format!(
                "snapshot checksum mismatch for table {table}: computed {computed:#010x}, \
                 server stamped {:#010x}",
                snap.checksum
            ));
        }
        Ok(snap)
    }

    fn stats(&mut self) -> Result<StatsSummary, String> {
        Ok(self.core.stats_summary())
    }

    fn metrics(&mut self) -> Result<String, String> {
        Ok(self.core.metrics_text())
    }

    fn backoff(&mut self, _retry_after_ms: u32) {
        // Run the epoch ourselves: frees queue space deterministically
        // without wall-clock sleeps.
        self.core.tick(false);
    }
}

/// How many reject-with-retry-after rounds [`TcpClient::submit`] absorbs
/// internally before surfacing the rejection to the caller.
const MAX_SUBMIT_ATTEMPTS: u32 = 8;

/// TCP client: one connection, `Hello`-handshaken, synchronous
/// request/reply.
///
/// `submit` honors the server's reject-with-retry-after contract itself:
/// a rejected suffix is backed off and resubmitted up to
/// [`MAX_SUBMIT_ATTEMPTS`] times before the caller ever sees a
/// `Rejected` outcome, so transient backpressure never surfaces to every
/// call site.
#[derive(Debug)]
pub struct TcpClient {
    reader: std::io::BufReader<TcpStream>,
    writer: std::io::BufWriter<TcpStream>,
    shards: u16,
    quantum: u32,
    tables: Vec<TableSpec>,
    backoffs: u64,
}

impl TcpClient {
    /// Connects to `addr` and performs the version handshake.
    ///
    /// # Errors
    ///
    /// Returns a message for connection failures or a version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpClient, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_nodelay(true).map_err(|e| format!("nodelay: {e}"))?;
        let reader =
            std::io::BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        let writer = std::io::BufWriter::new(stream);
        let mut client =
            TcpClient { reader, writer, shards: 0, quantum: 0, tables: Vec::new(), backoffs: 0 };
        match client.round_trip(&Request::Hello { version: PROTOCOL_VERSION })? {
            Reply::Hello { version, shards, quantum, tables } => {
                if version != PROTOCOL_VERSION {
                    return Err(format!(
                        "server speaks protocol {version}, not {PROTOCOL_VERSION}"
                    ));
                }
                client.shards = shards;
                client.quantum = quantum;
                client.tables = tables;
                Ok(client)
            }
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected handshake reply {other:?}")),
        }
    }

    /// The server's table registry, as announced in the handshake.
    pub fn tables(&self) -> &[TableSpec] {
        &self.tables
    }

    /// The server's epoch quantum, as announced in the handshake.
    pub fn quantum(&self) -> u32 {
        self.quantum
    }

    /// The server's ingest shard count, as announced in the handshake.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Backoff rounds this client has absorbed across all submits.
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// One wire round trip of an update batch, no retry.
    fn submit_once(&mut self, table: u16, updates: &[Update]) -> Result<SubmitOutcome, String> {
        match self.round_trip(&Request::Update { table, updates: updates.to_vec() })? {
            Reply::Ack { accepted, watermark } => {
                Ok(SubmitOutcome::Accepted { accepted, watermark })
            }
            Reply::Reject { accepted, retry_after_ms, reason } => {
                Ok(SubmitOutcome::Rejected { accepted, retry_after_ms, reason })
            }
            Reply::Error(m) => Ok(SubmitOutcome::Failed(m)),
            other => Err(format!("unexpected submit reply {other:?}")),
        }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Reply, String> {
        write_frame(&mut self.writer, &request.encode()).map_err(|e| format!("send: {e}"))?;
        match read_frame(&mut self.reader) {
            Ok(Some(body)) => Reply::decode(&body).map_err(|e| e.to_string()),
            Ok(None) => Err("server closed the connection".into()),
            Err(ProtoError::Io(e)) => Err(format!("receive: {e}")),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Pins a consistent all-table state server-side for chunked
    /// transfer; returns the transfer plan (per-table lengths, checksums,
    /// chunk geometry, and the matching log position).
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures or unexpected replies.
    pub fn snapshot_begin(&mut self) -> Result<SnapshotPlan, String> {
        match self.round_trip(&Request::SnapshotBegin)? {
            Reply::SnapshotMeta { checkpoint, index, chunk_values, tables } => {
                Ok(SnapshotPlan { checkpoint, index, chunk_values, tables })
            }
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected snapshot-begin reply {other:?}")),
        }
    }

    /// Fetches one chunk of a pinned table's bit stream.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures, server-side errors
    /// (no pin, chunk out of range), or replies for the wrong chunk.
    pub fn snapshot_chunk(&mut self, table: u16, chunk: u32) -> Result<Vec<u32>, String> {
        match self.round_trip(&Request::SnapshotChunk { table, chunk })? {
            Reply::SnapshotChunk { table: t, chunk: c, values } => {
                if t != table || c != chunk {
                    return Err(format!(
                        "asked for table {table} chunk {chunk}, got table {t} chunk {c}"
                    ));
                }
                Ok(values)
            }
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected snapshot-chunk reply {other:?}")),
        }
    }

    /// Fetches admitted-batch log records from `index` within checkpoint
    /// generation `checkpoint`, at most `max_bytes` of payload per page.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures or server-side errors
    /// (no WAL, index beyond head).
    pub fn log_tail(
        &mut self,
        checkpoint: u64,
        index: u64,
        max_bytes: u32,
    ) -> Result<LogTailPage, String> {
        match self.round_trip(&Request::LogTail { checkpoint, index, max_bytes })? {
            Reply::LogRecords { checkpoint, next_index, head, reset, records } => {
                Ok(LogTailPage { checkpoint, next_index, head, reset, records })
            }
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected log-tail reply {other:?}")),
        }
    }

    /// Downloads one pinned table through the chunked verbs, verifying
    /// chunk order, total length, and the announced checksum.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures or any assembly/integrity
    /// violation (out-of-order chunk, length or checksum mismatch).
    pub fn fetch_pinned_table(
        &mut self,
        plan: &SnapshotPlan,
        table: u16,
    ) -> Result<Vec<u32>, String> {
        let meta = plan
            .tables
            .iter()
            .find(|m| m.table == table)
            .ok_or_else(|| format!("table {table} not in the snapshot plan"))?;
        let mut asm = SnapshotAssembler::new(table, meta.len, meta.checksum, plan.chunk_values);
        while !asm.complete() {
            let chunk = asm.next_chunk();
            let values = self.snapshot_chunk(table, chunk)?;
            asm.push(table, chunk, &values).map_err(|e| e.to_string())?;
        }
        asm.finish().map_err(|e| e.to_string())
    }

    /// Asks the server to drain and stop; returns the final per-table
    /// watermarks.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures or unexpected replies.
    pub fn shutdown(mut self) -> Result<Vec<u64>, String> {
        match self.round_trip(&Request::Shutdown)? {
            Reply::Bye { watermarks } => Ok(watermarks),
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected shutdown reply {other:?}")),
        }
    }
}

impl ServeClient for TcpClient {
    fn submit(&mut self, table: u16, updates: &[Update]) -> Result<SubmitOutcome, String> {
        let mut rest = updates;
        let mut total = 0u32;
        let mut attempts = 0u32;
        loop {
            match self.submit_once(table, rest)? {
                SubmitOutcome::Accepted { accepted, watermark } => {
                    return Ok(SubmitOutcome::Accepted { accepted: total + accepted, watermark });
                }
                SubmitOutcome::Rejected { accepted, retry_after_ms, reason } => {
                    total += accepted;
                    rest = &rest[accepted as usize..];
                    attempts += 1;
                    // A draining server never admits more; an exhausted
                    // budget hands the remainder back to the caller.
                    if reason == crate::protocol::RejectReason::Draining
                        || attempts >= MAX_SUBMIT_ATTEMPTS
                    {
                        return Ok(SubmitOutcome::Rejected {
                            accepted: total,
                            retry_after_ms,
                            reason,
                        });
                    }
                    self.backoff(retry_after_ms);
                }
                SubmitOutcome::Failed(m) => return Ok(SubmitOutcome::Failed(m)),
            }
        }
    }

    fn edge_ops(&mut self, table: u16, ops: &[EdgeOp]) -> Result<SubmitOutcome, String> {
        match self.round_trip(&Request::EdgeOps { table, ops: ops.to_vec() })? {
            Reply::Ack { accepted, watermark } => {
                Ok(SubmitOutcome::Accepted { accepted, watermark })
            }
            Reply::Reject { accepted, retry_after_ms, reason } => {
                Ok(SubmitOutcome::Rejected { accepted, retry_after_ms, reason })
            }
            Reply::Error(m) => Ok(SubmitOutcome::Failed(m)),
            other => Err(format!("unexpected edge-ops reply {other:?}")),
        }
    }

    fn window_query(&mut self, table: u16, bucket: u64) -> Result<WindowSnapshot, String> {
        match self.round_trip(&Request::WindowQuery { table, bucket })? {
            Reply::Window { table, watermark, bucket, expired, values } => {
                Ok(WindowSnapshot { table, watermark, bucket, expired, values })
            }
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected window reply {other:?}")),
        }
    }

    fn top_k(&mut self, table: u16, k: u32) -> Result<TopKPage, String> {
        match self.round_trip(&Request::TopK { table, k })? {
            Reply::TopK { table, watermark, entries } => Ok(TopKPage { table, watermark, entries }),
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected top-k reply {other:?}")),
        }
    }

    fn flush(&mut self) -> Result<(), String> {
        match self.round_trip(&Request::Flush)? {
            Reply::Ack { .. } => Ok(()),
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected flush reply {other:?}")),
        }
    }

    fn snapshot(&mut self, table: u16) -> Result<Snapshot, String> {
        match self.round_trip(&Request::Snapshot { table })? {
            Reply::Snapshot { table, watermark, checksum, values } => {
                let computed = crate::protocol::snapshot_checksum(&values);
                if computed != checksum {
                    return Err(format!(
                        "snapshot checksum mismatch for table {table}: computed {computed:#010x} \
                         over received values, server stamped {checksum:#010x}",
                    ));
                }
                let spec = self
                    .tables
                    .get(table as usize)
                    .ok_or_else(|| format!("snapshot for unannounced table {table}"))?;
                let data = match spec.kind {
                    ValueKind::F32 => {
                        TableData::F32(values.iter().map(|&b| f32::from_bits(b)).collect())
                    }
                    ValueKind::I32 => TableData::I32(values.iter().map(|&b| b as i32).collect()),
                };
                Ok(Snapshot { table, watermark, checksum, data })
            }
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected snapshot reply {other:?}")),
        }
    }

    fn stats(&mut self) -> Result<StatsSummary, String> {
        match self.round_trip(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected stats reply {other:?}")),
        }
    }

    fn metrics(&mut self) -> Result<String, String> {
        match self.round_trip(&Request::Metrics)? {
            Reply::Metrics(text) => Ok(text),
            Reply::Error(m) => Err(m),
            other => Err(format!("unexpected metrics reply {other:?}")),
        }
    }

    fn backoff(&mut self, retry_after_ms: u32) {
        self.backoffs += 1;
        std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};
    use crate::table::OpKind;

    fn server() -> Server {
        let mut config = ServeConfig::new(vec![
            TableSpec::i32("counts", OpKind::Add, 64),
            TableSpec::f32("mins", OpKind::Min, 32),
        ]);
        config.quantum = 16;
        config.epoch_interval = Duration::from_millis(1);
        Server::bind(config, "127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn tcp_round_trip_matches_in_process_state() {
        let server = server();
        let mut tcp = TcpClient::connect(server.local_addr()).expect("connect");
        assert_eq!(tcp.tables().len(), 2);
        assert_eq!(tcp.quantum(), 16);

        let updates: Vec<Update> = (0..40).map(|i| Update::i32(i, (i % 64) as u32, 3)).collect();
        tcp.submit_all(0, &updates).expect("submit");
        tcp.flush().expect("flush");
        let over_wire = tcp.snapshot(0).expect("snapshot");
        assert_eq!(over_wire.watermark, 40);

        let mut local = LocalClient::new(server.core());
        let in_process = local.snapshot(0).expect("snapshot");
        assert_eq!(over_wire.bits(), in_process.bits(), "wire and core views agree bitwise");

        let stats = tcp.stats().expect("stats");
        #[cfg(feature = "obs")]
        assert_eq!(stats.applied, 40);
        #[cfg(not(feature = "obs"))]
        assert_eq!(stats.applied, 0, "stats read as zero without the obs feature");

        let scraped = tcp.metrics().expect("metrics");
        #[cfg(feature = "obs")]
        {
            assert!(scraped.contains("invector_serve_applied_total 40"), "{scraped}");
            assert!(scraped.contains("invector_serve_epoch_latency_us_bucket"), "{scraped}");
        }
        #[cfg(not(feature = "obs"))]
        let _ = scraped;

        let watermarks = tcp.shutdown().expect("shutdown");
        assert_eq!(watermarks, vec![40, 0]);
        server.join();
    }

    #[test]
    fn version_mismatch_is_refused_at_handshake() {
        let server = server();
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = std::io::BufWriter::new(stream);
        write_frame(&mut writer, &Request::Hello { version: 999 }.encode()).expect("send");
        let body = read_frame(&mut reader).expect("read").expect("reply");
        assert!(matches!(Reply::decode(&body).expect("decode"), Reply::Error(_)));
        server.shutdown();
        server.join();
    }

    #[test]
    fn tcp_client_absorbs_rejections_with_bounded_backoff() {
        // Tiny single-shard queue: a batch larger than the queue must be
        // rejected at least once, and the client must absorb the rejection
        // internally (backing off and resubmitting the refused suffix)
        // rather than surfacing it.
        let mut config = ServeConfig::new(vec![TableSpec::i32("c", OpKind::Add, 16)]);
        config.shards = 1;
        config.queue_capacity = 8;
        config.quantum = 4;
        config.epoch_interval = Duration::from_millis(1);
        let server = Server::bind(config, "127.0.0.1:0").expect("bind loopback");
        let mut tcp = TcpClient::connect(server.local_addr()).expect("connect");

        let updates: Vec<Update> = (0..40).map(|i| Update::i32(i, (i % 16) as u32, 1)).collect();
        // submit (not submit_all): the internal retry loop alone must land
        // the whole batch, because the epoch thread keeps draining the
        // queue between backoffs.
        let outcome = tcp.submit(0, &updates).expect("submit");
        match outcome {
            SubmitOutcome::Accepted { accepted, .. } => assert_eq!(accepted, 40),
            // An exhausted budget is allowed by the contract, but the
            // accepted count must reflect every admitted prefix.
            SubmitOutcome::Rejected { accepted, .. } => {
                assert!(accepted < 40);
                tcp.submit_all(0, &updates[accepted as usize..]).expect("residual");
            }
            SubmitOutcome::Failed(m) => panic!("submit failed: {m}"),
        }
        assert!(tcp.backoffs() > 0, "a 40-update batch through an 8-slot queue must back off");

        tcp.flush().expect("flush");
        let snap = tcp.snapshot(0).expect("snapshot");
        assert_eq!(snap.watermark, 40, "no update lost across retries");
        let TableData::I32(v) = &snap.data else { panic!("i32") };
        assert_eq!(v.iter().sum::<i32>(), 40);
        server.shutdown();
        server.join();
    }

    #[test]
    fn local_client_retries_through_backpressure_without_loss() {
        let mut config = ServeConfig::new(vec![TableSpec::i32("c", OpKind::Add, 16)]);
        config.shards = 1;
        config.queue_capacity = 8;
        config.quantum = 4;
        let core = ServerCore::new(config).expect("core");
        let mut client = LocalClient::new(core);
        let updates: Vec<Update> = (0..100).map(|i| Update::i32(i, (i % 16) as u32, 1)).collect();
        let retries = client.submit_all(0, &updates).expect("submit all");
        assert!(retries > 0, "tiny queue must reject at least once");
        client.flush().expect("flush");
        let snap = client.snapshot(0).expect("snapshot");
        assert_eq!(snap.watermark, 100, "every rejected update was retried");
        let TableData::I32(v) = &snap.data else { panic!("i32") };
        assert_eq!(v.iter().sum::<i32>(), 100);
    }
}
