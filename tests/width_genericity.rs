//! The in-vector reduction machinery is generic over vector width; the
//! paper's evaluation uses 16×32-bit lanes, but narrower SIMD (SSE/AVX2
//! classes) and the 8×64-bit AVX-512 side must behave identically.

use invector::core::invec::reduce_alg1;
use invector::core::ops::{Min, Sum};
use invector::simd::{conflict_free_subset, Mask, SimdVec};

fn scalar_reference<const N: usize>(
    active: Mask<N>,
    idx: [i32; N],
    data: [i32; N],
) -> std::collections::HashMap<i32, i32> {
    let mut out = std::collections::HashMap::new();
    for lane in active.iter_set() {
        *out.entry(idx[lane]).or_insert(0) += data[lane];
    }
    out
}

fn check_width<const N: usize>(seed: u64) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    for _ in 0..200 {
        let idx: [i32; N] = std::array::from_fn(|_| rng.gen_range(0..(N as i32 / 2 + 1)));
        let data: [i32; N] = std::array::from_fn(|_| rng.gen_range(-50..50));
        let active = Mask::<N>::from_bits(rng.gen::<u32>());
        let mut v = SimdVec::from_array(data);
        let (safe, d) = reduce_alg1::<i32, Sum, N>(active, SimdVec::from_array(idx), &mut v);
        assert!(d as usize <= N / 2, "D1 bound at width {N}");
        let expect = scalar_reference(active, idx, data);
        assert_eq!(safe.count_ones() as usize, expect.len(), "width {N}");
        for lane in safe.iter_set() {
            assert_eq!(v.extract(lane), expect[&idx[lane]], "width {N} lane {lane}");
        }
    }
}

#[test]
fn algorithm1_is_width_generic() {
    check_width::<4>(1);
    check_width::<8>(2);
    check_width::<16>(3);
}

#[test]
fn conflict_free_subset_is_width_generic() {
    // At any width, the subset is the first active occurrence per index.
    let idx4 = SimdVec::<i32, 4>::from_array([5, 5, 2, 5]);
    let safe = conflict_free_subset(Mask::<4>::all(), idx4);
    assert_eq!(safe.bits(), 0b0101);

    let idx8 = SimdVec::<i32, 8>::from_array([1, 1, 1, 1, 1, 1, 1, 9]);
    let safe = conflict_free_subset(Mask::<8>::from_bits(0b1111_1110), idx8);
    assert_eq!(safe.bits(), 0b1000_0010);
}

#[test]
fn min_reduction_works_on_eight_wide_f64() {
    use invector::simd::{F64x8, I32x8, Mask8};
    let idx = I32x8::from_array([0, 0, 1, 1, 0, 1, 2, 2]);
    let mut v = F64x8::from_array([5.0, 2.0, 8.0, 3.0, 9.0, 1.0, 4.0, 7.0]);
    let (safe, d) = reduce_alg1::<f64, Min, 8>(Mask8::all(), idx, &mut v);
    assert_eq!(d, 3);
    assert_eq!(safe.count_ones(), 3);
    assert_eq!(v.extract(0), 2.0);
    assert_eq!(v.extract(2), 1.0);
    assert_eq!(v.extract(6), 4.0);
}

#[test]
fn scalar_width_one_degenerates_gracefully() {
    // N = 1: nothing can conflict; the algorithm is a no-op pass.
    let idx = SimdVec::<i32, 1>::from_array([3]);
    let mut v = SimdVec::<i32, 1>::from_array([42]);
    let (safe, d) = reduce_alg1::<i32, Sum, 1>(Mask::<1>::all(), idx, &mut v);
    assert_eq!(d, 0);
    assert!(safe.is_full());
    assert_eq!(v.extract(0), 42);
}
