//! Integration: the full registry smoke matrix. Every registered cell
//! (application × variant × backend, plus engine rows at threads > 1) must
//! reproduce its serial portable reference at tiny scale — this is the one
//! end-to-end agreement suite, replacing the old per-kernel variant loops.

use invector::core::BackendChoice;
use invector::harness::{driver, registry, RunSpec};
use invector::kernels::{ExecPolicy, Variant};

#[test]
fn every_registered_cell_matches_the_serial_reference() {
    let report = driver::run_all(&RunSpec::tiny(), 2);
    let failures: Vec<String> = report
        .failures()
        .map(|c| {
            format!(
                "{} {} on {} (t={}): {}",
                c.app,
                c.variant,
                c.backend.name(),
                c.threads,
                c.error.as_deref().unwrap_or("?")
            )
        })
        .collect();
    assert!(failures.is_empty(), "disagreeing cells:\n{}", failures.join("\n"));
}

#[test]
fn the_matrix_covers_every_app_variant_backend_and_engine_row() {
    let report = driver::run_all(&RunSpec::tiny(), 2);
    let backends = driver::backend_matrix().len();
    for app in registry::all() {
        let cells: Vec<_> = report.cells.iter().filter(|c| c.app == app.name()).collect();
        // One row per (variant, backend) at one thread...
        let single: Vec<_> = cells.iter().filter(|c| c.threads == 1).collect();
        assert_eq!(
            single.len(),
            app.variants().len() * backends,
            "{}: expected full single-thread matrix",
            app.name()
        );
        for &variant in app.variants() {
            assert_eq!(
                single.iter().filter(|c| c.variant == variant).count(),
                backends,
                "{} {variant}: missing a backend row",
                app.name()
            );
        }
        // ...plus the scalar and in-vector engine rows when threads help.
        let engine = cells.iter().filter(|c| c.threads > 1).count();
        if app.supports_threads() {
            assert!(engine > 0, "{}: no engine rows despite thread support", app.name());
        } else {
            assert_eq!(engine, 0, "{}: engine rows on a single-sweep kernel", app.name());
        }
    }
}

#[test]
fn checksums_are_reproducible_across_independent_prepares() {
    // Two independently prepared workloads must agree bit-for-bit on the
    // same serial run — inputs are seeded, never wall-clock dependent.
    let spec = RunSpec::tiny();
    let policy = ExecPolicy::default().backend(BackendChoice::Portable);
    for app in registry::all() {
        let a = app.prepare(&spec).unwrap().run(Variant::Serial, &policy);
        let b = app.prepare(&spec).unwrap().run(Variant::Serial, &policy);
        assert_eq!(
            a.checksum().to_bits(),
            b.checksum().to_bits(),
            "{}: serial checksum not reproducible",
            app.name()
        );
    }
}

#[test]
fn aggregation_rows_match_the_scalar_reference_table() {
    // The harness validates agg against its own serial method; pin the
    // serial method itself to the independent reference implementation.
    let spec = RunSpec::tiny();
    let input = invector::agg::dist::generate(spec.dist, spec.rows, spec.cardinality, 0x1b_f2_9d);
    let expect = invector::agg::table::reference_aggregate(&input.keys, &input.vals);
    let workload = registry::lookup("agg").unwrap().prepare(&spec).unwrap();
    let r = workload.run(Variant::Serial, &ExecPolicy::default());
    assert_eq!(r.values.len(), 4 * expect.len());
    for (i, e) in expect.iter().enumerate() {
        assert_eq!(r.values[4 * i], f64::from(e.key));
        assert_eq!(r.values[4 * i + 1], f64::from(e.count));
        let sum = r.values[4 * i + 2];
        let expect_sum = f64::from(e.sum);
        assert!(
            (sum - expect_sum).abs() <= 1e-3 * (sum.abs() + expect_sum.abs() + 1.0),
            "key {}: sum {sum} vs reference {expect_sum}",
            e.key
        );
    }
}
