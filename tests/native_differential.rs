//! Differential tests: every native backend against the portable software
//! model.
//!
//! Two layers are exercised:
//!
//! 1. **Dispatch layer** (always compiled, every host): the `_with`
//!    entry points called with an explicit native [`Backend`] must produce
//!    results *bitwise identical* to the portable model **at the backend's
//!    lane width** — masks, conflict depths, lane contents, accumulation
//!    targets, adaptive decisions, and every reported statistic. AVX-512 is
//!    compared against the 16-lane portable model, AVX2 against 8 lanes,
//!    NEON against 4. Backends the host lacks are skipped (the dispatch
//!    comparison then holds trivially for the per-vector APIs, which fall
//!    back to portable), so the suite passes everywhere with zero failures;
//!    `available_backends_are_reported` logs what actually ran.
//! 2. **Raw primitives** (`x86_64` only, skipped at runtime when the CPU
//!    lacks AVX-512): every `unsafe` entry point of
//!    `invector_simd::native` compared against its portable counterpart
//!    across random index distributions, conflict densities, and masks.

use proptest::prelude::*;

use invector::core::backend::Backend;
use invector::core::invec::{
    reduce_alg1, reduce_alg1_arr, reduce_alg1_arr_with, reduce_alg1_with, reduce_alg2,
    reduce_alg2_with, AuxArray,
};
use invector::core::ops::{Max, Min, Sum};
use invector::core::{
    adaptive_accumulate_n, adaptive_accumulate_with, invec_accumulate, invec_accumulate_n,
    invec_accumulate_with, AdaptiveReducer, ReduceOp,
};
use invector::simd::{native, I32x16, Mask16, SimdVec};

/// The native backends this host can actually execute; unavailable ones are
/// skipped (and logged by `available_backends_are_reported`).
fn native_backends() -> Vec<Backend> {
    [Backend::Avx512, Backend::Avx2, Backend::Neon].into_iter().filter(|b| b.available()).collect()
}

/// Not an assertion — a log line so CI output records which backends the
/// differential suite exercised and which it skipped on this host.
#[test]
fn available_backends_are_reported() {
    for b in [Backend::Avx512, Backend::Avx2, Backend::Neon] {
        if b.available() {
            eprintln!("differential suite: backend {} available, testing", b.name());
        } else {
            eprintln!(
                "differential suite: backend {} unavailable on this host, skipping",
                b.name()
            );
        }
    }
}

/// A 16-lane index vector over a small domain (dense conflicts) plus an
/// arbitrary active mask.
fn dense_case() -> impl Strategy<Value = ([i32; 16], u32)> {
    (prop::array::uniform16(0..6i32), 0u32..=0xFFFF)
}

/// A mostly conflict-free index vector (the graph-workload regime, D1 ≈ 0).
fn sparse_case() -> impl Strategy<Value = ([i32; 16], u32)> {
    (prop::array::uniform16(0..500i32), 0u32..=0xFFFF)
}

/// A whole accumulation stream: (index, value) pairs over a 24-slot target.
fn stream() -> impl Strategy<Value = Vec<(i32, i32)>> {
    prop::collection::vec((0..24i32, -100..100i32), 0..97)
}

/// Non-trivial initial target contents: regression guard for merge folds
/// seeded with the load-fill value instead of the operator identity (which
/// zeros would mask).
fn init_i32(len: usize) -> Vec<i32> {
    (0..len).map(|k| (k as i32 % 7) - 3).collect()
}

fn init_f32(len: usize) -> Vec<f32> {
    init_i32(len).into_iter().map(|v| v as f32 * 0.25).collect()
}

/// Bit-pattern of one lane, so the type-generic comparisons below are
/// exact for floats (`-0.0` ≠ `0.0`, NaN payloads compared) and integers.
trait LaneBits: Copy {
    fn lane_bits(self) -> u64;
}

impl LaneBits for f32 {
    fn lane_bits(self) -> u64 {
        self.to_bits() as u64
    }
}

impl LaneBits for i32 {
    fn lane_bits(self) -> u64 {
        self as u32 as u64
    }
}

fn assert_f32_lanes_eq(a: &SimdVec<f32, 16>, b: &SimdVec<f32, 16>) {
    for l in 0..16 {
        assert_eq!(a.extract(l).to_bits(), b.extract(l).to_bits(), "lane {l}");
    }
}

/// Portable vs explicit-AVX-512 `reduce_alg1_with` on identical inputs
/// (the per-vector 16-lane API only accelerates under AVX-512).
fn check_alg1_f32<Op: ReduceOp<f32>>(idx: [i32; 16], mask: u32, data: [f32; 16]) {
    let active = Mask16::from_bits(mask);
    let vidx = I32x16::from_array(idx);
    let mut portable = SimdVec::from_array(data);
    let mut nat = SimdVec::from_array(data);
    let (mp, dp) = reduce_alg1::<f32, Op, 16>(active, vidx, &mut portable);
    let (mn, dn) = reduce_alg1_with::<f32, Op, 16>(Backend::Avx512, active, vidx, &mut nat);
    assert_eq!(mp.bits(), mn.bits(), "safe mask");
    assert_eq!(dp, dn, "conflict depth D1");
    assert_f32_lanes_eq(&portable, &nat);
}

fn check_alg1_i32<Op: ReduceOp<i32>>(idx: [i32; 16], mask: u32, data: [i32; 16]) {
    let active = Mask16::from_bits(mask);
    let vidx = I32x16::from_array(idx);
    let mut portable = SimdVec::from_array(data);
    let mut nat = SimdVec::from_array(data);
    let (mp, dp) = reduce_alg1::<i32, Op, 16>(active, vidx, &mut portable);
    let (mn, dn) = reduce_alg1_with::<i32, Op, 16>(Backend::Avx512, active, vidx, &mut nat);
    assert_eq!(mp.bits(), mn.bits(), "safe mask");
    assert_eq!(dp, dn, "conflict depth D1");
    for l in 0..16 {
        assert_eq!(portable.extract(l), nat.extract(l), "lane {l}");
    }
}

/// Portable-at-matching-width vs native whole-stream accumulation (fused
/// drivers): results *and statistics* are width-relative, so each backend
/// compares against `invec_accumulate_n` at its own lane count.
fn portable_reference_f32<Op: ReduceOp<f32>>(
    lanes: usize,
    target: &mut [f32],
    idx: &[i32],
    vals: &[f32],
) -> invector::core::InvecStats {
    match lanes {
        4 => invec_accumulate_n::<f32, Op, 4>(target, idx, vals),
        8 => invec_accumulate_n::<f32, Op, 8>(target, idx, vals),
        _ => invec_accumulate_n::<f32, Op, 16>(target, idx, vals),
    }
}

fn portable_reference_i32<Op: ReduceOp<i32>>(
    lanes: usize,
    target: &mut [i32],
    idx: &[i32],
    vals: &[i32],
) -> invector::core::InvecStats {
    match lanes {
        4 => invec_accumulate_n::<i32, Op, 4>(target, idx, vals),
        8 => invec_accumulate_n::<i32, Op, 8>(target, idx, vals),
        _ => invec_accumulate_n::<i32, Op, 16>(target, idx, vals),
    }
}

fn check_accumulate_f32<Op: ReduceOp<f32>>(backend: Backend, items: &[(i32, i32)]) {
    let idx: Vec<i32> = items.iter().map(|&(i, _)| i).collect();
    let vals: Vec<f32> = items.iter().map(|&(_, v)| v as f32 * 0.5).collect();
    let mut portable = init_f32(24);
    let mut nat = portable.clone();
    let sp = portable_reference_f32::<Op>(backend.lanes(), &mut portable, &idx, &vals);
    let sn = invec_accumulate_with::<f32, Op>(backend, &mut nat, &idx, &vals);
    assert_eq!(sp, sn, "{}: vector count / depth histogram", backend.name());
    for (k, (a, b)) in portable.iter().zip(&nat).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{}: slot {k}", backend.name());
    }
}

fn check_accumulate_i32<Op: ReduceOp<i32>>(backend: Backend, items: &[(i32, i32)]) {
    let idx: Vec<i32> = items.iter().map(|&(i, _)| i).collect();
    let vals: Vec<i32> = items.iter().map(|&(_, v)| v).collect();
    let mut portable = init_i32(24);
    let mut nat = portable.clone();
    let sp = portable_reference_i32::<Op>(backend.lanes(), &mut portable, &idx, &vals);
    let sn = invec_accumulate_with::<i32, Op>(backend, &mut nat, &idx, &vals);
    assert_eq!(sp, sn, "{}: vector count / depth histogram", backend.name());
    assert_eq!(portable, nat, "{}: target contents", backend.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn alg1_dispatch_is_bitwise_identical_across_backends(
        (idx, mask) in dense_case(),
        raw in prop::array::uniform16(-100..100i32),
    ) {
        let fdata: [f32; 16] = raw.map(|v| v as f32 * 0.25);
        check_alg1_f32::<Sum>(idx, mask, fdata);
        check_alg1_f32::<Min>(idx, mask, fdata);
        check_alg1_f32::<Max>(idx, mask, fdata);
        check_alg1_i32::<Sum>(idx, mask, raw);
        check_alg1_i32::<Min>(idx, mask, raw);
        check_alg1_i32::<Max>(idx, mask, raw);
    }

    #[test]
    fn alg1_dispatch_agrees_on_sparse_indices(
        (idx, mask) in sparse_case(),
        raw in prop::array::uniform16(-100..100i32),
    ) {
        check_alg1_f32::<Sum>(idx, mask, raw.map(|v| v as f32 * 0.25));
        check_alg1_i32::<Min>(idx, mask, raw);
    }

    #[test]
    fn alg1_arr_dispatch_is_bitwise_identical_across_backends(
        (idx, mask) in dense_case(),
        raw in prop::array::uniform16(-100..100i32),
    ) {
        let active = Mask16::from_bits(mask);
        let vidx = I32x16::from_array(idx);
        let comps: [SimdVec<f32, 16>; 3] = std::array::from_fn(|c| {
            SimdVec::from_array(raw.map(|v| (v + c as i32) as f32 * 0.25))
        });
        let mut portable = comps;
        let mut nat = comps;
        let (mp, dp) = reduce_alg1_arr::<f32, Sum, 3, 16>(active, vidx, &mut portable);
        let (mn, dn) =
            reduce_alg1_arr_with::<f32, Sum, 3, 16>(Backend::Avx512, active, vidx, &mut nat);
        prop_assert_eq!(mp.bits(), mn.bits());
        prop_assert_eq!(dp, dn);
        for c in 0..3 {
            assert_f32_lanes_eq(&portable[c], &nat[c]);
        }
    }

    #[test]
    fn alg2_dispatch_is_bitwise_identical_across_backends(
        (idx, mask) in dense_case(),
        raw in prop::array::uniform16(-100..100i32),
    ) {
        let active = Mask16::from_bits(mask);
        let vidx = I32x16::from_array(idx);
        let data: [f32; 16] = raw.map(|v| v as f32 * 0.25);
        let mut portable = SimdVec::from_array(data);
        let mut nat = SimdVec::from_array(data);
        let mut aux_p = AuxArray::<f32, Sum>::new(8);
        let mut aux_n = AuxArray::<f32, Sum>::new(8);
        let (mp, dp) = reduce_alg2::<f32, Sum, 16>(active, vidx, &mut portable, &mut aux_p);
        let (mn, dn) =
            reduce_alg2_with::<f32, Sum, 16>(Backend::Avx512, active, vidx, &mut nat, &mut aux_n);
        prop_assert_eq!(mp.bits(), mn.bits(), "main-target mask");
        prop_assert_eq!(dp, dn, "conflict depth D2");
        assert_f32_lanes_eq(&portable, &nat);
        prop_assert_eq!(aux_p.touched(), aux_n.touched(), "shadow slots touched");
        let mut tp = init_f32(8);
        let mut tn = tp.clone();
        aux_p.merge_into(&mut tp);
        aux_n.merge_into(&mut tn);
        for (k, (a, b)) in tp.iter().zip(&tn).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "merged slot {}", k);
        }
    }

    #[test]
    fn fused_accumulate_dispatch_matches_portable_driver(items in stream()) {
        for backend in native_backends() {
            check_accumulate_f32::<Sum>(backend, &items);
            check_accumulate_f32::<Min>(backend, &items);
            check_accumulate_f32::<Max>(backend, &items);
            check_accumulate_i32::<Sum>(backend, &items);
            check_accumulate_i32::<Min>(backend, &items);
            check_accumulate_i32::<Max>(backend, &items);
        }
    }

    // Satellite: AVX2's *emulated* conflict detection (broadcast/compare
    // sweep, no `vpconflictd`) must agree with the portable conflict model
    // on adversarial duplicate-index streams — dense duplicates, negative
    // indices, extreme values, any active mask.
    #[test]
    fn avx2_emulated_conflict_detection_matches_portable_model(
        dense in prop::array::uniform16(-3..5i32),
        extremes in 0u32..=0xFF,
        mask in 0u32..=0xFF,
    ) {
        use invector::simd::{conflict_free_subset, Avx2, Isa, Mask};
        if !Backend::Avx2.available() {
            return Ok(()); // logged by available_backends_are_reported
        }
        // 8 lanes of dense duplicates and negatives, with extreme values
        // (i32::MIN / i32::MAX — poison for sentinel-based emulations)
        // injected per the `extremes` bitmask.
        let idx: [i32; 8] = std::array::from_fn(|l| {
            if extremes & (1 << l) != 0 {
                if l % 2 == 0 { i32::MIN } else { i32::MAX }
            } else {
                dense[l]
            }
        });
        // SAFETY: availability checked above; idx has exactly 8 lanes and
        // the primitive touches no memory.
        let got = unsafe { Avx2::conflict_free_subset(mask, &idx) };
        let expect =
            conflict_free_subset(Mask::<8>::from_bits(mask), SimdVec::<i32, 8>::from_array(idx));
        prop_assert_eq!(got, expect.bits(), "idx {:?} mask {:#x}", idx, mask);
    }

    // Satellite: adaptive algorithm selection and its statistics are
    // backend-invariant at matching lane width — each backend's adaptive
    // loop reports the same per-vector depths as the portable model at
    // that width, so warm-up, the Alg1/Alg2 decision, and every histogram
    // bucket must agree.
    #[test]
    fn adaptive_selection_and_stats_are_backend_invariant(
        items in stream(),
        dense in any::<bool>(),
    ) {
        let idx: Vec<i32> = items
            .iter()
            .map(|&(i, _)| if dense { i % 3 } else { i })
            .collect();
        let vals: Vec<f32> = items.iter().map(|&(_, v)| v as f32 * 0.5).collect();
        for backend in native_backends() {
            let mut tp = init_f32(24);
            let mut tn = tp.clone();
            let sp = match backend.lanes() {
                4 => adaptive_accumulate_n::<f32, Sum, 4>(&mut tp, &idx, &vals),
                8 => adaptive_accumulate_n::<f32, Sum, 8>(&mut tp, &idx, &vals),
                _ => adaptive_accumulate_n::<f32, Sum, 16>(&mut tp, &idx, &vals),
            };
            let sn = adaptive_accumulate_with::<f32, Sum>(backend, &mut tn, &idx, &vals);
            prop_assert_eq!(sp, sn, "{}: vectors + depth histogram", backend.name());
            for (k, (a, b)) in tp.iter().zip(&tn).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{}: slot {}", backend.name(), k);
            }
        }
    }

    #[test]
    fn adaptive_reducer_decides_identically_in_lockstep(
        items in stream(),
        dense in any::<bool>(),
    ) {
        let mut rp = AdaptiveReducer::<f32, Sum>::with_warmup(24, 2);
        let mut rn = AdaptiveReducer::<f32, Sum>::with_warmup(24, 2);
        let mut tp = init_f32(24);
        let mut tn = tp.clone();
        let mut j = 0;
        while j < items.len() {
            let chunk = &items[j..items.len().min(j + 16)];
            let idx: Vec<i32> = chunk
                .iter()
                .map(|&(i, _)| if dense { i % 3 } else { i })
                .collect();
            let vals: Vec<f32> = chunk.iter().map(|&(_, v)| v as f32 * 0.5).collect();
            let (vidx, active) = I32x16::load_partial(&idx, 0);
            let (vp0, _) = SimdVec::<f32, 16>::load_partial(&vals, 0.0);
            let mut vp = vp0;
            let mut vn = vp0;
            let sp = rp.reduce_with(Backend::Portable, active, vidx, &mut vp);
            let sn = rn.reduce_with(Backend::Avx512, active, vidx, &mut vn);
            prop_assert_eq!(sp.bits(), sn.bits(), "safe mask");
            assert_f32_lanes_eq(&vp, &vn);
            prop_assert_eq!(rp.algorithm(), rn.algorithm(), "algorithm decision");
            let old_p = SimdVec::<f32, 16>::zero().mask_gather(sp, &tp, vidx);
            Sum::combine_vec(old_p, vp).mask_scatter(sp, &mut tp, vidx);
            let old_n = SimdVec::<f32, 16>::zero().mask_gather(sn, &tn, vidx);
            Sum::combine_vec(old_n, vn).mask_scatter(sn, &mut tn, vidx);
            j += 16;
        }
        prop_assert_eq!(rp.depth_stats(), rn.depth_stats(), "depth histograms");
        rp.finish(&mut tp);
        rn.finish(&mut tn);
        for (k, (a, b)) in tp.iter().zip(&tn).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "slot {}", k);
        }
    }
}

/// Kernel-level backend parity: the Moldyn force kernel (multi-component
/// Algorithm 1) produces bitwise-identical forces and identical depth
/// histograms whichever backend executes the reduction.
#[test]
fn moldyn_forces_are_bitwise_identical_across_backends() {
    use invector::core::stats::DepthHistogram;
    use invector::moldyn::force::{forces_invec, Forces};
    use invector::moldyn::input::fcc_lattice;
    use invector::moldyn::neighbor::build_pairs;

    let m = fcc_lattice(3, 7);
    let pairs = build_pairs(&m, 3.0);
    let mut fp = Forces::zeroed(m.len());
    let mut dp = DepthHistogram::new();
    forces_invec(Backend::Portable, &m, &pairs, 3.0, &mut fp, &mut dp);
    // The Moldyn kernel runs the per-vector 16-lane API, which accelerates
    // under AVX-512 and runs portable under the narrower ISAs — bitwise
    // parity must hold for every backend either way.
    for backend in native_backends() {
        let mut fn_ = Forces::zeroed(m.len());
        let mut dn = DepthHistogram::new();
        forces_invec(backend, &m, &pairs, 3.0, &mut fn_, &mut dn);
        assert_eq!(dp, dn, "{}: depth histograms", backend.name());
        for (axis, (a, b)) in
            [(&fp.fx, &fn_.fx), (&fp.fy, &fn_.fy), (&fp.fz, &fn_.fz)].into_iter().enumerate()
        {
            for (k, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: axis {axis} molecule {k}",
                    backend.name()
                );
            }
        }
    }
}

/// Whole-simulation backend parity through the `ExecPolicy` plumbing: same
/// trajectory bitwise, same depth statistics, same utilization numbers.
#[test]
fn simulation_policy_backends_agree_on_trajectory_and_stats() {
    use invector::core::BackendChoice;
    use invector::kernels::{ExecPolicy, Variant};
    use invector::moldyn::input::fcc_lattice;
    use invector::moldyn::sim::simulate_with_policy;

    let initial = fcc_lattice(2, 19);
    let portable = ExecPolicy { backend: BackendChoice::Portable, ..ExecPolicy::default() };
    let nat = ExecPolicy { backend: BackendChoice::Native, ..ExecPolicy::default() };
    let rp = simulate_with_policy(&initial, Variant::Invec, 8, &portable);
    let rn = simulate_with_policy(&initial, Variant::Invec, 8, &nat);
    assert_eq!(rp.molecules, rn.molecules, "trajectories must match bitwise");
    assert_eq!(rp.depth, rn.depth, "depth histograms");
    let mp = simulate_with_policy(&initial, Variant::Masked, 8, &portable);
    let mn = simulate_with_policy(&initial, Variant::Masked, 8, &nat);
    assert_eq!(mp.utilization, mn.utilization, "utilization numbers");
}

/// Raw-primitive differentials: only meaningful (and only compiled) on
/// `x86_64`; each test skips with a notice when the CPU lacks AVX-512F/CD.
#[cfg(target_arch = "x86_64")]
mod raw {
    use super::*;
    use invector::simd::{conflict_detect, conflict_free_subset};

    macro_rules! skip_without_avx512 {
        () => {
            if !native::available() {
                eprintln!("skipping raw native differential: AVX-512F/CD not available");
                return Ok(());
            }
        };
    }

    /// Runs one raw invec primitive and compares it against the portable
    /// `reduce_alg1` for the same `(T, Op)`.
    macro_rules! check_raw_invec {
        ($native:path, $t:ty, $op:ty, $conv:expr, $idx:expr, $mask:expr, $raw:expr) => {{
            let data: [$t; 16] = $raw.map($conv);
            let active = Mask16::from_bits($mask);
            let mut portable = SimdVec::from_array(data);
            let (mp, dp) =
                reduce_alg1::<$t, $op, 16>(active, I32x16::from_array($idx), &mut portable);
            let mut nat = data;
            // SAFETY: availability checked by the caller; the primitive
            // touches no memory beyond `nat`.
            let (mn, dn) = unsafe { $native($mask as u16, $idx, &mut nat) };
            prop_assert_eq!(mp.bits() as u16, mn, "safe mask");
            prop_assert_eq!(dp, dn, "conflict depth");
            for l in 0..16 {
                prop_assert_eq!(portable.extract(l).lane_bits(), nat[l].lane_bits(), "lane {}", l);
            }
        }};
    }

    /// Runs one raw fused whole-stream driver and compares target, vector
    /// count, and depth buckets against the portable `invec_accumulate`.
    macro_rules! check_raw_driver {
        ($native:path, $t:ty, $op:ty, $conv:expr, $items:expr, $init:path) => {{
            let idx: Vec<i32> = $items.iter().map(|&(i, _)| i).collect();
            let vals: Vec<$t> = $items.iter().map(|&(_, v)| ($conv)(v)).collect();
            let mut portable = $init(24);
            let mut nat = portable.clone();
            let stats = invec_accumulate::<$t, $op>(&mut portable, &idx, &vals);
            let mut buckets = [0u64; 17];
            // SAFETY: availability checked by the caller; indices are in
            // `0..24` by construction and lengths match.
            let vectors = unsafe { $native(&mut nat, &idx, &vals, &mut buckets) };
            prop_assert_eq!(stats.vectors, vectors, "vector iterations");
            for d in 0..17 {
                prop_assert_eq!(stats.depth.bucket(d), buckets[d as usize], "depth {}", d);
            }
            for (k, (a, b)) in portable.iter().zip(&nat).enumerate() {
                prop_assert_eq!(a.lane_bits(), b.lane_bits(), "slot {}", k);
            }
        }};
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn raw_conflict_and_subset_match_portable((idx, mask) in dense_case()) {
            skip_without_avx512!();
            // SAFETY: availability checked above; register-only.
            let c = unsafe { native::conflict_i32(idx) };
            let model = conflict_detect(I32x16::from_array(idx));
            for (i, row) in c.iter().enumerate() {
                prop_assert_eq!(*row, model.extract(i), "conflict row {}", i);
            }
            // SAFETY: as above.
            let subset = unsafe { native::conflict_free_subset_u16(mask as u16, idx) };
            let expect = conflict_free_subset(Mask16::from_bits(mask), I32x16::from_array(idx));
            prop_assert_eq!(subset, expect.bits() as u16);
        }

        #[test]
        fn raw_invec_primitives_match_portable_model(
            (idx, mask) in dense_case(),
            raw in prop::array::uniform16(-100..100i32),
        ) {
            skip_without_avx512!();
            check_raw_invec!(native::invec_add_f32, f32, Sum, |v| v as f32 * 0.25, idx, mask, raw);
            check_raw_invec!(native::invec_min_f32, f32, Min, |v| v as f32 * 0.25, idx, mask, raw);
            check_raw_invec!(native::invec_max_f32, f32, Max, |v| v as f32 * 0.25, idx, mask, raw);
            check_raw_invec!(native::invec_add_i32, i32, Sum, |v| v, idx, mask, raw);
            check_raw_invec!(native::invec_min_i32, i32, Min, |v| v, idx, mask, raw);
            check_raw_invec!(native::invec_max_i32, i32, Max, |v| v, idx, mask, raw);
        }

        #[test]
        fn raw_invec_arr_matches_portable_model(
            (idx, mask) in dense_case(),
            raw in prop::array::uniform16(-100..100i32),
        ) {
            skip_without_avx512!();
            let active = Mask16::from_bits(mask);
            let comps: [[f32; 16]; 3] =
                std::array::from_fn(|c| raw.map(|v| (v + c as i32) as f32 * 0.25));
            let mut portable: [SimdVec<f32, 16>; 3] = comps.map(SimdVec::from_array);
            let (mp, dp) =
                reduce_alg1_arr::<f32, Sum, 3, 16>(active, I32x16::from_array(idx), &mut portable);
            let mut nat = comps;
            // SAFETY: availability checked above; no memory beyond `nat`.
            let (mn, dn) = unsafe { native::invec_add_arr_f32(mask as u16, idx, &mut nat) };
            prop_assert_eq!(mp.bits() as u16, mn);
            prop_assert_eq!(dp, dn);
            for (c, (p, n)) in portable.iter().zip(&nat).enumerate() {
                for (l, lane) in n.iter().enumerate() {
                    prop_assert_eq!(
                        p.extract(l).to_bits(),
                        lane.to_bits(),
                        "component {} lane {}",
                        c,
                        l
                    );
                }
            }
        }

        #[test]
        fn raw_gather_scatter_match_scalar_reference(
            idx in prop::array::uniform16(0..32i32),
            raw in prop::array::uniform16(-100..100i32),
            mask in 0u32..=0xFFFF,
        ) {
            skip_without_avx512!();
            let basef: Vec<f32> = (0..32).map(|k| k as f32 * 1.5 - 7.0).collect();
            let basei: Vec<i32> = (0..32).map(|k| k * 3 - 11).collect();
            // SAFETY: availability checked above; every index is in 0..32.
            let gf = unsafe { native::gather_f32(&basef, idx) };
            let gi = unsafe { native::gather_i32(&basei, idx) };
            for l in 0..16 {
                prop_assert_eq!(gf[l].to_bits(), basef[idx[l] as usize].to_bits());
                prop_assert_eq!(gi[l], basei[idx[l] as usize]);
            }
            // Scatter through a conflict-free (distinct-index) lane subset.
            // SAFETY: as above.
            let safe = unsafe { native::conflict_free_subset_u16(mask as u16, idx) };
            let dataf: [f32; 16] = raw.map(|v| v as f32 * 0.5);
            let mut outf = basef.clone();
            let mut outi = basei.clone();
            // SAFETY: distinct in-bounds indices under `safe`.
            unsafe { native::scatter_f32(safe, &mut outf, idx, dataf) };
            unsafe { native::scatter_i32(safe, &mut outi, idx, raw) };
            let mut expectf = basef.clone();
            let mut expecti = basei.clone();
            for l in 0..16 {
                if safe & (1 << l) != 0 {
                    expectf[idx[l] as usize] = dataf[l];
                    expecti[idx[l] as usize] = raw[l];
                }
            }
            for k in 0..32 {
                prop_assert_eq!(outf[k].to_bits(), expectf[k].to_bits(), "f32 slot {}", k);
                prop_assert_eq!(outi[k], expecti[k], "i32 slot {}", k);
            }
        }

        #[test]
        fn raw_fused_drivers_match_portable_invec_model(items in stream()) {
            skip_without_avx512!();
            check_raw_driver!(native::accumulate_add_f32, f32, Sum, |v: i32| v as f32 * 0.5, items, init_f32);
            check_raw_driver!(native::accumulate_min_f32, f32, Min, |v: i32| v as f32 * 0.5, items, init_f32);
            check_raw_driver!(native::accumulate_max_f32, f32, Max, |v: i32| v as f32 * 0.5, items, init_f32);
            check_raw_driver!(native::accumulate_add_i32, i32, Sum, |v: i32| v, items, init_i32);
            check_raw_driver!(native::accumulate_min_i32, i32, Min, |v: i32| v, items, init_i32);
            check_raw_driver!(native::accumulate_max_i32, i32, Max, |v: i32| v, items, init_i32);
        }

        #[test]
        fn raw_fused_alg2_driver_matches_portable_alg2_stream(items in stream()) {
            skip_without_avx512!();
            let idx: Vec<i32> = items.iter().map(|&(i, _)| i).collect();
            let vals: Vec<f32> = items.iter().map(|&(_, v)| v as f32 * 0.5).collect();

            // Portable counterpart of the fused Algorithm 2 driver: per-16
            // reduce_alg2 + conflict-free commit, final shadow merge.
            let mut portable = init_f32(24);
            let mut aux = AuxArray::<f32, Sum>::new(24);
            let mut pdepth = [0u64; 17];
            let mut pvectors = 0u64;
            let mut j = 0;
            while j < idx.len() {
                let (vidx, active) = I32x16::load_partial(&idx[j..], 0);
                let (mut vval, _) = SimdVec::<f32, 16>::load_partial(&vals[j..], 0.0);
                let (safe, d2) = reduce_alg2::<f32, Sum, 16>(active, vidx, &mut vval, &mut aux);
                pdepth[d2 as usize] += 1;
                let old = SimdVec::<f32, 16>::zero().mask_gather(safe, &portable, vidx);
                Sum::combine_vec(old, vval).mask_scatter(safe, &mut portable, vidx);
                pvectors += 1;
                j += 16;
            }
            aux.merge_into(&mut portable);

            let mut nat = init_f32(24);
            let mut shadow = vec![0.0f32; 24];
            let mut touched = Vec::new();
            let mut ndepth = [0u64; 17];
            // SAFETY: availability checked above; indices in 0..24, lengths
            // match, shadow has the target's length.
            let nvectors = unsafe {
                native::accumulate_add_f32_alg2(
                    &mut nat, &mut shadow, &mut touched, &idx, &vals, &mut ndepth,
                )
            };
            // Mirror `AuxArray::merge_into`: reset each slot after folding
            // so duplicate `touched` entries (a zero-valued first write)
            // stay idempotent.
            for &t in &touched {
                nat[t as usize] += shadow[t as usize];
                shadow[t as usize] = 0.0;
            }
            prop_assert_eq!(pvectors, nvectors, "vector iterations");
            prop_assert_eq!(pdepth, ndepth, "depth buckets");
            for (k, (a, b)) in portable.iter().zip(&nat).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "slot {}", k);
            }
        }
    }
}
