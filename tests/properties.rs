//! Property-based tests (proptest) over the core invariants of the system.

use proptest::prelude::*;

use invector::core::invec::{reduce_alg1, reduce_alg2, AuxArray};
use invector::core::ops::{Max, Min, Sum};
use invector::core::{adaptive_accumulate, invec_accumulate, masked_accumulate, serial_accumulate};
use invector::graph::group::{group_by_key, group_by_two_keys};
use invector::simd::{conflict_detect, conflict_free_subset, I32x16, Mask16, SimdVec};

/// An arbitrary 16-lane index vector with a small domain (to force
/// conflicts) and an arbitrary active mask.
fn vec_and_mask() -> impl Strategy<Value = ([i32; 16], u32)> {
    (prop::array::uniform16(0..8i32), 0u32..=0xFFFF)
}

proptest! {
    #[test]
    fn conflict_detect_reports_exactly_earlier_equal_lanes(idx in prop::array::uniform16(-5..10i32)) {
        let c = conflict_detect(I32x16::from_array(idx));
        for i in 0..16 {
            for j in 0..16 {
                let bit = c.extract(i) & (1 << j) != 0;
                prop_assert_eq!(bit, j < i && idx[j] == idx[i], "lane {} bit {}", i, j);
            }
        }
    }

    #[test]
    fn conflict_free_subset_is_first_active_occurrence((idx, mask) in vec_and_mask()) {
        let active = Mask16::from_bits(mask);
        let safe = conflict_free_subset(active, I32x16::from_array(idx));
        // safe ⊆ active, and lane i is safe iff no earlier active lane
        // holds the same index.
        for i in 0..16 {
            let expect = active.test(i)
                && (0..i).all(|j| !active.test(j) || idx[j] != idx[i]);
            prop_assert_eq!(safe.test(i), expect, "lane {}", i);
        }
    }

    #[test]
    fn alg1_equals_scalar_per_index_reduction(
        (idx, mask) in vec_and_mask(),
        data in prop::array::uniform16(-100..100i32),
    ) {
        let active = Mask16::from_bits(mask);
        let mut v = SimdVec::from_array(data);
        let (safe, d1) = reduce_alg1::<i32, Sum, 16>(active, I32x16::from_array(idx), &mut v);
        prop_assert!(d1 <= 8, "D1 bound (§3.3)");
        // Safe lanes hold exactly the per-index scalar reduction.
        let mut seen = std::collections::HashSet::new();
        for lane in safe.iter_set() {
            prop_assert!(active.test(lane));
            prop_assert!(seen.insert(idx[lane]), "distinct indices in safe mask");
            let expect: i32 = (0..16)
                .filter(|&l| active.test(l) && idx[l] == idx[lane])
                .map(|l| data[l])
                .sum();
            prop_assert_eq!(v.extract(lane), expect);
        }
        prop_assert_eq!(seen.len() as u32, safe.count_ones());
    }

    #[test]
    fn alg2_with_merge_equals_alg1(
        (idx, mask) in vec_and_mask(),
        data in prop::array::uniform16(-100..100i32),
    ) {
        let active = Mask16::from_bits(mask);
        let vidx = I32x16::from_array(idx);

        let mut v1 = SimdVec::from_array(data);
        let (safe1, _) = reduce_alg1::<i32, Sum, 16>(active, vidx, &mut v1);
        let mut t1 = vec![0i32; 8];
        v1.mask_scatter(safe1, &mut t1, vidx);

        let mut v2 = SimdVec::from_array(data);
        let mut aux = AuxArray::<i32, Sum>::new(8);
        let (safe2, d2) = reduce_alg2::<i32, Sum, 16>(active, vidx, &mut v2, &mut aux);
        prop_assert!(d2 <= 5, "D2 bound (§3.4)");
        let mut t2 = vec![0i32; 8];
        v2.mask_scatter(safe2, &mut t2, vidx);
        aux.merge_into(&mut t2);

        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn accumulate_strategies_agree_for_integers(
        idx in prop::collection::vec(0..32i32, 0..400),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vals: Vec<i32> = idx.iter().map(|_| rng.gen_range(-50..50)).collect();
        let mut serial = vec![0i32; 32];
        serial_accumulate::<i32, Sum>(&mut serial, &idx, &vals);
        let mut invec = vec![0i32; 32];
        invec_accumulate::<i32, Sum>(&mut invec, &idx, &vals);
        let mut masked = vec![0i32; 32];
        masked_accumulate::<i32, Sum>(&mut masked, &idx, &vals);
        let mut adaptive = vec![0i32; 32];
        adaptive_accumulate::<i32, Sum>(&mut adaptive, &idx, &vals);
        prop_assert_eq!(&serial, &invec);
        prop_assert_eq!(&serial, &masked);
        prop_assert_eq!(&serial, &adaptive);
    }

    #[test]
    fn min_max_accumulation_is_exact_for_floats(
        idx in prop::collection::vec(0..16i32, 0..200),
        raw in prop::collection::vec(-1000..1000i32, 0..200),
    ) {
        let n = idx.len().min(raw.len());
        let idx = &idx[..n];
        let vals: Vec<f32> = raw[..n].iter().map(|&x| x as f32 / 7.0).collect();
        for op in ["min", "max"] {
            let (mut a, mut b) = if op == "min" {
                (vec![f32::INFINITY; 16], vec![f32::INFINITY; 16])
            } else {
                (vec![f32::NEG_INFINITY; 16], vec![f32::NEG_INFINITY; 16])
            };
            if op == "min" {
                serial_accumulate::<f32, Min>(&mut a, idx, &vals);
                invec_accumulate::<f32, Min>(&mut b, idx, &vals);
            } else {
                serial_accumulate::<f32, Max>(&mut a, idx, &vals);
                invec_accumulate::<f32, Max>(&mut b, idx, &vals);
            }
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn grouping_produces_conflict_free_windows(
        keys in prop::collection::vec(0..20i32, 0..300),
    ) {
        let positions: Vec<u32> = (0..keys.len() as u32).collect();
        let g = group_by_key(&positions, &keys);
        // Permutation of the input positions.
        let mut real: Vec<u32> = g.slots.iter().copied().filter(|&p| p != u32::MAX).collect();
        real.sort_unstable();
        prop_assert_eq!(real, positions);
        // Conflict-free windows, masks consistent with padding.
        for w in 0..g.num_windows() {
            let (slots, mask) = g.window(w);
            let mut seen = std::collections::HashSet::new();
            for (lane, &p) in slots.iter().enumerate() {
                prop_assert_eq!(mask & (1 << lane) != 0, p != u32::MAX);
                if p != u32::MAX {
                    prop_assert!(seen.insert(keys[p as usize]));
                }
            }
        }
    }

    #[test]
    fn two_key_grouping_windows_have_disjoint_endpoints(
        pairs in prop::collection::vec((0..15i32, 0..15i32), 0..200),
    ) {
        let ka: Vec<i32> = pairs.iter().map(|&(a, _)| a).collect();
        let kb: Vec<i32> = pairs.iter().map(|&(_, b)| b).collect();
        let positions: Vec<u32> = (0..pairs.len() as u32).collect();
        let g = group_by_two_keys(&positions, &ka, &kb);
        for w in 0..g.num_windows() {
            let (slots, mask) = g.window(w);
            // No endpoint may be touched by two different lanes (a single
            // lane touching the same vertex twice — a self-pair — is fine:
            // its two scatters are separate instructions).
            let mut owner: std::collections::HashMap<i32, usize> = std::collections::HashMap::new();
            for (lane, &p) in slots.iter().enumerate() {
                if mask & (1 << lane) != 0 {
                    for key in [ka[p as usize], kb[p as usize]] {
                        let prev = owner.insert(key, lane);
                        prop_assert!(
                            prev.is_none() || prev == Some(lane),
                            "endpoint {} shared by lanes {:?} and {}",
                            key,
                            prev,
                            lane
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn masked_accumulate_utilization_is_sane(
        idx in prop::collection::vec(0..8i32, 1..300),
    ) {
        let vals = vec![1.0f32; idx.len()];
        let mut target = vec![0.0f32; 8];
        let stats = masked_accumulate::<f32, Sum>(&mut target, &idx, &vals);
        let u = stats.utilization.ratio();
        prop_assert!((0.0..=1.0).contains(&u));
        // Every item commits exactly once.
        prop_assert_eq!(stats.utilization.useful, idx.len() as u64);
        let total: f32 = target.iter().sum();
        prop_assert_eq!(total, idx.len() as f32);
    }
}

// --- Execution engine: MIMD partitions must be exact for integer ops -----

/// Thread counts exercising the pool: serial short-circuit, even splits,
/// odd splits, and more workers than the pool has cores.
const ENGINE_THREADS: [usize; 5] = [1, 2, 3, 7, 16];

proptest! {
    #[test]
    fn engine_parallel_matches_serial_exactly_for_integer_ops(
        keys in prop::collection::vec(0..32i32, 0..400),
        tix in 0usize..5,
        privatized in any::<bool>(),
    ) {
        use invector::core::exec::{execute, ExecPolicy, Partition};
        let threads = ENGINE_THREADS[tix];
        let partition = if privatized { Partition::Privatized } else { Partition::OwnerComputes };
        let vals: Vec<i32> = (0..keys.len() as i32).map(|v| v * 3 - 100).collect();
        let init: Vec<i32> = (0..32).map(|k| k % 7 - 3).collect();
        macro_rules! check {
            ($op:ty) => {{
                let mut expect = init.clone();
                serial_accumulate::<i32, $op>(&mut expect, &keys, &vals);
                let mut got = init.clone();
                let policy = ExecPolicy::with_threads(threads).partition(partition);
                let report = execute::<i32, $op>(&mut got, &keys, &vals, &policy);
                prop_assert_eq!(&got, &expect,
                    "{} threads={} partition={:?}", stringify!($op), threads, partition);
                prop_assert!(report.threads_used() >= 1);
            }};
        }
        check!(Sum);
        check!(Min);
        check!(Max);
    }

    #[test]
    fn engine_handles_all_conflict_streams_exactly(
        key in 0..16i32,
        len in 0usize..200,
        tix in 0usize..5,
        privatized in any::<bool>(),
    ) {
        use invector::core::exec::{execute, ExecPolicy, Partition};
        let threads = ENGINE_THREADS[tix];
        let partition = if privatized { Partition::Privatized } else { Partition::OwnerComputes };
        // Every stream element hits the same target index: the worst case
        // for conflict handling, and (with len 0 and 1) the degenerate
        // empty and single-element streams.
        let keys = vec![key; len];
        let vals: Vec<i32> = (0..len as i32).map(|v| v - 7).collect();
        macro_rules! check {
            ($op:ty) => {{
                let mut expect = vec![1i32; 16];
                serial_accumulate::<i32, $op>(&mut expect, &keys, &vals);
                let mut got = vec![1i32; 16];
                let policy = ExecPolicy::with_threads(threads).partition(partition);
                execute::<i32, $op>(&mut got, &keys, &vals, &policy);
                prop_assert_eq!(&got, &expect,
                    "{} threads={} partition={:?} len={}", stringify!($op), threads, partition, len);
            }};
        }
        check!(Sum);
        check!(Min);
        check!(Max);
    }
}
