//! Integration: every vectorized implementation strategy must agree with
//! its serial baseline on the (scaled) Table 1 datasets, end to end.

use invector::agg::dist::{generate, Distribution};
use invector::agg::run::{aggregate, Method};
use invector::agg::table::reference_aggregate;
use invector::graph::datasets;
use invector::kernels::{pagerank, sssp, sswp, wcc, PageRankConfig, Variant};
use invector::moldyn::input::fcc_lattice;
use invector::moldyn::sim::simulate;

#[test]
fn pagerank_variants_agree_on_all_datasets() {
    for dataset in datasets::all(datasets::TEST_SCALE) {
        let config = PageRankConfig { max_iters: 30, ..PageRankConfig::default() };
        let reference = pagerank(&dataset.graph, Variant::Serial, &config);
        for variant in Variant::ALL {
            let r = pagerank(&dataset.graph, variant, &config);
            assert_eq!(r.iterations, reference.iterations, "{} {variant}", dataset.name);
            for (v, (a, b)) in r.values.iter().zip(&reference.values).enumerate() {
                assert!(
                    (a - b).abs() <= 5e-3 * (a.abs() + b.abs() + 1e-6),
                    "{} {variant} vertex {v}: {a} vs {b}",
                    dataset.name
                );
            }
        }
    }
}

#[test]
fn sssp_variants_are_bit_identical_on_all_datasets() {
    for dataset in datasets::all(datasets::TEST_SCALE) {
        let reference = sssp(&dataset.graph, 0, Variant::Serial, 10_000);
        for variant in Variant::ALL {
            let r = sssp(&dataset.graph, 0, variant, 10_000);
            assert_eq!(r.values, reference.values, "{} {variant}", dataset.name);
        }
    }
}

#[test]
fn sswp_variants_are_bit_identical_on_all_datasets() {
    for dataset in datasets::all(datasets::TEST_SCALE) {
        let reference = sswp(&dataset.graph, 0, Variant::Serial, 10_000);
        for variant in Variant::ALL {
            let r = sswp(&dataset.graph, 0, variant, 10_000);
            assert_eq!(r.values, reference.values, "{} {variant}", dataset.name);
        }
    }
}

#[test]
fn wcc_variants_are_bit_identical_on_all_datasets() {
    for dataset in datasets::all(datasets::TEST_SCALE) {
        let reference = wcc(&dataset.graph, Variant::Serial, 10_000);
        for variant in Variant::ALL {
            let r = wcc(&dataset.graph, variant, 10_000);
            assert_eq!(r.values, reference.values, "{} {variant}", dataset.name);
        }
    }
}

#[test]
fn moldyn_variants_track_serial_trajectory() {
    let molecules = fcc_lattice(4, 99); // 256 molecules
    let reference = simulate(&molecules, Variant::Serial, 25); // spans a rebuild
    for variant in Variant::ALL {
        let r = simulate(&molecules, variant, 25);
        assert_eq!(r.num_pairs, reference.num_pairs, "{variant}");
        let max_dv = r
            .molecules
            .vx
            .iter()
            .zip(&reference.molecules.vx)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dv < 1e-2, "{variant}: velocity divergence {max_dv}");
    }
}

#[test]
fn aggregation_methods_agree_across_distributions_and_cardinalities() {
    for dist in Distribution::ALL {
        for cardinality in [1usize, 16, 300, 4096] {
            let input = generate(dist, 5000, cardinality, 31);
            let expect = reference_aggregate(&input.keys, &input.vals);
            for method in Method::ALL {
                let out = aggregate(method, &input.keys, &input.vals, cardinality);
                assert_eq!(out.rows.len(), expect.len(), "{dist} {method} card {cardinality}");
                for (g, e) in out.rows.iter().zip(&expect) {
                    assert_eq!(g.key, e.key, "{dist} {method}");
                    assert_eq!(g.count, e.count, "{dist} {method} key {}", g.key);
                    assert!(
                        (g.sum - e.sum).abs() <= 1e-3 * (g.sum.abs() + e.sum.abs() + 1.0),
                        "{dist} {method} key {} sum {} vs {}",
                        g.key,
                        g.sum,
                        e.sum
                    );
                }
            }
        }
    }
}
