//! Integration tests pinning the paper's quantitative and qualitative
//! claims that are properties of the algorithms (not of the hardware).

use invector::agg::dist::{generate, Distribution};
use invector::agg::run::{aggregate, Method};
use invector::core::adaptive::{AdaptiveReducer, Algorithm};
use invector::core::invec::{reduce_alg1, reduce_alg2, AuxArray};
use invector::core::ops::Sum;
use invector::graph::datasets;
use invector::kernels::{pagerank, sssp, PageRankConfig, Variant};
#[cfg(feature = "count")]
use invector::simd::count;
use invector::simd::{F32x16, I32x16, Mask16};

/// §3.3: "an invocation of Algorithm 1 takes no more than 2 + 8·D1
/// instructions" — our model charges every SIMD op, so validate the
/// linear-in-D1 structure within a small constant band.
#[cfg(feature = "count")]
#[test]
fn alg1_cost_is_linear_in_d1() {
    let mut costs = Vec::new();
    for d in 0..=8usize {
        let mut idx = [0i32; 16];
        for g in 0..d {
            idx[2 * g] = g as i32;
            idx[2 * g + 1] = g as i32;
        }
        for (off, slot) in (2 * d..16).enumerate() {
            idx[slot] = 100 + off as i32;
        }
        let mut v = F32x16::splat(1.0);
        count::reset();
        let (_, d1) = reduce_alg1::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v);
        let cost = count::take();
        assert_eq!(d1 as usize, d);
        costs.push(cost);
    }
    // Constant increment per extra conflicting group, ~8 instructions.
    let increments: Vec<u64> = costs.windows(2).map(|w| w[1] - w[0]).collect();
    for &inc in &increments {
        assert!((5..=12).contains(&inc), "per-D1 increment {inc} outside the 8-ish band");
    }
    assert!(costs[0] <= 8, "D1=0 base cost {} should be ~2", costs[0]);
}

/// §3.4: "if a vector has two identical groups of eight distinct lanes,
/// Algorithm 1 needs 8 iterations ... while Algorithm 2 needs none".
#[test]
fn two_identical_groups_of_eight_extreme_case() {
    let idx = I32x16::from_array(std::array::from_fn(|i| (i % 8) as i32));
    let mut v = F32x16::splat(1.0);
    let (_, d1) = reduce_alg1::<f32, Sum, 16>(Mask16::all(), idx, &mut v);
    assert_eq!(d1, 8);
    let mut v = F32x16::splat(1.0);
    let mut aux = AuxArray::<f32, Sum>::new(8);
    let (_, d2) = reduce_alg2::<f32, Sum, 16>(Mask16::all(), idx, &mut v, &mut aux);
    assert_eq!(d2, 0);
}

/// §3.4: graph workloads see average D1 near zero; hash aggregation can
/// reach D1 ≈ 4, flipping the adaptive choice to Algorithm 2.
#[test]
fn adaptive_policy_matches_workload_classes() {
    // Graph-like: PageRank edge stream over a scaled higgs stand-in. The
    // paper reports mean D1 ≈ 1e-4 at full graph size; D1 shrinks with
    // vertex count, so at 1% scale "well below the Algorithm-2 threshold"
    // is the right form of the claim.
    let dataset = datasets::higgs_twitter(0.01);
    let config = PageRankConfig { max_iters: 3, ..PageRankConfig::default() };
    let r = pagerank(&dataset.graph, Variant::Invec, &config);
    let d1 = r.depth.expect("invec depth").mean();
    assert!(d1 < 0.5, "graph workload mean D1 {d1} should be small");

    // Aggregation-like: heavy-hitter keys drive D1 over the threshold.
    let input = generate(Distribution::HeavyHitter, 10_000, 64, 3);
    let mut reducer = AdaptiveReducer::<f32, Sum>::with_warmup(64, 16);
    let mut target = vec![0.0f32; 64];
    let mut j = 0;
    while j < input.keys.len() {
        let (vidx, active) = I32x16::load_partial(&input.keys[j..], 0);
        let (mut vval, _) = F32x16::load_partial(&input.vals[j..], 0.0);
        let safe = reducer.reduce(active, vidx, &mut vval);
        let old = F32x16::zero().mask_gather(safe, &target, vidx);
        (old + vval).mask_scatter(safe, &mut target, vidx);
        j += 16;
    }
    reducer.finish(&mut target);
    assert_eq!(reducer.algorithm(), Algorithm::Alg2, "heavy hitter should select Algorithm 2");
}

/// §4.2/§4.4 shape: in-vector reduction beats conflict-masking in modeled
/// instructions, with the margin growing as skew rises.
#[cfg(feature = "count")]
#[test]
fn invec_beats_masking_and_margin_grows_with_skew() {
    let dataset = datasets::higgs_twitter(datasets::TEST_SCALE);
    let mask = sssp(&dataset.graph, 0, Variant::Masked, 10_000);
    let invec = sssp(&dataset.graph, 0, Variant::Invec, 10_000);
    assert!(
        invec.instructions < mask.instructions,
        "invec {} !< mask {}",
        invec.instructions,
        mask.instructions
    );

    // Aggregation under a 50% hot key: the masked linear table serializes.
    let input = generate(Distribution::HeavyHitter, 20_000, 256, 5);
    let m = aggregate(Method::LinearMask, &input.keys, &input.vals, 256);
    let i = aggregate(Method::LinearInvec, &input.keys, &input.vals, 256);
    let ratio = m.instructions as f64 / i.instructions as f64;
    assert!(ratio > 3.0, "heavy-hitter masking should lose big; ratio {ratio:.2}");
}

/// §4.4 shape: the bucketized table rescues conflict-masking's utilization
/// under skew, and the linear table overtakes the bucketized one as group
/// cardinality approaches the table size.
#[test]
fn figure13_crossovers() {
    let input = generate(Distribution::HeavyHitter, 20_000, 256, 6);
    let lm = aggregate(Method::LinearMask, &input.keys, &input.vals, 256);
    let bm = aggregate(Method::BucketMask, &input.keys, &input.vals, 256);
    assert!(
        bm.stats.util.ratio() > 2.0 * lm.stats.util.ratio(),
        "bucketization should lift masked utilization: {} vs {}",
        bm.stats.util.ratio(),
        lm.stats.util.ratio()
    );

    // At cardinality near the row count, every group is tiny and the
    // bucketized table's probing/footprint overhead shows up in rounds per
    // vector relative to the linear design.
    let big = generate(Distribution::MovingCluster, 20_000, 8192, 7);
    let li = aggregate(Method::LinearInvec, &big.keys, &big.vals, 8192);
    let bi = aggregate(Method::BucketInvec, &big.keys, &big.vals, 8192);
    assert!(
        bi.stats.rounds as f64 >= 0.9 * li.stats.rounds as f64,
        "bucket table should not probe fewer rounds at high cardinality: {} vs {}",
        bi.stats.rounds,
        li.stats.rounds
    );
}

/// §4.2: utilization of conflict-masking depends on the input distribution
/// (PageRank's static edge stream utilizes far better than Moldyn's
/// conflict-dense pair stream).
#[test]
fn masked_utilization_is_distribution_dependent() {
    let dataset = datasets::soc_pokec(datasets::TEST_SCALE);
    let pr = pagerank(&dataset.graph, Variant::Masked, &PageRankConfig::default());
    let pr_util = pr.utilization.expect("masked utilization").ratio();

    let molecules = invector::moldyn::input::fcc_lattice(3, 1);
    let md = invector::moldyn::sim::simulate(&molecules, Variant::Masked, 5);
    let md_util = md.utilization.expect("masked utilization").ratio();

    assert!(
        pr_util > 2.0 * md_util,
        "PageRank utilization {pr_util:.3} should dwarf Moldyn's {md_util:.3}"
    );
}

/// Appendix A.5: "some of the computation results (e.g. rank values in
/// PageRank, shortest distance in SSSP) are printed out to check the
/// correctness" — our equivalent: deterministic digests across variants.
#[test]
fn results_are_deterministic_across_runs() {
    let dataset = datasets::amazon0312(datasets::TEST_SCALE);
    let a = sssp(&dataset.graph, 0, Variant::Invec, 10_000);
    let b = sssp(&dataset.graph, 0, Variant::Invec, 10_000);
    assert_eq!(a.values, b.values);
    assert_eq!(a.instructions, b.instructions, "instruction model is deterministic");
}
